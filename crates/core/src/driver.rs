//! The host-side driver: what the paper's ARM software does.
//!
//! "Software executing on the on-chip ARM processor handles the loading
//! and pre-processing of network weights, biases and test images.
//! Pre-processing includes the reordering of data into tiled format for
//! our accelerator. The framework sends the instruction and calls the
//! hardware driver for inference." (paper §IV-C)
//!
//! Responsibilities:
//!
//! * **striping**: large layers are subdivided into stripes whose input
//!   and output both fit the SRAM banks (paper Fig. 2), with the halo
//!   re-fetch overhead that inflates the ideal throughput by "~15% but
//!   varies by layer";
//! * **weight packing**: per OFM group, non-zero weights + offsets are
//!   packed offline and staged in DDR;
//! * **instruction generation**: one conv instruction per (stripe, group),
//!   pool/pad instructions per stripe;
//! * **DMA orchestration**: activations live in DDR between passes and
//!   are moved stripe-by-stripe; compute overlaps IFM/OFM DMA
//!   (double-buffering) while scratchpad weight preloads serialize — the
//!   paper's weight-unpack overhead that hits deep layers hardest;
//! * **scale-out**: with two accelerator instances (`512-opt`), stripes
//!   are distributed round-robin and the instances run concurrently
//!   ("each instance operates concurrently on separate stripes of FMs");
//! * **host fallback**: FC layers and softmax execute on the ARM, as in
//!   the paper.

use crate::bank::BankSet;
use crate::config::AccelConfig;
use crate::cycle;
use crate::isa::{ConvInstr, Instruction, PoolPadInstr, PoolPadOp};
use crate::layout::FmLayout;
use crate::model;
use crate::weights::GroupWeights;
use zskip_nn::conv::QuantConvWeights;
use zskip_nn::fc::fc_quant_into;
use zskip_nn::layer::LayerSpec;
use zskip_nn::model::QuantizedNetwork;
use zskip_nn::scratch::Scratch;
use zskip_fault::SharedFaultPlan;
use zskip_quant::grouping::FilterGrouping;
use zskip_quant::Sm8;
use zskip_sim::{Counters, SimError};
use zskip_soc::ddr::DdrModel;
use zskip_soc::dma::{DmaError, TILE_BYTES};
use zskip_tensor::{Shape, Tensor, TiledFeatureMap};

/// Which execution backend computes each stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Transaction-level model: closed-form cycles (fast; default).
    Model,
    /// Cycle-exact simulation of all kernels (slow; for validation).
    Cycle,
}

/// The inference driver.
#[derive(Debug, Clone)]
pub struct Driver {
    /// The accelerator configuration.
    pub config: AccelConfig,
    /// Stripe execution backend.
    pub backend: BackendKind,
    /// Enable the paper's future-work filter grouping (sort filters by
    /// non-zero count before forming lockstep groups).
    pub filter_grouping: bool,
    /// When `false`, skip the functional arithmetic and produce cycle
    /// counts and counters only (cycle counts are value-independent).
    /// Throughput sweeps over full VGG-16 use this. Model backend only.
    pub functional: bool,
    /// When `false`, pack every weight slot (zeros included): the ablation
    /// baseline without the paper's zero-weight skipping.
    pub zero_skipping: bool,
    /// Fault plan threaded into the SoC models and the cycle backend.
    fault_plan: Option<SharedFaultPlan>,
}

/// Statistics of one accelerator pass (pad, conv, or pool).
#[derive(Debug, Clone, Default)]
pub struct PassStats {
    /// Compute cycles of the busiest instance.
    pub compute_cycles: u64,
    /// Per-instance compute cycles.
    pub per_instance_cycles: Vec<u64>,
    /// IFM + OFM DMA cycles (shared System I bus).
    pub io_dma_cycles: u64,
    /// Scratchpad weight preload cycles.
    pub weight_dma_cycles: u64,
    /// Wall cycles with the overlap policy:
    /// `max(compute, io_dma) + weight_dma`.
    pub total_cycles: u64,
    /// Number of stripes.
    pub stripes: usize,
    /// Ideal-inflating striping factor: fetched input tile rows over the
    /// un-striped minimum (>= 1).
    pub striping_factor: f64,
    /// Merged activity counters.
    pub counters: Counters,
}

impl PassStats {
    fn finish(&mut self) {
        self.compute_cycles = self.per_instance_cycles.iter().copied().max().unwrap_or(0);
        self.total_cycles = self.compute_cycles.max(self.io_dma_cycles) + self.weight_dma_cycles;
    }

    /// Accumulates another pass (e.g. pad + conv of the same layer).
    pub fn merge(&mut self, other: &PassStats) {
        self.compute_cycles += other.compute_cycles;
        self.io_dma_cycles += other.io_dma_cycles;
        self.weight_dma_cycles += other.weight_dma_cycles;
        self.total_cycles += other.total_cycles;
        self.stripes += other.stripes;
        self.striping_factor = self.striping_factor.max(other.striping_factor);
        self.counters.merge(&other.counters);
    }
}

/// Per-layer inference report.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Layer name from the network spec.
    pub name: String,
    /// `true` for conv layers (the ones the paper's figures evaluate).
    pub is_conv: bool,
    /// Dense MAC count of the layer (pruning does not reduce this; the
    /// paper's *effective* GOPS divides dense work by elapsed time).
    pub dense_macs: u64,
    /// Accelerator statistics (zeroed for host-executed layers).
    pub stats: PassStats,
}

impl LayerReport {
    /// Elapsed seconds at the configured clock.
    pub fn seconds(&self, config: &AccelConfig) -> f64 {
        self.stats.total_cycles as f64 * config.cycle_seconds()
    }

    /// Effective GOPS: dense ops (2 x MACs) over elapsed time.
    pub fn effective_gops(&self, config: &AccelConfig) -> f64 {
        let s = self.seconds(config);
        if s == 0.0 {
            0.0
        } else {
            2.0 * self.dense_macs as f64 / s / 1e9
        }
    }
}

/// Whole-network inference report.
#[derive(Debug, Clone)]
pub struct InferenceReport {
    /// Per-layer reports, in execution order.
    pub layers: Vec<LayerReport>,
    /// Final quantized outputs (logits for classifier networks).
    pub output: Vec<Sm8>,
    /// Total accelerator cycles across layers.
    pub total_cycles: u64,
    /// Total DDR traffic in bytes.
    pub ddr_bytes: u64,
}

impl InferenceReport {
    /// Conv-layer reports only (the population of paper Figs. 7-8).
    pub fn conv_layers(&self) -> impl Iterator<Item = &LayerReport> {
        self.layers.iter().filter(|l| l.is_conv)
    }

    /// Mean effective GOPS across conv layers (paper Fig. 8 "average").
    pub fn mean_gops(&self, config: &AccelConfig) -> f64 {
        let v: Vec<f64> = self.conv_layers().map(|l| l.effective_gops(config)).collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }

    /// Best conv-layer effective GOPS (paper Fig. 8 "peak").
    pub fn peak_gops(&self, config: &AccelConfig) -> f64 {
        self.conv_layers().map(|l| l.effective_gops(config)).fold(0.0, f64::max)
    }

    /// Mean MAC-array switching activity over the run: actually-issued
    /// multiplies over peak slots. Feeds the power model's average-power
    /// estimate (peak power uses activity 1.0).
    pub fn mean_mac_activity(&self, config: &AccelConfig) -> f64 {
        let macs: u64 = self.layers.iter().map(|l| l.stats.counters.get("macs")).sum();
        let cycles: u64 = self.layers.iter().map(|l| l.stats.total_cycles).sum();
        if cycles == 0 {
            return 0.0;
        }
        (macs as f64 / (cycles as f64 * config.macs_per_cycle() as f64)).min(1.0)
    }
}

/// Driver-level failure.
#[derive(Debug, Clone, PartialEq)]
pub enum DriverError {
    /// A stripe of even one output tile row cannot fit the banks.
    LayerTooLarge {
        /// Layer name.
        layer: String,
        /// Words needed for the minimal stripe.
        needed: usize,
        /// Bank capacity in words.
        capacity: usize,
    },
    /// The cycle backend failed (deadlock/limit) — an RTL-level bug or an
    /// injected fault. Carries the structured [`SimError`], so a deadlock
    /// still names the wedged FIFO (see [`SimError::wedged`]).
    Sim(SimError),
    /// A DMA descriptor failed (bad plan, truncation or parity fault).
    Dma(DmaError),
    /// The layer uses geometry the accelerator does not implement.
    Unsupported {
        /// Layer name.
        layer: String,
        /// What is unsupported.
        reason: String,
    },
    /// The network spec is inconsistent (shape propagation failed).
    InvalidNetwork(String),
    /// The driver configuration is invalid (see [`DriverBuilder::build`]).
    InvalidConfig(String),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::LayerTooLarge { layer, needed, capacity } => {
                write!(f, "layer {layer}: minimal stripe needs {needed} words/bank, capacity {capacity}")
            }
            DriverError::Sim(e) => write!(f, "cycle backend failed: {e}"),
            DriverError::Dma(e) => write!(f, "DMA transfer failed: {e}"),
            DriverError::Unsupported { layer, reason } => {
                write!(f, "layer {layer}: unsupported geometry ({reason})")
            }
            DriverError::InvalidNetwork(reason) => write!(f, "invalid network: {reason}"),
            DriverError::InvalidConfig(reason) => write!(f, "invalid driver configuration: {reason}"),
        }
    }
}

impl DriverError {
    /// Whether a retry could plausibly succeed. Transfer and simulation
    /// failures are transient (an injected one-shot fault, a wedged run);
    /// structural errors — geometry, capacity, configuration — are
    /// deterministic and retrying them only wastes work.
    pub fn is_transient(&self) -> bool {
        matches!(self, DriverError::Sim(_) | DriverError::Dma(_))
    }
}

impl std::error::Error for DriverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DriverError::Sim(e) => Some(e),
            DriverError::Dma(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for DriverError {
    fn from(e: SimError) -> DriverError {
        DriverError::Sim(e)
    }
}

impl From<DmaError> for DriverError {
    fn from(e: DmaError) -> DriverError {
        DriverError::Dma(e)
    }
}

/// Serializes a tiled FM into the DDR byte image (channel-major,
/// row-major tiles, 16 bytes per tile).
pub fn fm_to_bytes(fm: &TiledFeatureMap<Sm8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(fm.tile_count() * TILE_BYTES);
    for t in fm.as_tiles() {
        for v in t.as_array() {
            out.push(v.to_bits());
        }
    }
    out
}

/// One stripe of a pass.
#[derive(Debug, Clone, Copy)]
struct Stripe {
    /// Output tile rows [a, b).
    out_a: usize,
    out_b: usize,
    /// Input tile rows [lo, hi) resident.
    in_lo: usize,
    in_hi: usize,
}

/// Input tile-row range needed for output tile rows `[a, b)`.
fn input_rows_for(op: Option<PoolPadOp>, a: usize, b: usize, in_rows: usize) -> (usize, usize) {
    let (lo, hi) = match op {
        // Convolution on pre-padded input: out row r needs in rows r..r+2.
        None => (a, b + 1),
        Some(PoolPadOp::MaxPool { k, stride }) => {
            let (k, s) = (k as usize, stride as usize);
            (a * s, ((4 * b - 1) * s + k - 1) / 4 + 1)
        }
        Some(PoolPadOp::Pad { amount }) => {
            let p = amount as usize;
            ((4 * a).saturating_sub(p) / 4, (4 * b).saturating_sub(p).div_ceil(4).max(1))
        }
    };
    (lo.min(in_rows), hi.min(in_rows).max(lo.min(in_rows)))
}

/// Plans stripes so input + output words fit the banks.
fn plan_stripes(
    layer: &str,
    op: Option<PoolPadOp>,
    out_rows: usize,
    in_rows: usize,
    words_in_per_row: usize,
    words_out_per_row: usize,
    bank_tiles: usize,
) -> Result<Vec<Stripe>, DriverError> {
    let fits = |a: usize, ro: usize| {
        let (lo, hi) = input_rows_for(op, a, a + ro, in_rows);
        (hi - lo) * words_in_per_row + ro * words_out_per_row <= bank_tiles
    };
    let mut stripes = Vec::new();
    let mut a = 0;
    while a < out_rows {
        let mut ro = out_rows - a;
        while ro > 1 && !fits(a, ro) {
            ro -= 1;
        }
        if !fits(a, ro) {
            let (lo, hi) = input_rows_for(op, a, a + 1, in_rows);
            return Err(DriverError::LayerTooLarge {
                layer: layer.to_string(),
                needed: (hi - lo) * words_in_per_row + words_out_per_row,
                capacity: bank_tiles,
            });
        }
        let (in_lo, in_hi) = input_rows_for(op, a, a + ro, in_rows);
        stripes.push(Stripe { out_a: a, out_b: a + ro, in_lo, in_hi });
        a += ro;
    }
    Ok(stripes)
}

/// Mutable SoC context threaded through a network run.
struct Soc {
    ddr: DdrModel,
    dma: zskip_soc::dma::DmaController,
}

impl Soc {
    fn new(fault_plan: Option<SharedFaultPlan>) -> Soc {
        // 1 GiB DDR4 region, default System I timing.
        let mut dma = zskip_soc::dma::DmaController::new();
        if let Some(plan) = fault_plan {
            dma.set_fault_plan(plan);
        }
        Soc { ddr: DdrModel::new(1 << 30), dma }
    }
}

/// DDR staging area for activations: ping-pong between two regions.
const DDR_FM_A: usize = 0;
const DDR_FM_B: usize = 256 << 20;
const DDR_WEIGHTS: usize = 512 << 20;

/// Validating builder for [`Driver`]. This is the preferred construction
/// path: it rejects degenerate configurations up front instead of letting
/// them surface as panics deep in a pass.
///
/// ```
/// # use zskip_core::{AccelConfig, BackendKind, Driver};
/// # use zskip_hls::AccelArch;
/// let config = AccelConfig::from_arch(
///     &AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 4096 },
///     100.0,
/// );
/// let driver = Driver::builder(config).backend(BackendKind::Model).build().unwrap();
/// assert!(driver.functional);
/// ```
#[derive(Debug, Clone)]
pub struct DriverBuilder {
    config: AccelConfig,
    backend: BackendKind,
    filter_grouping: bool,
    functional: bool,
    zero_skipping: bool,
    fault_plan: Option<SharedFaultPlan>,
}

impl DriverBuilder {
    /// Starts a builder from a configuration, with the [`Driver::new`]
    /// defaults (model backend, functional, zero-skipping on).
    pub fn new(config: AccelConfig) -> DriverBuilder {
        DriverBuilder {
            config,
            backend: BackendKind::Model,
            filter_grouping: false,
            functional: true,
            zero_skipping: true,
            fault_plan: None,
        }
    }

    /// Selects the execution backend.
    pub fn backend(mut self, backend: BackendKind) -> DriverBuilder {
        self.backend = backend;
        self
    }

    /// Enables the future-work filter grouping.
    pub fn filter_grouping(mut self, on: bool) -> DriverBuilder {
        self.filter_grouping = on;
        self
    }

    /// When `false`, skip functional arithmetic (stats-only sweeps).
    pub fn functional(mut self, on: bool) -> DriverBuilder {
        self.functional = on;
        self
    }

    /// When `false`, pack every weight slot (the no-skipping ablation).
    pub fn zero_skipping(mut self, on: bool) -> DriverBuilder {
        self.zero_skipping = on;
        self
    }

    /// Attaches a fault plan: the driver threads it into the DMA engine
    /// and (on the cycle backend) the simulation engine, so `dma:*` and
    /// `fifo:*` injections fire during [`Driver::run_network`].
    pub fn fault_plan(mut self, plan: SharedFaultPlan) -> DriverBuilder {
        self.fault_plan = Some(plan);
        self
    }

    /// Validates the configuration and builds the driver.
    ///
    /// # Errors
    /// [`DriverError::InvalidConfig`] when a structural parameter is zero,
    /// when `units != lanes` on the cycle backend (accumulator lanes map
    /// 1:1 onto write units), or when stats-only mode is requested on the
    /// cycle backend (its arithmetic cannot be turned off).
    pub fn build(self) -> Result<Driver, DriverError> {
        let c = &self.config;
        for (name, v) in [
            ("units", c.units),
            ("lanes", c.lanes),
            ("instances", c.instances),
            ("bank_tiles", c.bank_tiles),
            ("fifo_depth", c.fifo_depth),
        ] {
            if v == 0 {
                return Err(DriverError::InvalidConfig(format!("{name} must be nonzero")));
            }
        }
        if self.backend == BackendKind::Cycle && c.units != c.lanes {
            return Err(DriverError::InvalidConfig(format!(
                "cycle backend requires units == lanes (got {} units, {} lanes)",
                c.units, c.lanes
            )));
        }
        if self.backend == BackendKind::Cycle && !self.functional {
            return Err(DriverError::InvalidConfig(
                "stats-only mode requires the model backend".into(),
            ));
        }
        Ok(Driver {
            config: self.config,
            backend: self.backend,
            filter_grouping: self.filter_grouping,
            functional: self.functional,
            zero_skipping: self.zero_skipping,
            fault_plan: self.fault_plan,
        })
    }
}

impl Driver {
    /// Creates a driver. Thin shim kept for existing callers; prefer
    /// [`Driver::builder`], which validates the configuration and can
    /// attach a fault plan.
    pub fn new(config: AccelConfig, backend: BackendKind) -> Driver {
        Driver {
            config,
            backend,
            filter_grouping: false,
            functional: true,
            zero_skipping: true,
            fault_plan: None,
        }
    }

    /// A driver that reports throughput only (no arithmetic): used for
    /// full-network sweeps where outputs are not inspected. Thin shim;
    /// prefer `Driver::builder(config).functional(false).build()`.
    pub fn stats_only(config: AccelConfig) -> Driver {
        Driver {
            config,
            backend: BackendKind::Model,
            filter_grouping: false,
            functional: false,
            zero_skipping: true,
            fault_plan: None,
        }
    }

    /// Starts a validating [`DriverBuilder`] for this configuration.
    pub fn builder(config: AccelConfig) -> DriverBuilder {
        DriverBuilder::new(config)
    }

    /// Attaches (or replaces) the fault plan after construction.
    pub fn set_fault_plan(&mut self, plan: SharedFaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Runs full network inference on the simulated SoC.
    ///
    /// # Errors
    /// [`DriverError::LayerTooLarge`] when a layer cannot be striped into
    /// the banks; [`DriverError::Sim`] on cycle-backend failures;
    /// [`DriverError::Dma`] on DMA faults; [`DriverError::InvalidNetwork`]
    /// when the spec's shapes do not propagate.
    pub fn run_network(
        &self,
        qnet: &QuantizedNetwork,
        input: &Tensor<f32>,
    ) -> Result<InferenceReport, DriverError> {
        let mut scratch = Scratch::new();
        self.run_network_scratch(qnet, input, &mut scratch)
    }

    /// [`Driver::run_network`] reusing a caller-owned [`Scratch`] for the
    /// host-side buffers (input quantization, FC ping-pong). The batch
    /// engine keeps one arena per worker thread so streaming inference
    /// stops re-allocating those buffers per image; the conv path still
    /// runs through the simulated SoC's own tiled storage.
    ///
    /// # Errors
    /// Same as [`Driver::run_network`].
    pub fn run_network_scratch(
        &self,
        qnet: &QuantizedNetwork,
        input: &Tensor<f32>,
        scratch: &mut Scratch,
    ) -> Result<InferenceReport, DriverError> {
        let mut soc = Soc::new(self.fault_plan.clone());
        let (act_q, flat_a, flat_b) = scratch.host_buffers();
        input.map_into(act_q, |v| qnet.input_params.quantize(v));
        let mut fm = TiledFeatureMap::from_tensor(act_q);
        let mut layers = Vec::new();
        let mut conv_i = 0;
        let mut fc_i = 0;
        // Which FC ping-pong buffer holds the newest activations.
        let mut flat: Option<bool> = None;
        let shapes =
            qnet.spec.shapes().map_err(|e| DriverError::InvalidNetwork(e.to_string()))?;

        for (li, layer) in qnet.spec.layers.iter().enumerate() {
            match layer {
                LayerSpec::Conv { name, stride, pad, k, .. } => {
                    if *stride != 1 {
                        return Err(DriverError::Unsupported {
                            layer: name.clone(),
                            reason: format!("conv stride {stride}; the datapath is stride-1 (VGG-style)"),
                        });
                    }
                    if *k > zskip_tensor::TILE_DIM {
                        return Err(DriverError::Unsupported {
                            layer: name.clone(),
                            reason: format!("kernel {k}x{k} exceeds the 4x4 weight tile"),
                        });
                    }
                    let qw = &qnet.conv[conv_i].weights;
                    let mut stats = PassStats::default();
                    let mut src = fm;
                    // Explicit pad pass (hardware pad instruction).
                    if *pad > 0 {
                        let (padded, pad_stats) = self.run_poolpad_pass(
                            &format!("{name}/pad"),
                            &src,
                            PoolPadOp::Pad { amount: *pad as u8 },
                            Shape::new(
                                src.logical_shape().c,
                                src.logical_shape().h + 2 * pad,
                                src.logical_shape().w + 2 * pad,
                            ),
                            &mut soc,
                        )?;
                        stats.merge(&pad_stats);
                        src = padded;
                    }
                    let out_shape = shapes[li + 1];
                    let (out, conv_stats) = self.run_conv_pass(name, &src, qw, out_shape, &mut soc)?;
                    stats.merge(&conv_stats);
                    layers.push(LayerReport {
                        name: name.clone(),
                        is_conv: true,
                        dense_macs: layer.macs(shapes[li]),
                        stats,
                    });
                    fm = out;
                    *act_q = fm.to_tensor().cropped(out_shape.h, out_shape.w);
                    conv_i += 1;
                }
                LayerSpec::MaxPool { name, k, stride } => {
                    let out_shape = shapes[li + 1];
                    let (out, stats) = self.run_poolpad_pass(
                        name,
                        &fm,
                        PoolPadOp::MaxPool { k: *k as u8, stride: *stride as u8 },
                        out_shape,
                        &mut soc,
                    )?;
                    layers.push(LayerReport { name: name.clone(), is_conv: false, dense_macs: 0, stats });
                    fm = out;
                    *act_q = fm.to_tensor().cropped(out_shape.h, out_shape.w);
                }
                LayerSpec::Fc { name, .. } => {
                    // Host-side (ARM) execution, as in the paper; the arena's
                    // FC buffers alternate so nothing is copied or allocated.
                    flat = Some(match flat {
                        None => {
                            fc_quant_into(act_q.as_slice(), &qnet.fc[fc_i], flat_a);
                            false
                        }
                        Some(false) => {
                            fc_quant_into(flat_a, &qnet.fc[fc_i], flat_b);
                            true
                        }
                        Some(true) => {
                            fc_quant_into(flat_b, &qnet.fc[fc_i], flat_a);
                            false
                        }
                    });
                    fc_i += 1;
                    layers.push(LayerReport {
                        name: name.clone(),
                        is_conv: false,
                        dense_macs: layer.macs(shapes[li]),
                        stats: PassStats::default(),
                    });
                }
                LayerSpec::Softmax => {
                    // Monotone; host applies it for probabilities, argmax
                    // unchanged on logits.
                }
            }
        }

        let output = match flat {
            None => act_q.as_slice().to_vec(),
            Some(false) => flat_a.clone(),
            Some(true) => flat_b.clone(),
        };
        let total_cycles = layers.iter().map(|l| l.stats.total_cycles).sum();
        let ddr_bytes = soc.ddr.bytes_read() + soc.ddr.bytes_written();
        Ok(InferenceReport { layers, output, total_cycles, ddr_bytes })
    }

    /// Runs one convolution pass (input already padded; stride 1).
    fn run_conv_pass(
        &self,
        name: &str,
        input: &TiledFeatureMap<Sm8>,
        qw: &QuantConvWeights,
        out_shape: Shape,
        soc: &mut Soc,
    ) -> Result<(TiledFeatureMap<Sm8>, PassStats), DriverError> {
        // Optional future-work filter grouping: reorder output channels by
        // non-zero count so lockstep lanes balance; un-permuted on output.
        let grouping = if self.filter_grouping {
            let nnz: Vec<usize> = (0..qw.out_c).map(|o| qw.output_filter_nnz(o)).collect();
            Some(FilterGrouping::by_nnz(&nnz, self.config.lanes))
        } else {
            None
        };
        let permuted;
        let qw = if let Some(g) = &grouping {
            permuted = permute_filters(qw, &g.order);
            &permuted
        } else {
            qw
        };

        let in_rows = input.tiles_y();
        let out = TiledFeatureMap::<Sm8>::zeros(out_shape);
        let out_rows = out.tiles_y();
        let words_in = input.channels().div_ceil(4) * input.tiles_x();
        let words_out = out_shape.c.div_ceil(4) * out.tiles_x();
        let stripes = plan_stripes(name, None, out_rows, in_rows, words_in, words_out, self.config.bank_tiles)?;

        // Stage activations and packed weights in DDR.
        let in_bytes = fm_to_bytes(input);
        soc.ddr.write_block(DDR_FM_A, &in_bytes);
        let groups: Vec<GroupWeights> = (0..qw.out_c.div_ceil(self.config.lanes))
            .map(|g| {
                GroupWeights::from_filters_with_skipping(
                    qw,
                    g * self.config.lanes,
                    self.config.lanes,
                    self.zero_skipping,
                )
            })
            .collect();
        let mut group_offsets = Vec::with_capacity(groups.len());
        {
            let mut w_all = Vec::new();
            for g in &groups {
                group_offsets.push(w_all.len());
                w_all.extend_from_slice(&g.to_bytes());
            }
            soc.ddr.write_block(DDR_WEIGHTS, &w_all);
        }

        let mut stats = PassStats {
            per_instance_cycles: vec![0; self.config.instances],
            stripes: stripes.len(),
            striping_factor: stripes.iter().map(|s| s.in_hi - s.in_lo).sum::<usize>() as f64
                / in_rows.max(1) as f64,
            ..Default::default()
        };
        let mut out_fm = out;

        // Work distribution across instances: multi-stripe layers give each
        // instance separate stripes (the paper's "each instance operates
        // concurrently on separate stripes of FMs"); single-stripe layers
        // (deep, small-FM) instead replicate the IFM stripe into both
        // instances' banks and split the OFM groups between them.
        let split_groups = stripes.len() < self.config.instances && self.config.instances > 1;

        for (si, stripe) in stripes.iter().enumerate() {
            let in_layout = FmLayout {
                base: 0,
                channels: input.channels(),
                tiles_x: input.tiles_x(),
                tile_rows: stripe.in_hi - stripe.in_lo,
            };
            let out_layout = FmLayout {
                base: in_layout.end(),
                channels: out_shape.c,
                tiles_x: out_fm.tiles_x(),
                tile_rows: stripe.out_b - stripe.out_a,
            };

            let parts = if split_groups { self.config.instances } else { 1 };
            let chunk = groups.len().div_ceil(parts);
            for part in 0..parts {
                let instance = if split_groups { part } else { si % self.config.instances };
                let group_range = (part * chunk)..((part + 1) * chunk).min(groups.len());
                if group_range.is_empty() {
                    continue;
                }
                let mut banks = BankSet::new(&self.config);

                // DMA in: one descriptor per channel (replicated per part
                // when groups are split — both instances need the IFMs).
                stats.io_dma_cycles += self.dma_fm_stripe(
                    soc,
                    DDR_FM_A,
                    input,
                    stripe.in_lo..stripe.in_hi,
                    &in_layout,
                    &mut banks,
                    true,
                )?;

                // Per-group: weight preload + conv instruction.
                let mut scratchpad = Vec::new();
                let mut instrs = Vec::new();
                for gi in group_range {
                    let g = &groups[gi];
                    let bytes = g.total_bytes();
                    let (_, wcycles) = soc.ddr.read_block(DDR_WEIGHTS + group_offsets[gi], bytes);
                    stats.weight_dma_cycles += wcycles;
                    let ofm_first = gi * self.config.lanes;
                    let wgt_base = scratchpad.len() as u32;
                    scratchpad.extend_from_slice(&g.to_bytes());
                    let active = self.config.lanes.min(qw.out_c - ofm_first);
                    let mut bias = [0i32; 4];
                    for (lane, b) in bias.iter_mut().enumerate().take(active) {
                        *b = qw.bias_acc[ofm_first + lane].clamp(i32::MIN as i64, i32::MAX as i64) as i32;
                    }
                    instrs.push(Instruction::Conv(ConvInstr {
                        ofm_first: ofm_first as u16,
                        ifm_count: qw.in_c as u16,
                        ifm_base: 0,
                        ifm_tiles_x: in_layout.tiles_x as u16,
                        ifm_tile_rows: in_layout.tile_rows as u16,
                        ifm_row_offset: (stripe.out_a - stripe.in_lo) as u16,
                        ofm_base: out_layout.base as u32,
                        ofm_tiles_x: out_layout.tiles_x as u16,
                        ofm_tile_rows: out_layout.tile_rows as u16,
                        wgt_base,
                        bias,
                        requant_mult: qw.requant.mult as u16,
                        requant_shift: qw.requant.shift as u8,
                        relu: qw.relu,
                        active_lanes: active as u8,
                    }));
                }

                let (cycles, result_banks) = self.execute(banks, scratchpad, &instrs, &mut stats.counters)?;
                stats.per_instance_cycles[instance] += cycles;
                let mut banks = result_banks;

                // DMA out this part's OFM channels.
                out_layout.load_channels(
                    &banks,
                    &mut out_fm,
                    stripe.out_a..stripe.out_b,
                    (part * chunk * self.config.lanes)..(((part + 1) * chunk * self.config.lanes).min(out_shape.c)),
                );
                stats.io_dma_cycles += self.dma_fm_stripe(
                    soc,
                    DDR_FM_B,
                    &out_fm,
                    stripe.out_a..stripe.out_b,
                    &out_layout,
                    &mut banks,
                    false,
                )?;
            }
        }

        stats.finish();
        // Tile-aligned compute fills whole tiles; cells beyond the logical
        // extent are don't-cares that downstream boundary windows must
        // read as zero.
        out_fm.zero_round_up_region();
        // Undo the grouping permutation so downstream layers see model
        // channel order (host-side relabeling; free at DMA time).
        if let Some(g) = &grouping {
            out_fm = unpermute_channels(&out_fm, &g.order);
        }
        Ok((out_fm, stats))
    }

    /// Runs one pad or pool pass.
    fn run_poolpad_pass(
        &self,
        name: &str,
        input: &TiledFeatureMap<Sm8>,
        op: PoolPadOp,
        out_shape: Shape,
        soc: &mut Soc,
    ) -> Result<(TiledFeatureMap<Sm8>, PassStats), DriverError> {
        let in_rows = input.tiles_y();
        let mut out_fm = TiledFeatureMap::<Sm8>::zeros(out_shape);
        let out_rows = out_fm.tiles_y();
        let channels = input.channels();
        let words_in = channels.div_ceil(4) * input.tiles_x();
        let words_out = channels.div_ceil(4) * out_fm.tiles_x();
        let stripes =
            plan_stripes(name, Some(op), out_rows, in_rows, words_in, words_out, self.config.bank_tiles)?;

        let in_bytes = fm_to_bytes(input);
        soc.ddr.write_block(DDR_FM_A, &in_bytes);

        let mut stats = PassStats {
            per_instance_cycles: vec![0; self.config.instances],
            stripes: stripes.len(),
            striping_factor: stripes.iter().map(|s| s.in_hi - s.in_lo).sum::<usize>() as f64
                / in_rows.max(1) as f64,
            ..Default::default()
        };

        for (si, stripe) in stripes.iter().enumerate() {
            let instance = si % self.config.instances;
            let mut banks = BankSet::new(&self.config);
            let in_layout = FmLayout {
                base: 0,
                channels,
                tiles_x: input.tiles_x(),
                tile_rows: stripe.in_hi - stripe.in_lo,
            };
            let out_layout = FmLayout {
                base: in_layout.end(),
                channels,
                tiles_x: out_fm.tiles_x(),
                tile_rows: stripe.out_b - stripe.out_a,
            };
            stats.io_dma_cycles += self
                .dma_fm_stripe(soc, DDR_FM_A, input, stripe.in_lo..stripe.in_hi, &in_layout, &mut banks, true)?;

            let instr = Instruction::PoolPad(PoolPadInstr {
                channels: channels as u16,
                in_base: 0,
                in_tiles_x: in_layout.tiles_x as u16,
                in_tile_rows: in_layout.tile_rows as u16,
                in_row_start: stripe.in_lo as u16,
                out_base: out_layout.base as u32,
                out_tiles_x: out_layout.tiles_x as u16,
                out_tile_rows: out_layout.tile_rows as u16,
                out_row_start: stripe.out_a as u16,
                op,
            });
            let (cycles, result_banks) = self.execute(banks, Vec::new(), &[instr], &mut stats.counters)?;
            stats.per_instance_cycles[instance] += cycles;
            let mut banks = result_banks;
            out_layout.load(&banks, &mut out_fm, stripe.out_a..stripe.out_b);
            stats.io_dma_cycles += self
                .dma_fm_stripe(soc, DDR_FM_B, &out_fm, stripe.out_a..stripe.out_b, &out_layout, &mut banks, false)?;
        }
        stats.finish();
        out_fm.zero_round_up_region();
        Ok((out_fm, stats))
    }

    /// Executes an instruction batch on the configured backend.
    fn execute(
        &self,
        mut banks: BankSet,
        scratchpad: Vec<u8>,
        instrs: &[Instruction],
        counters: &mut Counters,
    ) -> Result<(u64, BankSet), DriverError> {
        match self.backend {
            BackendKind::Model => {
                let outcome = model::run_instructions_with_mode(
                    &self.config,
                    &mut banks,
                    &scratchpad,
                    instrs,
                    counters,
                    self.functional,
                );
                Ok((outcome.cycles, banks))
            }
            BackendKind::Cycle => {
                let outcome = match &self.fault_plan {
                    Some(plan) => cycle::run_instructions_with_faults(
                        &self.config,
                        banks,
                        scratchpad,
                        instrs,
                        u64::MAX,
                        plan.clone(),
                    ),
                    None => cycle::run_instructions(&self.config, banks, scratchpad, instrs, u64::MAX),
                }
                .map_err(DriverError::Sim)?;
                counters.merge(&outcome.counters);
                Ok((outcome.cycles, outcome.banks))
            }
        }
    }

    /// Moves one FM stripe between DDR and banks via the DMA engine,
    /// returning the cycle cost. `to_banks` selects the direction.
    ///
    /// # Errors
    /// [`DriverError::Dma`]: with a well-planned stripe this only happens
    /// under injected faults (truncation, parity).
    #[allow(clippy::too_many_arguments)]
    fn dma_fm_stripe(
        &self,
        soc: &mut Soc,
        ddr_base: usize,
        fm: &TiledFeatureMap<Sm8>,
        rows: std::ops::Range<usize>,
        layout: &FmLayout,
        banks: &mut BankSet,
        to_banks: bool,
    ) -> Result<u64, DriverError> {
        use zskip_soc::dma::{DmaDescriptor, DmaDirection};
        let mut cycles = 0;
        let tiles_per_row = fm.tiles_x();
        let rows_per_channel = fm.tiles_y();
        for c in 0..fm.channels() {
            let ddr_addr = ddr_base + (c * rows_per_channel + rows.start) * tiles_per_row * TILE_BYTES;
            let desc = DmaDescriptor {
                direction: if to_banks { DmaDirection::DdrToBank } else { DmaDirection::BankToDdr },
                ddr_addr,
                bank: FmLayout::bank_of(c),
                bank_tile_index: layout.addr(c, 0, 0),
                tiles: rows.len() * tiles_per_row,
            };
            cycles += soc.dma.run(&desc, &mut soc.ddr, banks).map_err(DriverError::Dma)?;
        }
        Ok(cycles)
    }
}

/// Reorders a layer's output filters (weights + bias) by `order`.
fn permute_filters(qw: &QuantConvWeights, order: &[usize]) -> QuantConvWeights {
    let kk = qw.k * qw.k;
    let per_filter = qw.in_c * kk;
    let mut w = Vec::with_capacity(qw.w.len());
    let mut bias = Vec::with_capacity(qw.bias_acc.len());
    for &o in order {
        w.extend_from_slice(&qw.w[o * per_filter..(o + 1) * per_filter]);
        bias.push(qw.bias_acc[o]);
    }
    QuantConvWeights::new(qw.out_c, qw.in_c, qw.k, w, bias, qw.requant, qw.relu)
}

/// Un-permutes channels of an FM produced under a filter grouping.
fn unpermute_channels(fm: &TiledFeatureMap<Sm8>, order: &[usize]) -> TiledFeatureMap<Sm8> {
    let mut out = TiledFeatureMap::zeros(fm.logical_shape());
    for (pos, &orig) in order.iter().enumerate() {
        for ty in 0..fm.tiles_y() {
            for tx in 0..fm.tiles_x() {
                *out.tile_mut(orig, ty, tx) = *fm.tile(pos, ty, tx);
            }
        }
    }
    out
}

// `Soc` must be nameable by callers of the public pass runners.
pub use self::soc_public::SocHandle;
mod soc_public {
    /// Opaque SoC handle for single-pass benchmarking entry points.
    pub struct SocHandle(pub(super) super::Soc);

    impl SocHandle {
        /// Creates a fresh SoC context (1 GiB DDR, default timing).
        pub fn new() -> SocHandle {
            SocHandle(super::Soc::new(None))
        }

        /// A SoC context with a fault plan attached to its DMA engine.
        pub fn with_faults(plan: zskip_fault::SharedFaultPlan) -> SocHandle {
            SocHandle(super::Soc::new(Some(plan)))
        }
    }

    impl Default for SocHandle {
        fn default() -> Self {
            Self::new()
        }
    }
}

impl Driver {
    /// Single-layer conv entry point for benches/ablations.
    ///
    /// # Errors
    /// See [`Driver::run_network`].
    pub fn conv_pass(
        &self,
        name: &str,
        input: &TiledFeatureMap<Sm8>,
        qw: &QuantConvWeights,
        out_shape: Shape,
        soc: &mut SocHandle,
    ) -> Result<(TiledFeatureMap<Sm8>, PassStats), DriverError> {
        self.run_conv_pass(name, input, qw, out_shape, &mut soc.0)
    }

    /// Single-layer pool/pad entry point for benches/ablations.
    ///
    /// # Errors
    /// See [`Driver::run_network`].
    pub fn poolpad_pass(
        &self,
        name: &str,
        input: &TiledFeatureMap<Sm8>,
        op: PoolPadOp,
        out_shape: Shape,
        soc: &mut SocHandle,
    ) -> Result<(TiledFeatureMap<Sm8>, PassStats), DriverError> {
        self.run_poolpad_pass(name, input, op, out_shape, &mut soc.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zskip_hls::AccelArch;
    use zskip_nn::eval::synthetic_inputs;
    use zskip_nn::layer::{conv3x3, maxpool2x2, NetworkSpec};
    use zskip_nn::model::{Network, SyntheticModelConfig};
    use zskip_quant::DensityProfile;

    fn tiny_spec() -> NetworkSpec {
        NetworkSpec {
            name: "tiny".into(),
            input: Shape::new(3, 12, 12),
            layers: vec![
                conv3x3("c1", 3, 6),
                maxpool2x2("p1"),
                conv3x3("c2", 6, 9),
                maxpool2x2("p2"),
                LayerSpec::Fc { name: "fc".into(), in_features: 9 * 3 * 3, out_features: 5, relu: false },
            ],
        }
    }

    fn quantized(density: f64, seed: u64) -> (QuantizedNetwork, Tensor<f32>) {
        let spec = tiny_spec();
        let net = Network::synthetic(
            spec.clone(),
            &SyntheticModelConfig { seed, density: DensityProfile::uniform(2, density) },
        );
        let calib = synthetic_inputs(seed ^ 1, 2, spec.input);
        let qnet = net.quantize(&calib);
        let input = synthetic_inputs(seed ^ 2, 1, spec.input).pop().expect("one input");
        (qnet, input)
    }

    fn config(bank_tiles: usize, instances: usize) -> AccelConfig {
        AccelConfig::from_arch(
            &AccelArch { conv_units: 4, lanes: 4, instances, bank_tiles },
            100.0,
        )
    }

    #[test]
    fn model_backend_matches_software_reference_bit_exact() {
        let (qnet, input) = quantized(0.6, 11);
        let driver = Driver::new(config(4096, 1), BackendKind::Model);
        let report = driver.run_network(&qnet, &input).expect("network runs");
        assert_eq!(report.output, qnet.forward_quant(&input));
        assert!(report.total_cycles > 0);
        assert!(report.ddr_bytes > 0);
        assert_eq!(report.conv_layers().count(), 2);
    }

    #[test]
    fn cycle_backend_matches_software_reference_bit_exact() {
        let (qnet, input) = quantized(0.5, 22);
        let driver = Driver::new(config(4096, 1), BackendKind::Cycle);
        let report = driver.run_network(&qnet, &input).expect("network runs");
        assert_eq!(report.output, qnet.forward_quant(&input));
    }

    #[test]
    fn model_and_cycle_backends_agree_on_cycles_within_tolerance() {
        let (qnet, input) = quantized(0.4, 33);
        let model = Driver::new(config(4096, 1), BackendKind::Model).run_network(&qnet, &input).unwrap();
        let cycle = Driver::new(config(4096, 1), BackendKind::Cycle).run_network(&qnet, &input).unwrap();
        assert_eq!(model.output, cycle.output, "functional equality");
        let diff = model.total_cycles.abs_diff(cycle.total_cycles) as f64;
        assert!(
            diff <= 0.03 * cycle.total_cycles as f64 + 400.0,
            "model {} vs cycle {}",
            model.total_cycles,
            cycle.total_cycles
        );
    }

    #[test]
    fn striping_preserves_results() {
        let (qnet, input) = quantized(0.7, 44);
        // Tiny banks: forces multiple stripes per layer.
        let striped = Driver::new(config(20, 1), BackendKind::Model).run_network(&qnet, &input).unwrap();
        assert_eq!(striped.output, qnet.forward_quant(&input));
        let roomy = Driver::new(config(8192, 1), BackendKind::Model).run_network(&qnet, &input).unwrap();
        let stripes_tight: usize = striped.layers.iter().map(|l| l.stats.stripes).sum();
        let stripes_roomy: usize = roomy.layers.iter().map(|l| l.stats.stripes).sum();
        assert!(stripes_tight > stripes_roomy, "{stripes_tight} vs {stripes_roomy}");
        // Halo re-fetch shows up as striping factor > 1 on conv layers.
        assert!(striped.conv_layers().any(|l| l.stats.striping_factor > 1.01));
    }

    #[test]
    fn two_instances_cut_compute_on_striped_layers() {
        let (qnet, input) = quantized(1.0, 55);
        let one = Driver::new(config(20, 1), BackendKind::Model).run_network(&qnet, &input).unwrap();
        let two = Driver::new(config(20, 2), BackendKind::Model).run_network(&qnet, &input).unwrap();
        assert_eq!(two.output, qnet.forward_quant(&input));
        let c1: u64 = one.conv_layers().map(|l| l.stats.compute_cycles).sum();
        let c2: u64 = two.conv_layers().map(|l| l.stats.compute_cycles).sum();
        assert!(c2 < c1, "scale-out must reduce busiest-instance compute: {c2} vs {c1}");
    }

    #[test]
    fn filter_grouping_keeps_results_and_not_slower() {
        let (qnet, input) = quantized(0.3, 66);
        let mut plain = Driver::new(config(4096, 1), BackendKind::Model);
        plain.filter_grouping = false;
        let mut grouped = plain.clone();
        grouped.filter_grouping = true;
        let a = plain.run_network(&qnet, &input).unwrap();
        let b = grouped.run_network(&qnet, &input).unwrap();
        assert_eq!(a.output, b.output, "grouping must not change results");
        let ca: u64 = a.conv_layers().map(|l| l.stats.compute_cycles).sum();
        let cb: u64 = b.conv_layers().map(|l| l.stats.compute_cycles).sum();
        assert!(cb <= ca + ca / 50, "grouping should not slow down: {cb} vs {ca}");
    }

    #[test]
    fn pruned_network_runs_faster_than_dense() {
        let (dense, input) = quantized(1.0, 77);
        let (pruned, _) = quantized(0.3, 77);
        let driver = Driver::new(config(4096, 1), BackendKind::Model);
        let d = driver.run_network(&dense, &input).unwrap();
        let p = driver.run_network(&pruned, &input).unwrap();
        let cd: u64 = d.conv_layers().map(|l| l.stats.compute_cycles).sum();
        let cp: u64 = p.conv_layers().map(|l| l.stats.compute_cycles).sum();
        assert!(cp < cd, "zero-skipping must help: pruned {cp} vs dense {cd}");
    }

    #[test]
    fn layer_too_large_is_reported() {
        let (qnet, input) = quantized(1.0, 88);
        let err = Driver::new(config(8, 1), BackendKind::Model).run_network(&qnet, &input).unwrap_err();
        match err {
            DriverError::LayerTooLarge { needed, capacity, .. } => {
                assert!(needed > capacity);
            }
            other => panic!("expected LayerTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn builder_validates_configuration() {
        let err = Driver::builder(config(0, 1)).build().unwrap_err();
        assert_eq!(err, DriverError::InvalidConfig("bank_tiles must be nonzero".into()));

        let mut cfg = config(4096, 1);
        cfg.lanes = 2; // units stays 4: illegal on the cycle backend.
        let err = Driver::builder(cfg).backend(BackendKind::Cycle).build().unwrap_err();
        assert!(matches!(err, DriverError::InvalidConfig(ref r) if r.contains("units == lanes")));
        // The same geometry is fine on the model backend.
        assert!(Driver::builder(cfg).build().is_ok());

        let err =
            Driver::builder(config(4096, 1)).backend(BackendKind::Cycle).functional(false).build().unwrap_err();
        assert!(matches!(err, DriverError::InvalidConfig(ref r) if r.contains("stats-only")));
    }

    #[test]
    fn builder_matches_legacy_constructors() {
        let built = Driver::builder(config(4096, 1)).backend(BackendKind::Cycle).build().unwrap();
        let legacy = Driver::new(config(4096, 1), BackendKind::Cycle);
        assert_eq!(built.backend, legacy.backend);
        assert_eq!(built.functional, legacy.functional);
        assert_eq!(built.zero_skipping, legacy.zero_skipping);

        let stats = Driver::builder(config(4096, 1)).functional(false).build().unwrap();
        assert_eq!(stats.functional, Driver::stats_only(config(4096, 1)).functional);
    }

    #[test]
    fn injected_dma_truncation_surfaces_as_structured_error() {
        use zskip_fault::{FaultKind, FaultPlan};
        let (qnet, input) = quantized(0.6, 11);
        let plan = FaultPlan::new().inject("dma:xfer", 2, FaultKind::DmaTruncate { tiles: 1 }).shared();
        let driver =
            Driver::builder(config(4096, 1)).fault_plan(plan.clone()).build().expect("valid config");
        let err = driver.run_network(&qnet, &input).unwrap_err();
        assert!(
            matches!(err, DriverError::Dma(DmaError::Truncated { .. })),
            "expected truncation, got {err:?}"
        );
        assert_eq!(plan.lock().unwrap().fired().len(), 1, "exactly one fault fired");
    }

    #[test]
    fn gops_reporting_is_consistent() {
        let (qnet, input) = quantized(1.0, 99);
        let cfg = config(4096, 1);
        let report = Driver::new(cfg, BackendKind::Model).run_network(&qnet, &input).unwrap();
        let mean = report.mean_gops(&cfg);
        let peak = report.peak_gops(&cfg);
        assert!(peak >= mean && mean > 0.0, "peak {peak} mean {mean}");
        // Effective GOPS can never exceed peak arithmetic throughput for a
        // dense (unpruned) network.
        assert!(peak <= cfg.peak_gops() * 1.001, "peak {peak} vs hw {}", cfg.peak_gops());
    }
}

#[cfg(test)]
mod stripe_math_tests {
    use super::*;

    #[test]
    fn conv_needs_one_halo_row_below() {
        // Output tile rows [a, b) read input tile rows [a, b+1) (3x3 conv
        // on pre-padded input anchored at the same tile row).
        assert_eq!(input_rows_for(None, 0, 4, 100), (0, 5));
        assert_eq!(input_rows_for(None, 7, 9, 100), (7, 10));
        // Clamped at the input extent.
        assert_eq!(input_rows_for(None, 7, 9, 9), (7, 9));
    }

    #[test]
    fn pool_2x2_s2_maps_rows_two_to_one() {
        let op = Some(PoolPadOp::MaxPool { k: 2, stride: 2 });
        // Out tile row r covers element rows 4r..4r+4 -> in elements
        // 8r..8r+8 -> in tile rows 2r..2r+2.
        assert_eq!(input_rows_for(op, 0, 1, 100), (0, 2));
        assert_eq!(input_rows_for(op, 3, 5, 100), (6, 10));
    }

    #[test]
    fn pool_3x3_s2_needs_overlap_row() {
        let op = Some(PoolPadOp::MaxPool { k: 3, stride: 2 });
        // Last element of out tile row 0 is row 3: window rows 6..9 ->
        // in tile rows 0..3.
        assert_eq!(input_rows_for(op, 0, 1, 100), (0, 3));
    }

    #[test]
    fn pad_shifts_rows_up_by_the_amount() {
        let op = Some(PoolPadOp::Pad { amount: 1 });
        // Out tile row 0 (elements 0..4) reads in elements -1..3 -> tile 0.
        assert_eq!(input_rows_for(op, 0, 1, 100), (0, 1));
        // Out tile row 2 (elements 8..12) reads in elements 7..11 ->
        // tiles 1..3.
        assert_eq!(input_rows_for(op, 2, 3, 100), (1, 3));
    }

    #[test]
    fn planner_covers_output_exactly_once_under_pressure() {
        let stripes = plan_stripes("t", None, 17, 18, 10, 12, 80).expect("fits");
        let mut next = 0;
        for s in &stripes {
            assert_eq!(s.out_a, next, "no gaps or overlaps");
            assert!(s.out_b > s.out_a);
            // Capacity respected.
            assert!((s.in_hi - s.in_lo) * 10 + (s.out_b - s.out_a) * 12 <= 80);
            next = s.out_b;
        }
        assert_eq!(next, 17);
        assert!(stripes.len() > 1, "pressure must force striping");
    }

    #[test]
    fn planner_reports_impossible_capacity() {
        let err = plan_stripes("t", None, 4, 5, 10, 12, 20).unwrap_err();
        match err {
            DriverError::LayerTooLarge { needed, capacity, .. } => {
                assert!(needed > capacity);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
