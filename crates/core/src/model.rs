//! The transaction-level backend: closed-form cycles, functional results.
//!
//! Full VGG-16 inference is ~10^8 accelerator cycles — too slow to run at
//! cycle granularity for every sweep point. This backend executes the same
//! instruction streams as [`crate::cycle`] with identical functional
//! semantics (bit-exact bank contents) and a **closed-form cycle cost**
//! derived from the kernel implementations:
//!
//! * the data-staging unit is the steady-state bottleneck: every
//!   downstream unit sustains one item per cycle, inter-kernel FIFO slack
//!   hides the accumulate/finalize/barrier latency between positions, so
//!   the position cost is the *slowest staging unit's* phase sum — the
//!   lockstep filter imbalance and the 4-cycle quad-load floor appear
//!   exactly as in hardware;
//! * fixed per-instruction costs (decode, dispatch, pipeline fill, final
//!   drain) are small constants taken from the kernel structure.
//!
//! Property tests (`model_matches_cycle_backend`) validate the cost
//! formula against the cycle-exact backend on randomized layers; see
//! DESIGN.md §2 for the two-level-simulation methodology.

use crate::bank::BankSet;
use crate::config::AccelConfig;
use crate::isa::{ConvInstr, Instruction, PoolPadInstr};
use crate::layout::FmLayout;
use crate::poolpad::run_tile_program;
use crate::weights::GroupWeights;
use zskip_quant::{Requantizer, Sm8};
use zskip_sim::Counters;
use zskip_tensor::Tile;

/// Fixed cycles per conv instruction besides the position work:
/// controller decode + dispatch, staging command pop, quad pipeline fill,
/// and the end-of-instruction drain through conv -> accumulator ->
/// barrier -> write -> done. Derived from the kernel structure, validated
/// by the cross-backend property tests.
const CONV_FIXED_CYCLES: u64 = AccelConfig::INSTR_OVERHEAD_CYCLES + 2 + 1 + 4 + 10;

/// Fixed cycles per pool/pad instruction.
const POOL_FIXED_CYCLES: u64 = AccelConfig::INSTR_OVERHEAD_CYCLES + 2 + 1 + 6;

/// Outcome of the transaction-level execution of an instruction stream.
#[derive(Debug, Clone)]
pub struct ModelOutcome {
    /// Estimated cycles.
    pub cycles: u64,
    /// Activity counters with the same definitions as the cycle backend.
    pub counters: Counters,
}

/// Executes one instruction functionally and returns its cycle cost.
///
/// # Panics
/// Panics if the instruction references data outside the banks or a
/// malformed scratchpad — the driver constructs both.
pub fn run_instruction(
    config: &AccelConfig,
    banks: &mut BankSet,
    scratchpad: &[u8],
    instr: &Instruction,
    counters: &mut Counters,
) -> u64 {
    run_instruction_with_mode(config, banks, scratchpad, instr, counters, true)
}

/// Like [`run_instruction`], but with `functional = false` only cycle
/// costs and counters are produced (bank contents untouched). Cycle counts
/// never depend on activation values — only on weight sparsity and
/// geometry — so sweeps that report throughput alone can skip the
/// arithmetic.
pub fn run_instruction_with_mode(
    config: &AccelConfig,
    banks: &mut BankSet,
    scratchpad: &[u8],
    instr: &Instruction,
    counters: &mut Counters,
    functional: bool,
) -> u64 {
    match instr {
        Instruction::Conv(i) => run_conv(config, banks, scratchpad, i, counters, functional),
        Instruction::PoolPad(i) => run_poolpad(config, banks, i, counters, functional),
    }
}

/// Executes a whole instruction stream.
pub fn run_instructions(
    config: &AccelConfig,
    banks: &mut BankSet,
    scratchpad: &[u8],
    instructions: &[Instruction],
    counters: &mut Counters,
) -> ModelOutcome {
    run_instructions_with_mode(config, banks, scratchpad, instructions, counters, true)
}

/// Stream variant of [`run_instruction_with_mode`].
pub fn run_instructions_with_mode(
    config: &AccelConfig,
    banks: &mut BankSet,
    scratchpad: &[u8],
    instructions: &[Instruction],
    counters: &mut Counters,
    functional: bool,
) -> ModelOutcome {
    let mut cycles = 0;
    for i in instructions {
        cycles += run_instruction_with_mode(config, banks, scratchpad, i, counters, functional);
    }
    // Shared per-run epilogue (shutdown propagation).
    cycles += 4;
    ModelOutcome { cycles, counters: counters.clone() }
}

/// Like [`run_instructions_with_mode`], with each conv instruction's
/// group weights supplied **pre-parsed** — `groups[k]` pairs with the
/// `k`-th conv instruction in stream order. The driver serialized the
/// scratchpad image from those very groups, so skipping the per-image
/// re-parse is a pure host-side optimization: cycles, counters and bank
/// contents are identical to the scratchpad path.
///
/// # Panics
/// Panics if `groups` has fewer entries than the stream has conv
/// instructions.
pub fn run_instructions_prepacked(
    config: &AccelConfig,
    banks: &mut BankSet,
    instructions: &[Instruction],
    counters: &mut Counters,
    functional: bool,
    groups: &[GroupWeights],
) -> ModelOutcome {
    let mut cycles = 0;
    let mut conv_k = 0;
    for i in instructions {
        cycles += match i {
            Instruction::Conv(c) => {
                let g = &groups[conv_k];
                conv_k += 1;
                run_conv_with(config, banks, c, counters, functional, g)
            }
            Instruction::PoolPad(p) => run_poolpad(config, banks, p, counters, functional),
        };
    }
    cycles += 4;
    ModelOutcome { cycles, counters: counters.clone() }
}

fn in_layout(i: &ConvInstr) -> FmLayout {
    FmLayout {
        base: i.ifm_base as usize,
        channels: i.ifm_count as usize,
        tiles_x: i.ifm_tiles_x as usize,
        tile_rows: i.ifm_tile_rows as usize,
    }
}

/// Assembles the 8x8 quad region of channel `ifm` anchored at output tile
/// `(ty, tx)` — identical addressing to the staging kernel.
fn quad_region(banks: &BankSet, i: &ConvInstr, ifm: usize, ty: usize, tx: usize) -> [Sm8; 64] {
    let layout = in_layout(i);
    let bank = FmLayout::bank_of(ifm);
    let mut region = [Sm8::ZERO; 64];
    for (r, c) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)] {
        let row = ty + i.ifm_row_offset as usize + r;
        let col = tx + c;
        let tile = if row >= i.ifm_tile_rows as usize || col >= i.ifm_tiles_x as usize {
            Tile::zero()
        } else {
            banks.peek(bank, layout.addr(ifm, row, col))
        };
        for y in 0..4 {
            for x in 0..4 {
                region[(r * 4 + y) * 8 + c * 4 + x] = tile[(y, x)];
            }
        }
    }
    region
}

/// Closed-form cycle count of one conv instruction (no functional work).
/// Shared by the functional executor and the driver's planning estimates.
pub fn conv_instruction_cycles(config: &AccelConfig, i: &ConvInstr, weights: &GroupWeights) -> u64 {
    let positions = i.ofm_tile_rows as u64 * i.ofm_tiles_x as u64;
    let mut worst_unit = 0u64;
    for s in 0..config.units {
        let mut work = 0u64;
        for ifm in (0..i.ifm_count as usize).filter(|c| c % config.units == s) {
            let steps = weights.steps(ifm) as u64;
            if steps == 0 {
                continue; // whole-channel zero skip
            }
            let wfetch = (weights.ifm_bytes(ifm) as u64).div_ceil(config.weight_bytes_per_cycle as u64);
            work += 4u64.max(steps).max(wfetch);
        }
        // End-of-position marker; fully-skipped units still emit one.
        work += 1;
        worst_unit = worst_unit.max(work);
    }
    CONV_FIXED_CYCLES + positions * worst_unit
}

fn run_conv(
    config: &AccelConfig,
    banks: &mut BankSet,
    scratchpad: &[u8],
    i: &ConvInstr,
    counters: &mut Counters,
    functional: bool,
) -> u64 {
    let weights = GroupWeights::from_bytes(&scratchpad[i.wgt_base as usize..], i.ifm_count as usize, config.lanes)
        .expect("driver wrote a well-formed scratchpad image");
    run_conv_with(config, banks, i, counters, functional, &weights)
}

fn run_conv_with(
    config: &AccelConfig,
    banks: &mut BankSet,
    i: &ConvInstr,
    counters: &mut Counters,
    functional: bool,
    weights: &GroupWeights,
) -> u64 {
    let positions = i.ofm_tile_rows as u64 * i.ofm_tiles_x as u64;
    let requant = Requantizer { mult: i.requant_mult as u32, shift: i.requant_shift as u32 };
    let cycles = conv_instruction_cycles(config, i, weights);

    // Activity counters (same definitions as the cycle kernels).
    let mut applied = 0u64;
    let mut bubbles = 0u64;
    for ifm in 0..i.ifm_count as usize {
        let steps = weights.steps(ifm) as u64;
        if steps == 0 {
            continue;
        }
        let nnz: u64 = (0..config.lanes).map(|l| weights.lane_tile(ifm, l).nnz() as u64).sum();
        applied += nnz;
        bubbles += steps * config.lanes as u64 - nnz;
    }
    counters.add("weights_applied", applied * positions);
    counters.add("macs", applied * positions * 16);
    counters.add("bubble_lanes", bubbles * positions);

    if !functional {
        counters.add(
            "ofm_tiles_written",
            positions * (i.active_lanes as u64),
        );
        return cycles;
    }

    // Functional execution: output-stationary, per position.
    let out_planes = positions as usize;
    for pos in 0..positions as usize {
        let (ty, tx) = (pos / i.ofm_tiles_x as usize, pos % i.ofm_tiles_x as usize);
        let mut acc = vec![[0i64; 16]; config.lanes];
        for (lane, a) in acc.iter_mut().enumerate() {
            a.fill(i.bias[lane] as i64);
        }
        for ifm in 0..i.ifm_count as usize {
            if weights.steps(ifm) == 0 {
                continue;
            }
            let region = quad_region(banks, i, ifm, ty, tx);
            for (lane, a) in acc.iter_mut().enumerate() {
                for e in weights.lane_tile(ifm, lane).entries() {
                    let (dy, dx) = zskip_tensor::offset_to_dydx(e.offset);
                    for (j, slot) in a.iter_mut().enumerate() {
                        let v = region[(dy + j / 4) * 8 + (dx + j % 4)];
                        *slot += e.value.mul_exact(v) as i64;
                    }
                }
            }
        }
        for (lane, a) in acc.iter().enumerate() {
            if lane >= i.active_lanes as usize {
                continue;
            }
            let channel = i.ofm_first as usize + lane;
            let mut tile = Tile::zero();
            for (j, &v) in a.iter().enumerate() {
                tile.as_mut_array()[j] = if i.relu { requant.apply_relu(v) } else { requant.apply(v) };
            }
            let addr = i.ofm_base as usize + (channel / AccelConfig::BANKS) * out_planes + pos;
            banks.poke(FmLayout::bank_of(channel), addr, tile);
            counters.add("ofm_tiles_written", 1);
        }
    }
    cycles
}

fn run_poolpad(
    config: &AccelConfig,
    banks: &mut BankSet,
    i: &PoolPadInstr,
    counters: &mut Counters,
    functional: bool,
) -> u64 {
    let positions = i.out_tile_rows as usize * i.out_tiles_x as usize;
    let layout = FmLayout {
        base: i.in_base as usize,
        channels: i.channels as usize,
        tiles_x: i.in_tiles_x as usize,
        tile_rows: i.in_tile_rows as usize,
    };

    // Program lengths are channel-independent; compile once per position.
    let prog_len: Vec<u64> = (0..positions)
        .map(|pos| {
            let oty_local = pos / i.out_tiles_x as usize;
            let otx = pos % i.out_tiles_x as usize;
            (crate::poolpad::compile_tile_program(i.op, i.out_row_start as usize + oty_local, otx).len() as u64)
                .max(1)
        })
        .collect();

    let mut unit_work = vec![0u64; config.units];
    for c in 0..i.channels as usize {
        let bank = FmLayout::bank_of(c);
        for (pos, &plen) in prog_len.iter().enumerate() {
            unit_work[c % config.units] += plen;
            counters.add("pool_microops", plen);
            counters.add("ofm_tiles_written", 1);
            if !functional {
                continue;
            }
            let oty_local = pos / i.out_tiles_x as usize;
            let otx = pos % i.out_tiles_x as usize;
            let (tile, _) = run_tile_program(i.op, i.out_row_start as usize + oty_local, otx, |ty, tx| {
                let local_ty = ty - i.in_row_start as isize;
                if local_ty < 0 || tx < 0 || local_ty >= i.in_tile_rows as isize || tx >= i.in_tiles_x as isize {
                    Tile::zero()
                } else {
                    banks.peek(bank, layout.addr(c, local_ty as usize, tx as usize))
                }
            });
            let addr = i.out_base as usize + (c / AccelConfig::BANKS) * positions + pos;
            banks.poke(bank, addr, tile);
        }
    }
    POOL_FIXED_CYCLES + unit_work.iter().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle;
    use crate::isa::PoolPadOp;
    use proptest::prelude::*;
    use zskip_hls::AccelArch;
    use zskip_nn::conv::QuantConvWeights;
    use zskip_tensor::{Shape, Tensor, TiledFeatureMap};

    fn config() -> AccelConfig {
        AccelConfig::from_arch(&AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 4096 }, 100.0)
    }

    /// Builds banks + scratchpad + instruction stream for a conv layer
    /// (mirrors the cycle-backend test helper).
    fn build_conv(
        cfg: &AccelConfig,
        qw: &QuantConvWeights,
        input: &Tensor<Sm8>,
    ) -> (BankSet, Vec<u8>, Vec<Instruction>, FmLayout, Shape) {
        let padded = input.padded(1);
        let tiled_in = TiledFeatureMap::from_tensor(&padded);
        let in_layout = FmLayout::full(0, padded.shape());
        let out_shape = Shape::new(qw.out_c, input.shape().h, input.shape().w);
        let out_layout = FmLayout::full(in_layout.end(), out_shape);
        let mut banks = BankSet::new(cfg);
        in_layout.store(&mut banks, &tiled_in, 0..tiled_in.tiles_y());
        let mut scratchpad = Vec::new();
        let mut instrs = Vec::new();
        for g in 0..qw.out_c.div_ceil(cfg.lanes) {
            let ofm_first = g * cfg.lanes;
            let gw = GroupWeights::from_filters(qw, ofm_first, cfg.lanes);
            let wgt_base = scratchpad.len() as u32;
            scratchpad.extend_from_slice(&gw.to_bytes());
            let active = cfg.lanes.min(qw.out_c - ofm_first);
            let mut bias = [0i32; 4];
            for (lane, b) in bias.iter_mut().enumerate().take(active) {
                *b = qw.bias_acc[ofm_first + lane] as i32;
            }
            instrs.push(Instruction::Conv(ConvInstr {
                ofm_first: ofm_first as u16,
                ifm_count: qw.in_c as u16,
                ifm_base: in_layout.base as u32,
                ifm_tiles_x: in_layout.tiles_x as u16,
                ifm_tile_rows: in_layout.tile_rows as u16,
                ifm_row_offset: 0,
                ofm_base: out_layout.base as u32,
                ofm_tiles_x: out_layout.tiles_x as u16,
                ofm_tile_rows: out_layout.tile_rows as u16,
                wgt_base,
                bias,
                requant_mult: qw.requant.mult as u16,
                requant_shift: qw.requant.shift as u8,
                relu: qw.relu,
                active_lanes: active as u8,
            }));
        }
        (banks, scratchpad, instrs, out_layout, out_shape)
    }

    fn random_qw(out_c: usize, in_c: usize, seed: u64, density_pct: u64) -> QuantConvWeights {
        let w: Vec<Sm8> = (0..out_c * in_c * 9)
            .map(|i| {
                let h = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed) >> 33;
                if h % 100 < density_pct {
                    Sm8::from_i32_saturating((h % 255) as i32 - 127)
                } else {
                    Sm8::ZERO
                }
            })
            .collect();
        QuantConvWeights::new(
            out_c,
            in_c,
            3,
            w,
            (0..out_c as i64).map(|o| (o * 17) % 50 - 25).collect(),
            Requantizer::from_ratio(1.0 / 32.0),
            true,
        )
    }

    fn random_input(c: usize, h: usize, w: usize, seed: u64) -> Tensor<Sm8> {
        Tensor::from_fn(c, h, w, |ci, y, x| {
            let v = ((ci * 131 + y * 31 + x * 7) as u64).wrapping_mul(seed | 1) >> 17;
            Sm8::from_i32_saturating((v % 255) as i32 - 127)
        })
    }

    fn assert_cycles_close(model: u64, sim: u64, instrs: usize) {
        let diff = model.abs_diff(sim) as f64;
        let tol = 0.02 * sim as f64 + 48.0 * instrs as f64;
        assert!(diff <= tol, "model {model} vs sim {sim} (diff {diff}, tol {tol:.0})");
    }

    #[test]
    fn model_banks_match_cycle_banks_bit_exact() {
        let cfg = config();
        let qw = random_qw(8, 8, 42, 60);
        let input = random_input(8, 12, 12, 9);
        let (banks, scratch, instrs, out_layout, out_shape) = build_conv(&cfg, &qw, &input);

        let cyc = cycle::run_instructions(&cfg, banks.clone(), scratch.clone(), &instrs, 10_000_000).unwrap();
        let mut model_banks = banks;
        run_instructions(&cfg, &mut model_banks, &scratch, &instrs, &mut Counters::new());

        let mut a = TiledFeatureMap::zeros(out_shape);
        let mut b = TiledFeatureMap::zeros(out_shape);
        out_layout.load(&cyc.banks, &mut a, 0..out_layout.tile_rows);
        out_layout.load(&model_banks, &mut b, 0..out_layout.tile_rows);
        assert_eq!(a, b, "model and cycle backends must agree bit-for-bit");
    }

    #[test]
    fn model_counters_match_cycle_counters() {
        let cfg = config();
        let qw = random_qw(8, 4, 7, 50);
        let input = random_input(4, 8, 8, 3);
        let (banks, scratch, instrs, _, _) = build_conv(&cfg, &qw, &input);
        let cyc = cycle::run_instructions(&cfg, banks.clone(), scratch.clone(), &instrs, 10_000_000).unwrap();
        let mut model_banks = banks;
        let mut counters = Counters::new();
        run_instructions(&cfg, &mut model_banks, &scratch, &instrs, &mut counters);
        for key in ["macs", "weights_applied", "bubble_lanes", "ofm_tiles_written"] {
            assert_eq!(counters.get(key), cyc.counters.get(key), "counter {key}");
        }
    }

    #[test]
    fn model_cycles_match_cycle_backend_dense() {
        let cfg = config();
        let qw = random_qw(8, 8, 1, 100);
        let input = random_input(8, 16, 16, 5);
        let (banks, scratch, instrs, _, _) = build_conv(&cfg, &qw, &input);
        let n = instrs.len();
        let sim = cycle::run_instructions(&cfg, banks.clone(), scratch.clone(), &instrs, 10_000_000).unwrap().cycles;
        let mut b = banks;
        let model = run_instructions(&cfg, &mut b, &scratch, &instrs, &mut Counters::new()).cycles;
        assert_cycles_close(model, sim, n);
    }

    #[test]
    fn model_cycles_match_on_16_unopt() {
        let base = AccelConfig::from_arch(&AccelArch::single_submodule(), 55.0);
        let cfg = AccelConfig { bank_tiles: 4096, ..base };
        let qw = random_qw(5, 3, 11, 70);
        let input = random_input(3, 8, 8, 2);
        let (banks, scratch, instrs, _, _) = build_conv(&cfg, &qw, &input);
        let n = instrs.len();
        let sim = cycle::run_instructions(&cfg, banks.clone(), scratch.clone(), &instrs, 10_000_000).unwrap().cycles;
        let mut b = banks;
        let model = run_instructions(&cfg, &mut b, &scratch, &instrs, &mut Counters::new()).cycles;
        assert_cycles_close(model, sim, n);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn model_matches_cycle_backend(
            out_c in 1usize..10,
            in_c in 1usize..9,
            hw in 1usize..3,
            density in 10u64..100,
            seed in 0u64..1000,
        ) {
            let cfg = config();
            let h = hw * 8;
            let qw = random_qw(out_c, in_c, seed, density);
            let input = random_input(in_c, h, h, seed ^ 0x55);
            let (banks, scratch, instrs, out_layout, out_shape) = build_conv(&cfg, &qw, &input);
            let cyc = cycle::run_instructions(&cfg, banks.clone(), scratch.clone(), &instrs, 100_000_000).unwrap();
            let mut model_banks = banks;
            let model = run_instructions(&cfg, &mut model_banks, &scratch, &instrs, &mut Counters::new());

            // Functional equality.
            let mut a = TiledFeatureMap::zeros(out_shape);
            let mut b = TiledFeatureMap::zeros(out_shape);
            out_layout.load(&cyc.banks, &mut a, 0..out_layout.tile_rows);
            out_layout.load(&model_banks, &mut b, 0..out_layout.tile_rows);
            prop_assert_eq!(a, b);

            // Cycle equivalence within tolerance.
            let diff = model.cycles.abs_diff(cyc.cycles) as f64;
            let tol = 0.02 * cyc.cycles as f64 + 48.0 * instrs.len() as f64;
            prop_assert!(diff <= tol, "model {} vs sim {} (tol {:.0})", model.cycles, cyc.cycles, tol);
        }
    }

    #[test]
    fn pool_model_matches_cycle_backend() {
        let cfg = config();
        let input = random_input(8, 16, 16, 77);
        let tiled_in = TiledFeatureMap::from_tensor(&input);
        let in_layout = FmLayout::full(0, input.shape());
        let out_shape = Shape::new(8, 8, 8);
        let out_layout = FmLayout::full(in_layout.end(), out_shape);
        let mut banks = BankSet::new(&cfg);
        in_layout.store(&mut banks, &tiled_in, 0..4);
        let instr = Instruction::PoolPad(PoolPadInstr {
            channels: 8,
            in_base: 0,
            in_tiles_x: 4,
            in_tile_rows: 4,
            in_row_start: 0,
            out_base: out_layout.base as u32,
            out_tiles_x: 2,
            out_tile_rows: 2,
            out_row_start: 0,
            op: PoolPadOp::MaxPool { k: 2, stride: 2 },
        });
        let cyc = cycle::run_instructions(&cfg, banks.clone(), Vec::new(), &[instr], 1_000_000).unwrap();
        let mut model_banks = banks;
        let model = run_instructions(&cfg, &mut model_banks, &[], &[instr], &mut Counters::new());

        let mut a = TiledFeatureMap::zeros(out_shape);
        let mut b = TiledFeatureMap::zeros(out_shape);
        out_layout.load(&cyc.banks, &mut a, 0..2);
        out_layout.load(&model_banks, &mut b, 0..2);
        assert_eq!(a, b);
        assert_cycles_close(model.cycles, cyc.cycles, 1);
    }
}

#[cfg(test)]
mod pool_proptests {
    use super::*;
    use crate::cycle;
    use crate::isa::PoolPadOp;
    use proptest::prelude::*;
    use zskip_hls::AccelArch;
    use zskip_tensor::{Shape, Tensor, TiledFeatureMap};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        #[test]
        fn pool_backends_agree_for_arbitrary_geometry(
            k in 1u8..=3,
            stride in 1u8..=2,
            channels in 1usize..=6,
            seed in 0u64..100,
        ) {
            let cfg = AccelConfig::from_arch(
                &AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 2048 },
                100.0,
            );
            let hw = 12usize;
            prop_assume!(hw >= k as usize);
            let out_hw = (hw - k as usize) / stride as usize + 1;
            let input = Tensor::from_fn(channels, hw, hw, |c, y, x| {
                Sm8::from_i32_saturating((((c * 7 + y * 13 + x) as u64 ^ seed) % 255) as i32 - 127)
            });
            let tiled = TiledFeatureMap::from_tensor(&input);
            let in_layout = FmLayout::full(0, input.shape());
            let out_shape = Shape::new(channels, out_hw, out_hw);
            let out_fm = TiledFeatureMap::<Sm8>::zeros(out_shape);
            let out_layout = FmLayout {
                base: in_layout.end(),
                channels,
                tiles_x: out_fm.tiles_x(),
                tile_rows: out_fm.tiles_y(),
            };
            let mut banks = BankSet::new(&cfg);
            in_layout.store(&mut banks, &tiled, 0..tiled.tiles_y());
            let instr = Instruction::PoolPad(PoolPadInstr {
                channels: channels as u16,
                in_base: 0,
                in_tiles_x: in_layout.tiles_x as u16,
                in_tile_rows: in_layout.tile_rows as u16,
                in_row_start: 0,
                out_base: out_layout.base as u32,
                out_tiles_x: out_layout.tiles_x as u16,
                out_tile_rows: out_layout.tile_rows as u16,
                out_row_start: 0,
                op: PoolPadOp::MaxPool { k, stride },
            });
            let cyc = cycle::run_instructions(&cfg, banks.clone(), Vec::new(), &[instr], 10_000_000).unwrap();
            let mut model_banks = banks;
            let model = run_instructions(&cfg, &mut model_banks, &[], &[instr], &mut Counters::new());

            let mut a = TiledFeatureMap::zeros(out_shape);
            let mut b = TiledFeatureMap::zeros(out_shape);
            out_layout.load(&cyc.banks, &mut a, 0..out_layout.tile_rows);
            out_layout.load(&model_banks, &mut b, 0..out_layout.tile_rows);
            prop_assert_eq!(a.to_tensor().cropped(out_hw, out_hw),
                            b.to_tensor().cropped(out_hw, out_hw));
            // And both match the software reference.
            let want = zskip_nn::pool::maxpool_quant(&input, k as usize, stride as usize);
            prop_assert_eq!(a.to_tensor().cropped(out_hw, out_hw), want);
            // Cycle tolerance.
            let diff = model.cycles.abs_diff(cyc.cycles) as f64;
            prop_assert!(diff <= 0.03 * cyc.cycles as f64 + 64.0, "model {} sim {}", model.cycles, cyc.cycles);
        }
    }
}
