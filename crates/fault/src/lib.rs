//! Deterministic fault injection for the simulated SoC.
//!
//! A producer/consumer network of streaming kernels lives or dies by how
//! it handles back-pressure and transfer errors: a single stalled FIFO,
//! truncated DMA burst, or dropped Avalon response can wedge the whole
//! System-I/System-II pipeline. This crate provides the *plan* side of a
//! fault-injection subsystem: a seedable, fully deterministic schedule of
//! faults at named sites, shared by reference with every instrumented
//! component (`zskip-sim`'s engine, `zskip-soc`'s DMA/bus/CSR models, and
//! `zskip-core`'s driver).
//!
//! # Sites
//!
//! A site is a string naming one injection point:
//!
//! | site                 | trigger unit  | kinds |
//! |----------------------|---------------|-------|
//! | `fifo:<name>:push`   | engine cycle  | [`FaultKind::FifoStall`] |
//! | `fifo:<name>:pop`    | engine cycle  | [`FaultKind::FifoStall`] |
//! | `dma:xfer`           | nth descriptor| [`FaultKind::DmaTruncate`], [`FaultKind::DmaCorrupt`] |
//! | `avalon:read`        | nth bus read  | [`FaultKind::BusTimeout`] |
//! | `avalon:write`       | nth bus write | [`FaultKind::BusTimeout`] |
//! | `csr:status`         | nth status read | [`FaultKind::CsrBitFlip`] |
//! | `accel:quiesce`      | first check   | [`FaultKind::Hang`] |
//!
//! Each injection fires exactly once, at the first event whose ordinal
//! (cycle number or per-site event count) reaches its trigger point, and
//! is recorded in the plan's fired log so campaigns can report which
//! faults actually landed.

use std::fmt;
use std::sync::{Arc, Mutex};

/// What kind of fault to inject at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Refuse pushes (or pops, by site suffix) on a FIFO for `cycles`
    /// cycles. `u64::MAX` wedges the FIFO permanently — the
    /// non-quiescence fault that must surface as a deadlock report.
    FifoStall {
        /// Stall duration in cycles.
        cycles: u64,
    },
    /// Stop a DMA transfer after `tiles` tile words (descriptor
    /// completion-count mismatch).
    DmaTruncate {
        /// Tile words actually moved before the fault.
        tiles: usize,
    },
    /// XOR one transferred byte with `xor` (detected by the modeled bus
    /// parity check, which the real System I bus carries per beat).
    DmaCorrupt {
        /// Bit pattern XORed into the first byte of the transfer.
        xor: u8,
    },
    /// Drop an Avalon response: the master sees a bus timeout.
    BusTimeout,
    /// Flip bit `bit` of a CSR read response (single-event upset).
    CsrBitFlip {
        /// Bit index to flip (0-31).
        bit: u8,
    },
    /// The device never reaches quiescence (DONE is never raised).
    Hang,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::FifoStall { cycles: u64::MAX } => write!(f, "fifo-stall(forever)"),
            FaultKind::FifoStall { cycles } => write!(f, "fifo-stall({cycles})"),
            FaultKind::DmaTruncate { tiles } => write!(f, "dma-truncate({tiles})"),
            FaultKind::DmaCorrupt { xor } => write!(f, "dma-corrupt({xor:#04x})"),
            FaultKind::BusTimeout => write!(f, "bus-timeout"),
            FaultKind::CsrBitFlip { bit } => write!(f, "csr-bit-flip({bit})"),
            FaultKind::Hang => write!(f, "hang"),
        }
    }
}

/// One scheduled fault: `kind` fires at site `site` once the site's
/// event ordinal reaches `at`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// Site name (see the crate docs for the naming scheme).
    pub site: String,
    /// Trigger ordinal: engine cycle for `fifo:` sites, per-site event
    /// count (0-based) for everything else.
    pub at: u64,
    /// The fault to inject.
    pub kind: FaultKind,
}

/// A fault that fired, as recorded in the plan's log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredFault {
    /// Site the fault fired at.
    pub site: String,
    /// Ordinal at which it actually fired.
    pub at: u64,
    /// The injected kind.
    pub kind: FaultKind,
}

/// Failure surfaced by the fault layer itself rather than a
/// domain-specific model error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// The device never quiesced within the wait budget.
    Unresponsive {
        /// Polls (or cycles) waited before giving up.
        waited: u64,
    },
    /// An injected fault was consumed directly by a component that has no
    /// richer error to map it onto.
    Injected {
        /// Site the fault fired at.
        site: String,
        /// The injected kind.
        kind: FaultKind,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Unresponsive { waited } => {
                write!(f, "device did not quiesce within {waited} polls")
            }
            FaultError::Injected { site, kind } => write!(f, "injected fault at {site}: {kind}"),
        }
    }
}

impl std::error::Error for FaultError {}

/// A deterministic schedule of faults, shared with instrumented
/// components via [`SharedFaultPlan`].
#[derive(Debug, Default)]
pub struct FaultPlan {
    pending: Vec<Injection>,
    fired: Vec<FiredFault>,
}

/// The handle instrumented components hold: thread-safe so the batch
/// engine's worker pool can share one plan.
pub type SharedFaultPlan = Arc<Mutex<FaultPlan>>;

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds an injection (builder style).
    pub fn inject(mut self, site: impl Into<String>, at: u64, kind: FaultKind) -> FaultPlan {
        self.pending.push(Injection { site: site.into(), at, kind });
        self
    }

    /// Builds a single-fault plan chosen deterministically from `seed`:
    /// picks one `(site, kind)` from `menu` and a trigger ordinal in
    /// `[0, at_max)`. The same seed always yields the same plan.
    pub fn seeded(seed: u64, menu: &[(&str, FaultKind)], at_max: u64) -> FaultPlan {
        assert!(!menu.is_empty(), "fault menu must not be empty");
        let mut rng = SplitMix64::new(seed);
        let pick = rng.next_below(menu.len() as u64) as usize;
        let at = rng.next_below(at_max);
        let (site, kind) = menu[pick];
        FaultPlan::new().inject(site, at, kind)
    }

    /// Wraps the plan in the shared handle components consume.
    pub fn shared(self) -> SharedFaultPlan {
        Arc::new(Mutex::new(self))
    }

    /// Fires the first pending injection for `site` whose trigger ordinal
    /// has been reached, removing it from the pending set and logging it.
    pub fn fire(&mut self, site: &str, ordinal: u64) -> Option<FaultKind> {
        let idx = self.pending.iter().position(|i| i.site == site && ordinal >= i.at)?;
        let inj = self.pending.remove(idx);
        self.fired.push(FiredFault { site: inj.site, at: ordinal, kind: inj.kind });
        Some(inj.kind)
    }

    /// Removes and returns every pending injection whose site starts with
    /// `prefix` (the engine pulls all `fifo:` injections up front so it
    /// can resolve names to indices once).
    pub fn drain_prefix(&mut self, prefix: &str) -> Vec<Injection> {
        let (taken, kept): (Vec<_>, Vec<_>) =
            std::mem::take(&mut self.pending).into_iter().partition(|i| i.site.starts_with(prefix));
        self.pending = kept;
        taken
    }

    /// Logs a fault applied by a component that drained its injections
    /// early (see [`FaultPlan::drain_prefix`]).
    pub fn log_fired(&mut self, site: impl Into<String>, at: u64, kind: FaultKind) {
        self.fired.push(FiredFault { site: site.into(), at, kind });
    }

    /// Injections that have not fired yet.
    pub fn pending(&self) -> &[Injection] {
        &self.pending
    }

    /// Faults that fired, in firing order.
    pub fn fired(&self) -> &[FiredFault] {
        &self.fired
    }
}

/// SplitMix64: the tiny deterministic generator used for seeded plans
/// (and reusable by campaigns for site/parameter choice).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The workspace-wide seeded generator: a stateful wrapper around
/// [`splitmix64`], so "seeded-deterministic" means one idiom everywhere —
/// fault plans, synthetic test data, and the `tune` searchers all draw
/// from this. Re-exported as `zskip_core::rng::SplitMix64`.
///
/// SplitMix64 passes BigCrush, has a full 2^64 period, and every seed is
/// a good seed (no zero-state trap), which is all a reproducibility RNG
/// needs. Not cryptographic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// A uniform draw in `[0, bound)`. `bound` 0 returns 0 (the empty
    /// range has one representable answer, which keeps call sites free of
    /// special cases). Uses plain modulo: the bias for any bound that
    /// fits in practice (< 2^32) is below 2^-32, irrelevant for seeding.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// A uniform draw in `[0.0, 1.0)` with 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sign: `+1` or `-1` (the SPSA perturbation direction).
    pub fn next_sign(&mut self) -> i64 {
        if self.next_u64() & 1 == 0 {
            1
        } else {
            -1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_respects_site_and_ordinal() {
        let mut p = FaultPlan::new().inject("dma:xfer", 2, FaultKind::BusTimeout);
        assert_eq!(p.fire("dma:xfer", 0), None);
        assert_eq!(p.fire("avalon:read", 5), None, "wrong site never fires");
        assert_eq!(p.fire("dma:xfer", 2), Some(FaultKind::BusTimeout));
        assert_eq!(p.fire("dma:xfer", 3), None, "one-shot");
        assert_eq!(p.fired().len(), 1);
        assert_eq!(p.fired()[0].at, 2);
    }

    #[test]
    fn late_ordinal_still_fires() {
        // A fault scheduled for event 1 on a site first checked at event 7
        // fires at 7 (first opportunity), not never.
        let mut p = FaultPlan::new().inject("csr:status", 1, FaultKind::CsrBitFlip { bit: 1 });
        assert_eq!(p.fire("csr:status", 7), Some(FaultKind::CsrBitFlip { bit: 1 }));
    }

    #[test]
    fn drain_prefix_partitions_pending() {
        let mut p = FaultPlan::new()
            .inject("fifo:work0:push", 10, FaultKind::FifoStall { cycles: 5 })
            .inject("dma:xfer", 0, FaultKind::DmaTruncate { tiles: 1 });
        let fifo = p.drain_prefix("fifo:");
        assert_eq!(fifo.len(), 1);
        assert_eq!(fifo[0].site, "fifo:work0:push");
        assert_eq!(p.pending().len(), 1);
        assert_eq!(p.pending()[0].site, "dma:xfer");
    }

    #[test]
    fn splitmix64_struct_matches_free_function() {
        let mut rng = SplitMix64::new(42);
        let mut state = 42u64;
        for _ in 0..64 {
            assert_eq!(rng.next_u64(), splitmix64(&mut state));
        }
    }

    #[test]
    fn splitmix64_draws_are_in_range() {
        let mut rng = SplitMix64::new(7);
        assert_eq!(rng.next_below(0), 0, "empty range collapses to 0");
        for bound in [1u64, 2, 3, 17, 1000] {
            for _ in 0..32 {
                assert!(rng.next_below(bound) < bound);
            }
        }
        for _ in 0..256 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            let s = rng.next_sign();
            assert!(s == 1 || s == -1);
        }
        // Both signs actually occur.
        let mut rng = SplitMix64::new(1);
        let signs: Vec<i64> = (0..16).map(|_| rng.next_sign()).collect();
        assert!(signs.contains(&1) && signs.contains(&-1));
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let menu = [
            ("fifo:work0:push", FaultKind::FifoStall { cycles: 100 }),
            ("dma:xfer", FaultKind::DmaTruncate { tiles: 0 }),
            ("avalon:read", FaultKind::BusTimeout),
        ];
        for seed in 0..32u64 {
            let a = FaultPlan::seeded(seed, &menu, 1000);
            let b = FaultPlan::seeded(seed, &menu, 1000);
            assert_eq!(a.pending(), b.pending());
            assert!(a.pending()[0].at < 1000);
        }
        // Different seeds eventually pick different entries.
        let sites: std::collections::BTreeSet<String> =
            (0..32u64).map(|s| FaultPlan::seeded(s, &menu, 1000).pending()[0].site.clone()).collect();
        assert!(sites.len() > 1);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(FaultKind::FifoStall { cycles: 7 }.to_string(), "fifo-stall(7)");
        assert_eq!(FaultKind::FifoStall { cycles: u64::MAX }.to_string(), "fifo-stall(forever)");
        assert_eq!(FaultKind::DmaCorrupt { xor: 0x80 }.to_string(), "dma-corrupt(0x80)");
        assert_eq!(
            FaultError::Injected { site: "x".into(), kind: FaultKind::Hang }.to_string(),
            "injected fault at x: hang"
        );
    }
}
