//! Layer specifications and shape inference.
//!
//! A [`NetworkSpec`] is a topologically-ordered layer list. Every layer
//! implicitly consumes the previous layer's output (the VGG-style linear
//! chain is the degenerate case), and two variants carry an *explicit*
//! second reference into earlier layers — [`LayerSpec::Ref`] re-emits an
//! earlier activation (opening a branch) and [`LayerSpec::Add`] joins the
//! running branch back into it (a residual skip connection). References
//! always point strictly backwards, so any spec that passes [`NetworkSpec::shapes`]
//! is a valid DAG in execution order by construction.

use std::fmt;
use zskip_tensor::{shape::conv_out_dim, Shape};

/// A reference to an earlier activation in the network: either the
/// network input or the output of a preceding layer (by absolute index).
///
/// Used by [`LayerSpec::Ref`] and [`LayerSpec::Add`]; a reference must
/// point *strictly before* the layer that carries it, which
/// [`NetworkSpec::shapes`] validates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerRef {
    /// The network input activation.
    Input,
    /// The output of the layer at this absolute index.
    Layer(usize),
}

impl fmt::Display for LayerRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerRef::Input => write!(f, "input"),
            LayerRef::Layer(i) => write!(f, "layer {i}"),
        }
    }
}

/// Specification of one network layer.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerSpec {
    /// 2-D convolution with square kernels, optional fused ReLU.
    Conv {
        /// Layer name, e.g. `"conv1_1"`.
        name: String,
        /// Input channels.
        in_c: usize,
        /// Output channels (number of filters).
        out_c: usize,
        /// Kernel edge length (3 for all of VGG-16).
        k: usize,
        /// Stride.
        stride: usize,
        /// Zero padding on each spatial side.
        pad: usize,
        /// Whether ReLU is fused at the output.
        relu: bool,
    },
    /// Max pooling.
    MaxPool {
        /// Layer name, e.g. `"pool1"`.
        name: String,
        /// Pooling window edge length.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Fully connected layer, optional fused ReLU. Executed on the host
    /// processor in the paper's system ("We do not focus on fully connected
    /// layers").
    Fc {
        /// Layer name, e.g. `"fc6"`.
        name: String,
        /// Input features (flattened).
        in_features: usize,
        /// Output features.
        out_features: usize,
        /// Whether ReLU is fused at the output.
        relu: bool,
    },
    /// Softmax over the flattened activations.
    Softmax,
    /// Identity layer re-emitting an earlier activation, opening a skip
    /// branch: the layers after it run on the referenced activation while
    /// the main path's result stays alive for a later [`LayerSpec::Add`].
    Ref {
        /// Layer name, e.g. `"block2_skip"`.
        name: String,
        /// The activation this layer re-emits.
        from: LayerRef,
    },
    /// Elementwise addition of the previous layer's output with an
    /// earlier activation (the residual join), optional fused ReLU.
    /// Executed on the host processor, like FC layers.
    Add {
        /// Layer name, e.g. `"block2_add"`.
        name: String,
        /// The second operand (the first is the previous layer's output).
        from: LayerRef,
        /// Whether ReLU is fused at the output.
        relu: bool,
    },
    /// Global average pooling: each channel collapses to its spatial
    /// mean, yielding a `c x 1 x 1` output. Executed on the host.
    GlobalAvgPool {
        /// Layer name, e.g. `"gap"`.
        name: String,
    },
    /// Batch normalization over the previous convolution's output,
    /// optional fused ReLU. Never executed at inference time: quantization
    /// folds it into the preceding conv's weights (the standard
    /// conv→BN→ReLU deployment transform), so the conv must carry
    /// `relu: false` and feed only this layer.
    BatchNorm {
        /// Layer name, e.g. `"conv1_bn"`.
        name: String,
        /// Whether ReLU is fused at the output.
        relu: bool,
    },
}

impl LayerSpec {
    /// The layer's name (`"softmax"` for the softmax layer).
    pub fn name(&self) -> &str {
        match self {
            LayerSpec::Conv { name, .. }
            | LayerSpec::MaxPool { name, .. }
            | LayerSpec::Fc { name, .. }
            | LayerSpec::Ref { name, .. }
            | LayerSpec::Add { name, .. }
            | LayerSpec::GlobalAvgPool { name }
            | LayerSpec::BatchNorm { name, .. } => name,
            LayerSpec::Softmax => "softmax",
        }
    }

    /// The explicit second input of a `Ref`/`Add` layer, if any. Every
    /// layer also implicitly consumes the previous layer's output —
    /// except `Ref`, whose *only* input is the referenced activation.
    pub fn explicit_input(&self) -> Option<LayerRef> {
        match self {
            LayerSpec::Ref { from, .. } | LayerSpec::Add { from, .. } => Some(*from),
            _ => None,
        }
    }

    /// Output shape given an input shape.
    ///
    /// # Errors
    /// Returns [`ShapeError`] when the input shape is incompatible
    /// (channel mismatch, window larger than input, etc.).
    pub fn output_shape(&self, input: Shape) -> Result<Shape, ShapeError> {
        match self {
            LayerSpec::Conv { name, in_c, out_c, k, stride, pad, .. } => {
                if input.c != *in_c {
                    return Err(ShapeError::new(name, format!("expected {in_c} input channels, got {}", input.c)));
                }
                let h = conv_out_dim(input.h, *k, *stride, *pad)
                    .ok_or_else(|| ShapeError::new(name, format!("kernel {k} does not fit height {}", input.h)))?;
                let w = conv_out_dim(input.w, *k, *stride, *pad)
                    .ok_or_else(|| ShapeError::new(name, format!("kernel {k} does not fit width {}", input.w)))?;
                Ok(Shape::new(*out_c, h, w))
            }
            LayerSpec::MaxPool { name, k, stride } => {
                let h = conv_out_dim(input.h, *k, *stride, 0)
                    .ok_or_else(|| ShapeError::new(name, format!("window {k} does not fit height {}", input.h)))?;
                let w = conv_out_dim(input.w, *k, *stride, 0)
                    .ok_or_else(|| ShapeError::new(name, format!("window {k} does not fit width {}", input.w)))?;
                Ok(Shape::new(input.c, h, w))
            }
            LayerSpec::Fc { name, in_features, out_features, .. } => {
                if input.len() != *in_features {
                    return Err(ShapeError::new(
                        name,
                        format!("expected {in_features} input features, got {}", input.len()),
                    ));
                }
                Ok(Shape::new(*out_features, 1, 1))
            }
            LayerSpec::Softmax => Ok(Shape::new(input.len(), 1, 1)),
            // Ref re-emits the referenced activation (the caller resolves
            // the reference and passes its shape as `input`); Add and
            // BatchNorm are elementwise. Operand-shape equality for Add
            // and BN placement are validated by [`NetworkSpec::shapes`].
            LayerSpec::Ref { .. } | LayerSpec::Add { .. } | LayerSpec::BatchNorm { .. } => Ok(input),
            LayerSpec::GlobalAvgPool { name } => {
                if input.h == 0 || input.w == 0 {
                    return Err(ShapeError::new(name, "empty spatial extent".to_string()));
                }
                Ok(Shape::new(input.c, 1, 1))
            }
        }
    }

    /// Multiply-accumulate operations this layer performs for an input
    /// shape. Pool/softmax layers report zero (the paper counts conv and FC
    /// work; GOPS figures count `2 x MACs` as operations).
    pub fn macs(&self, input: Shape) -> u64 {
        match self {
            LayerSpec::Conv { k, .. } => {
                let out = self.output_shape(input).expect("shape checked by caller");
                (out.len() as u64) * (input.c as u64) * (*k as u64) * (*k as u64)
            }
            LayerSpec::Fc { in_features, out_features, .. } => (*in_features as u64) * (*out_features as u64),
            // Elementwise/identity layers carry no multiply work: Add is
            // pure additions, GAP one division per channel, BN folds away
            // before inference.
            LayerSpec::MaxPool { .. }
            | LayerSpec::Softmax
            | LayerSpec::Ref { .. }
            | LayerSpec::Add { .. }
            | LayerSpec::GlobalAvgPool { .. }
            | LayerSpec::BatchNorm { .. } => 0,
        }
    }

    /// Whether this layer runs on the accelerator (conv/pool; padding is
    /// folded into conv here) rather than the host processor. Add and
    /// global average pooling run on the host like FC layers (the paper
    /// keeps non-conv work on the embedded ARM).
    pub fn on_accelerator(&self) -> bool {
        matches!(self, LayerSpec::Conv { .. } | LayerSpec::MaxPool { .. })
    }
}

/// An ordered list of layers with a fixed input shape.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// Network name, e.g. `"vgg16"`.
    pub name: String,
    /// Shape of the network input.
    pub input: Shape,
    /// The layers, in execution order.
    pub layers: Vec<LayerSpec>,
}

impl NetworkSpec {
    /// Validates the layer DAG and returns every intermediate shape
    /// (`shapes[0]` is the input, `shapes[i+1]` the output of layer `i`).
    ///
    /// Beyond per-layer shape inference this checks the graph structure:
    /// `Ref`/`Add` references must point strictly backwards, `Add`
    /// operands must have equal shapes, and a `BatchNorm` must directly
    /// follow a ReLU-free convolution that feeds nothing else (so the
    /// fold into the conv weights is well-defined).
    ///
    /// # Errors
    /// Returns the first [`ShapeError`] encountered.
    pub fn shapes(&self) -> Result<Vec<Shape>, ShapeError> {
        let mut shapes = vec![self.input];
        // Index of the first FC/softmax layer: past it activations live as
        // flat vectors, so feature-map layers and references into the head
        // are rejected (the head is a strictly linear tail).
        let mut flat_head: Option<usize> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            let prev = *shapes.last().expect("non-empty");
            match layer {
                LayerSpec::Fc { .. } | LayerSpec::Softmax => {
                    flat_head.get_or_insert(i);
                }
                _ if flat_head.is_some() => {
                    return Err(ShapeError::new(
                        layer.name(),
                        "feature-map layers cannot follow the fully-connected head".to_string(),
                    ));
                }
                _ => {}
            }
            // Resolve the explicit reference, enforcing backward-only.
            let referenced = match layer.explicit_input() {
                Some(LayerRef::Input) => Some(self.input),
                Some(LayerRef::Layer(j)) => {
                    if j >= i {
                        return Err(ShapeError::new(
                            layer.name(),
                            format!("reference to layer {j} does not point strictly backwards"),
                        ));
                    }
                    if matches!(self.layers[j], LayerSpec::Fc { .. } | LayerSpec::Softmax) {
                        return Err(ShapeError::new(
                            layer.name(),
                            format!("reference into the fully-connected head ('{}')", self.layers[j].name()),
                        ));
                    }
                    Some(shapes[j + 1])
                }
                None => None,
            };
            let next = match layer {
                LayerSpec::Ref { .. } => referenced.expect("Ref carries a reference"),
                LayerSpec::Add { name, .. } => {
                    let r = referenced.expect("Add carries a reference");
                    if r != prev {
                        return Err(ShapeError::new(
                            name,
                            format!("operand shapes differ: {prev} (previous layer) vs {r} (referenced)"),
                        ));
                    }
                    if i == 0 {
                        return Err(ShapeError::new(name, "add has no previous layer".to_string()));
                    }
                    prev
                }
                LayerSpec::BatchNorm { name, .. } => {
                    let prev_foldable = matches!(
                        i.checked_sub(1).map(|p| &self.layers[p]),
                        Some(LayerSpec::Conv { relu: false, .. })
                    );
                    if !prev_foldable {
                        return Err(ShapeError::new(
                            name,
                            "batch-norm must directly follow a ReLU-free convolution".to_string(),
                        ));
                    }
                    // The conv's output must not be referenced elsewhere:
                    // folding rewrites it, so a second consumer would see
                    // post-BN values where it expected pre-BN ones.
                    let conv_idx = i - 1;
                    if let Some(user) = self.layers.iter().enumerate().find(|(j, l)| {
                        *j != i && l.explicit_input() == Some(LayerRef::Layer(conv_idx))
                    }) {
                        return Err(ShapeError::new(
                            name,
                            format!(
                                "folded conv '{}' is also referenced by '{}'",
                                self.layers[conv_idx].name(),
                                user.1.name()
                            ),
                        ));
                    }
                    layer.output_shape(prev)?
                }
                _ => layer.output_shape(prev)?,
            };
            shapes.push(next);
        }
        Ok(shapes)
    }

    /// Whether any layer carries an explicit reference (i.e. the spec is
    /// a genuine DAG rather than a linear chain).
    pub fn has_branches(&self) -> bool {
        self.layers.iter().any(|l| l.explicit_input().is_some())
    }

    /// Whether any layer is a [`LayerSpec::BatchNorm`] (i.e. quantization
    /// must fold before lowering).
    pub fn has_batchnorm(&self) -> bool {
        self.layers.iter().any(|l| matches!(l, LayerSpec::BatchNorm { .. }))
    }

    /// Total MACs for one inference.
    pub fn total_macs(&self) -> u64 {
        let shapes = self.shapes().expect("network must be shape-valid");
        self.layers.iter().zip(&shapes).map(|(l, &s)| l.macs(s)).sum()
    }

    /// The convolution layers with their input shapes, in order.
    pub fn conv_layers(&self) -> Vec<(usize, &LayerSpec, Shape)> {
        let shapes = self.shapes().expect("network must be shape-valid");
        self.layers
            .iter()
            .enumerate()
            .zip(&shapes)
            .filter(|((_, l), _)| matches!(l, LayerSpec::Conv { .. }))
            .map(|((i, l), &s)| (i, l, s))
            .collect()
    }
}

/// Error: a layer cannot accept its input shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Layer that rejected the shape.
    pub layer: String,
    /// Description of the mismatch.
    pub reason: String,
}

impl ShapeError {
    fn new(layer: &str, reason: String) -> Self {
        ShapeError { layer: layer.to_string(), reason }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "layer {}: {}", self.layer, self.reason)
    }
}

impl std::error::Error for ShapeError {}

/// Builds a conv layer spec with VGG-style 3x3/stride-1/pad-1 geometry.
pub fn conv3x3(name: &str, in_c: usize, out_c: usize) -> LayerSpec {
    LayerSpec::Conv { name: name.to_string(), in_c, out_c, k: 3, stride: 1, pad: 1, relu: true }
}

/// Builds a pointwise (1x1/stride-1/pad-0) conv layer spec, ReLU-free so
/// it can feed a [`LayerSpec::BatchNorm`] — the ResNet projection-shortcut
/// geometry. 1x1 convs skip im2col entirely in the quantized GEMM path.
pub fn conv1x1(name: &str, in_c: usize, out_c: usize) -> LayerSpec {
    LayerSpec::Conv { name: name.to_string(), in_c, out_c, k: 1, stride: 1, pad: 0, relu: false }
}

/// Builds a 2x2/stride-2 max-pool layer spec.
pub fn maxpool2x2(name: &str) -> LayerSpec {
    LayerSpec::MaxPool { name: name.to_string(), k: 2, stride: 2 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_inference() {
        let l = conv3x3("c", 3, 64);
        assert_eq!(l.output_shape(Shape::new(3, 224, 224)).unwrap(), Shape::new(64, 224, 224));
    }

    #[test]
    fn conv_rejects_channel_mismatch() {
        let l = conv3x3("c", 3, 64);
        let err = l.output_shape(Shape::new(4, 8, 8)).unwrap_err();
        assert_eq!(err.layer, "c");
        assert!(err.to_string().contains("channels"));
    }

    #[test]
    fn pool_halves_dims() {
        let l = maxpool2x2("p");
        assert_eq!(l.output_shape(Shape::new(64, 224, 224)).unwrap(), Shape::new(64, 112, 112));
    }

    #[test]
    fn fc_flattens() {
        let l = LayerSpec::Fc { name: "fc".into(), in_features: 512 * 7 * 7, out_features: 4096, relu: true };
        assert_eq!(l.output_shape(Shape::new(512, 7, 7)).unwrap(), Shape::new(4096, 1, 1));
        assert!(l.output_shape(Shape::new(512, 7, 8)).is_err());
    }

    #[test]
    fn macs_of_first_vgg_layer() {
        let l = conv3x3("conv1_1", 3, 64);
        // 64 * 224 * 224 * 3 * 9 MACs.
        assert_eq!(l.macs(Shape::new(3, 224, 224)), 64 * 224 * 224 * 3 * 9);
    }

    #[test]
    fn network_shapes_chain() {
        let net = NetworkSpec {
            name: "tiny".into(),
            input: Shape::new(3, 8, 8),
            layers: vec![
                conv3x3("c1", 3, 8),
                maxpool2x2("p1"),
                LayerSpec::Fc { name: "fc".into(), in_features: 8 * 4 * 4, out_features: 10, relu: false },
                LayerSpec::Softmax,
            ],
        };
        let shapes = net.shapes().unwrap();
        assert_eq!(shapes[1], Shape::new(8, 8, 8));
        assert_eq!(shapes[2], Shape::new(8, 4, 4));
        assert_eq!(shapes[3], Shape::new(10, 1, 1));
        assert_eq!(shapes[4], Shape::new(10, 1, 1));
        assert_eq!(net.conv_layers().len(), 1);
        assert!(net.total_macs() > 0);
    }

    #[test]
    fn on_accelerator_partitioning() {
        assert!(conv3x3("c", 1, 1).on_accelerator());
        assert!(maxpool2x2("p").on_accelerator());
        assert!(!LayerSpec::Softmax.on_accelerator());
        assert!(!LayerSpec::Fc { name: "f".into(), in_features: 1, out_features: 1, relu: false }.on_accelerator());
        assert!(!LayerSpec::Add { name: "a".into(), from: LayerRef::Input, relu: false }.on_accelerator());
        assert!(!LayerSpec::Ref { name: "r".into(), from: LayerRef::Input }.on_accelerator());
        assert!(!LayerSpec::GlobalAvgPool { name: "g".into() }.on_accelerator());
        assert!(!LayerSpec::BatchNorm { name: "b".into(), relu: true }.on_accelerator());
    }

    /// A minimal residual block: conv → conv, skip from the block input.
    fn residual_spec() -> NetworkSpec {
        NetworkSpec {
            name: "res".into(),
            input: Shape::new(4, 8, 8),
            layers: vec![
                conv3x3("c1", 4, 4),
                conv3x3("c2", 4, 4),
                LayerSpec::Add { name: "join".into(), from: LayerRef::Input, relu: true },
                LayerSpec::GlobalAvgPool { name: "gap".into() },
            ],
        }
    }

    #[test]
    fn residual_shapes_chain() {
        let spec = residual_spec();
        let shapes = spec.shapes().unwrap();
        assert_eq!(shapes[3], Shape::new(4, 8, 8), "add keeps the operand shape");
        assert_eq!(shapes[4], Shape::new(4, 1, 1), "gap collapses spatially");
        assert!(spec.has_branches());
        assert!(!spec.has_batchnorm());
    }

    #[test]
    fn ref_reemits_the_referenced_shape() {
        let spec = NetworkSpec {
            name: "branch".into(),
            input: Shape::new(2, 6, 6),
            layers: vec![
                maxpool2x2("p"),
                LayerSpec::Ref { name: "skip".into(), from: LayerRef::Input },
            ],
        };
        let shapes = spec.shapes().unwrap();
        assert_eq!(shapes[1], Shape::new(2, 3, 3));
        assert_eq!(shapes[2], Shape::new(2, 6, 6), "ref re-emits the input shape");
    }

    #[test]
    fn forward_references_are_rejected() {
        let spec = NetworkSpec {
            name: "bad".into(),
            input: Shape::new(2, 6, 6),
            layers: vec![
                LayerSpec::Ref { name: "skip".into(), from: LayerRef::Layer(1) },
                maxpool2x2("p"),
            ],
        };
        let err = spec.shapes().unwrap_err();
        assert!(err.reason.contains("strictly backwards"), "{err}");
    }

    #[test]
    fn add_rejects_mismatched_operands() {
        let spec = NetworkSpec {
            name: "bad".into(),
            input: Shape::new(2, 6, 6),
            layers: vec![
                maxpool2x2("p"),
                LayerSpec::Add { name: "join".into(), from: LayerRef::Input, relu: false },
            ],
        };
        let err = spec.shapes().unwrap_err();
        assert!(err.reason.contains("operand shapes differ"), "{err}");
    }

    #[test]
    fn batchnorm_requires_a_relu_free_conv() {
        let ok = NetworkSpec {
            name: "bn".into(),
            input: Shape::new(2, 6, 6),
            layers: vec![
                LayerSpec::Conv { name: "c".into(), in_c: 2, out_c: 3, k: 3, stride: 1, pad: 1, relu: false },
                LayerSpec::BatchNorm { name: "c_bn".into(), relu: true },
            ],
        };
        assert!(ok.shapes().is_ok());
        assert!(ok.has_batchnorm());
        let relu_conv = NetworkSpec {
            layers: vec![conv3x3("c", 2, 3), LayerSpec::BatchNorm { name: "c_bn".into(), relu: true }],
            ..ok.clone()
        };
        assert!(relu_conv.shapes().unwrap_err().reason.contains("ReLU-free"));
        let after_pool = NetworkSpec {
            layers: vec![maxpool2x2("p"), LayerSpec::BatchNorm { name: "bn".into(), relu: false }],
            ..ok.clone()
        };
        assert!(after_pool.shapes().is_err());
    }

    #[test]
    fn batchnorm_conv_must_not_feed_other_layers() {
        let spec = NetworkSpec {
            name: "bn".into(),
            input: Shape::new(2, 6, 6),
            layers: vec![
                LayerSpec::Conv { name: "c".into(), in_c: 2, out_c: 2, k: 3, stride: 1, pad: 1, relu: false },
                LayerSpec::BatchNorm { name: "c_bn".into(), relu: true },
                LayerSpec::Add { name: "join".into(), from: LayerRef::Layer(0), relu: false },
            ],
        };
        let err = spec.shapes().unwrap_err();
        assert!(err.reason.contains("also referenced"), "{err}");
    }
}
