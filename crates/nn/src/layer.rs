//! Layer specifications and shape inference.

use std::fmt;
use zskip_tensor::{shape::conv_out_dim, Shape};

/// Specification of one network layer.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerSpec {
    /// 2-D convolution with square kernels, optional fused ReLU.
    Conv {
        /// Layer name, e.g. `"conv1_1"`.
        name: String,
        /// Input channels.
        in_c: usize,
        /// Output channels (number of filters).
        out_c: usize,
        /// Kernel edge length (3 for all of VGG-16).
        k: usize,
        /// Stride.
        stride: usize,
        /// Zero padding on each spatial side.
        pad: usize,
        /// Whether ReLU is fused at the output.
        relu: bool,
    },
    /// Max pooling.
    MaxPool {
        /// Layer name, e.g. `"pool1"`.
        name: String,
        /// Pooling window edge length.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Fully connected layer, optional fused ReLU. Executed on the host
    /// processor in the paper's system ("We do not focus on fully connected
    /// layers").
    Fc {
        /// Layer name, e.g. `"fc6"`.
        name: String,
        /// Input features (flattened).
        in_features: usize,
        /// Output features.
        out_features: usize,
        /// Whether ReLU is fused at the output.
        relu: bool,
    },
    /// Softmax over the flattened activations.
    Softmax,
}

impl LayerSpec {
    /// The layer's name (`"softmax"` for the softmax layer).
    pub fn name(&self) -> &str {
        match self {
            LayerSpec::Conv { name, .. } | LayerSpec::MaxPool { name, .. } | LayerSpec::Fc { name, .. } => name,
            LayerSpec::Softmax => "softmax",
        }
    }

    /// Output shape given an input shape.
    ///
    /// # Errors
    /// Returns [`ShapeError`] when the input shape is incompatible
    /// (channel mismatch, window larger than input, etc.).
    pub fn output_shape(&self, input: Shape) -> Result<Shape, ShapeError> {
        match self {
            LayerSpec::Conv { name, in_c, out_c, k, stride, pad, .. } => {
                if input.c != *in_c {
                    return Err(ShapeError::new(name, format!("expected {in_c} input channels, got {}", input.c)));
                }
                let h = conv_out_dim(input.h, *k, *stride, *pad)
                    .ok_or_else(|| ShapeError::new(name, format!("kernel {k} does not fit height {}", input.h)))?;
                let w = conv_out_dim(input.w, *k, *stride, *pad)
                    .ok_or_else(|| ShapeError::new(name, format!("kernel {k} does not fit width {}", input.w)))?;
                Ok(Shape::new(*out_c, h, w))
            }
            LayerSpec::MaxPool { name, k, stride } => {
                let h = conv_out_dim(input.h, *k, *stride, 0)
                    .ok_or_else(|| ShapeError::new(name, format!("window {k} does not fit height {}", input.h)))?;
                let w = conv_out_dim(input.w, *k, *stride, 0)
                    .ok_or_else(|| ShapeError::new(name, format!("window {k} does not fit width {}", input.w)))?;
                Ok(Shape::new(input.c, h, w))
            }
            LayerSpec::Fc { name, in_features, out_features, .. } => {
                if input.len() != *in_features {
                    return Err(ShapeError::new(
                        name,
                        format!("expected {in_features} input features, got {}", input.len()),
                    ));
                }
                Ok(Shape::new(*out_features, 1, 1))
            }
            LayerSpec::Softmax => Ok(Shape::new(input.len(), 1, 1)),
        }
    }

    /// Multiply-accumulate operations this layer performs for an input
    /// shape. Pool/softmax layers report zero (the paper counts conv and FC
    /// work; GOPS figures count `2 x MACs` as operations).
    pub fn macs(&self, input: Shape) -> u64 {
        match self {
            LayerSpec::Conv { k, .. } => {
                let out = self.output_shape(input).expect("shape checked by caller");
                (out.len() as u64) * (input.c as u64) * (*k as u64) * (*k as u64)
            }
            LayerSpec::Fc { in_features, out_features, .. } => (*in_features as u64) * (*out_features as u64),
            LayerSpec::MaxPool { .. } | LayerSpec::Softmax => 0,
        }
    }

    /// Whether this layer runs on the accelerator (conv/pool; padding is
    /// folded into conv here) rather than the host processor.
    pub fn on_accelerator(&self) -> bool {
        matches!(self, LayerSpec::Conv { .. } | LayerSpec::MaxPool { .. })
    }
}

/// An ordered list of layers with a fixed input shape.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// Network name, e.g. `"vgg16"`.
    pub name: String,
    /// Shape of the network input.
    pub input: Shape,
    /// The layers, in execution order.
    pub layers: Vec<LayerSpec>,
}

impl NetworkSpec {
    /// Validates the layer chain and returns every intermediate shape
    /// (`shapes[0]` is the input, `shapes[i+1]` the output of layer `i`).
    ///
    /// # Errors
    /// Returns the first [`ShapeError`] encountered.
    pub fn shapes(&self) -> Result<Vec<Shape>, ShapeError> {
        let mut shapes = vec![self.input];
        for layer in &self.layers {
            let next = layer.output_shape(*shapes.last().expect("non-empty"))?;
            shapes.push(next);
        }
        Ok(shapes)
    }

    /// Total MACs for one inference.
    pub fn total_macs(&self) -> u64 {
        let shapes = self.shapes().expect("network must be shape-valid");
        self.layers.iter().zip(&shapes).map(|(l, &s)| l.macs(s)).sum()
    }

    /// The convolution layers with their input shapes, in order.
    pub fn conv_layers(&self) -> Vec<(usize, &LayerSpec, Shape)> {
        let shapes = self.shapes().expect("network must be shape-valid");
        self.layers
            .iter()
            .enumerate()
            .zip(&shapes)
            .filter(|((_, l), _)| matches!(l, LayerSpec::Conv { .. }))
            .map(|((i, l), &s)| (i, l, s))
            .collect()
    }
}

/// Error: a layer cannot accept its input shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Layer that rejected the shape.
    pub layer: String,
    /// Description of the mismatch.
    pub reason: String,
}

impl ShapeError {
    fn new(layer: &str, reason: String) -> Self {
        ShapeError { layer: layer.to_string(), reason }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "layer {}: {}", self.layer, self.reason)
    }
}

impl std::error::Error for ShapeError {}

/// Builds a conv layer spec with VGG-style 3x3/stride-1/pad-1 geometry.
pub fn conv3x3(name: &str, in_c: usize, out_c: usize) -> LayerSpec {
    LayerSpec::Conv { name: name.to_string(), in_c, out_c, k: 3, stride: 1, pad: 1, relu: true }
}

/// Builds a 2x2/stride-2 max-pool layer spec.
pub fn maxpool2x2(name: &str) -> LayerSpec {
    LayerSpec::MaxPool { name: name.to_string(), k: 2, stride: 2 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_inference() {
        let l = conv3x3("c", 3, 64);
        assert_eq!(l.output_shape(Shape::new(3, 224, 224)).unwrap(), Shape::new(64, 224, 224));
    }

    #[test]
    fn conv_rejects_channel_mismatch() {
        let l = conv3x3("c", 3, 64);
        let err = l.output_shape(Shape::new(4, 8, 8)).unwrap_err();
        assert_eq!(err.layer, "c");
        assert!(err.to_string().contains("channels"));
    }

    #[test]
    fn pool_halves_dims() {
        let l = maxpool2x2("p");
        assert_eq!(l.output_shape(Shape::new(64, 224, 224)).unwrap(), Shape::new(64, 112, 112));
    }

    #[test]
    fn fc_flattens() {
        let l = LayerSpec::Fc { name: "fc".into(), in_features: 512 * 7 * 7, out_features: 4096, relu: true };
        assert_eq!(l.output_shape(Shape::new(512, 7, 7)).unwrap(), Shape::new(4096, 1, 1));
        assert!(l.output_shape(Shape::new(512, 7, 8)).is_err());
    }

    #[test]
    fn macs_of_first_vgg_layer() {
        let l = conv3x3("conv1_1", 3, 64);
        // 64 * 224 * 224 * 3 * 9 MACs.
        assert_eq!(l.macs(Shape::new(3, 224, 224)), 64 * 224 * 224 * 3 * 9);
    }

    #[test]
    fn network_shapes_chain() {
        let net = NetworkSpec {
            name: "tiny".into(),
            input: Shape::new(3, 8, 8),
            layers: vec![
                conv3x3("c1", 3, 8),
                maxpool2x2("p1"),
                LayerSpec::Fc { name: "fc".into(), in_features: 8 * 4 * 4, out_features: 10, relu: false },
                LayerSpec::Softmax,
            ],
        };
        let shapes = net.shapes().unwrap();
        assert_eq!(shapes[1], Shape::new(8, 8, 8));
        assert_eq!(shapes[2], Shape::new(8, 4, 4));
        assert_eq!(shapes[3], Shape::new(10, 1, 1));
        assert_eq!(shapes[4], Shape::new(10, 1, 1));
        assert_eq!(net.conv_layers().len(), 1);
        assert!(net.total_macs() > 0);
    }

    #[test]
    fn on_accelerator_partitioning() {
        assert!(conv3x3("c", 1, 1).on_accelerator());
        assert!(maxpool2x2("p").on_accelerator());
        assert!(!LayerSpec::Softmax.on_accelerator());
        assert!(!LayerSpec::Fc { name: "f".into(), in_features: 1, out_features: 1, relu: false }.on_accelerator());
    }
}
