//! Max-pooling reference operators (float and quantized).

use zskip_quant::Sm8;
use zskip_tensor::Tensor;

/// Float max pooling with window `k` and the given stride.
///
/// # Panics
/// Panics if the window does not fit the input at least once.
pub fn maxpool_f32(input: &Tensor<f32>, k: usize, stride: usize) -> Tensor<f32> {
    let s = input.shape();
    assert!(s.h >= k && s.w >= k, "pool window {k} larger than input {s}");
    let out_h = (s.h - k) / stride + 1;
    let out_w = (s.w - k) / stride + 1;
    Tensor::from_fn(s.c, out_h, out_w, |c, y, x| {
        let mut m = f32::NEG_INFINITY;
        for dy in 0..k {
            for dx in 0..k {
                m = m.max(input[(c, y * stride + dy, x * stride + dx)]);
            }
        }
        m
    })
}

/// Quantized max pooling: the maximum under the sign+magnitude value order.
/// Bit-exact counterpart of the accelerator's MAX units (paper Fig. 5).
pub fn maxpool_quant(input: &Tensor<Sm8>, k: usize, stride: usize) -> Tensor<Sm8> {
    let mut out = Tensor::zeros(1, 1, 1);
    maxpool_quant_into(input, k, stride, &mut out);
    out
}

/// [`maxpool_quant`] writing into a caller-owned tensor, reshaped in place
/// and reused across calls (the scratch-arena inference path).
pub fn maxpool_quant_into(input: &Tensor<Sm8>, k: usize, stride: usize, out: &mut Tensor<Sm8>) {
    let s = input.shape();
    assert!(s.h >= k && s.w >= k, "pool window {k} larger than input {s}");
    let out_h = (s.h - k) / stride + 1;
    let out_w = (s.w - k) / stride + 1;
    out.reset(s.c, out_h, out_w);
    for c in 0..s.c {
        for y in 0..out_h {
            for x in 0..out_w {
                let mut m = Sm8::MIN;
                for dy in 0..k {
                    for dx in 0..k {
                        m = m.max(input[(c, y * stride + dy, x * stride + dx)]);
                    }
                }
                out[(c, y, x)] = m;
            }
        }
    }
}

/// ReLU over a float tensor (used standalone when not fused into conv).
pub fn relu_f32(input: &Tensor<f32>) -> Tensor<f32> {
    input.map(|v| v.max(0.0))
}

/// ReLU over a quantized tensor.
pub fn relu_quant(input: &Tensor<Sm8>) -> Tensor<Sm8> {
    input.map(|v| if v.to_i32() < 0 { Sm8::ZERO } else { v })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use zskip_tensor::Shape;

    #[test]
    fn pool_2x2_stride_2_takes_window_max() {
        let input = Tensor::from_fn(1, 4, 4, |_, y, x| (y * 4 + x) as f32);
        let out = maxpool_f32(&input, 2, 2);
        assert_eq!(out.shape(), Shape::new(1, 2, 2));
        assert_eq!(out[(0, 0, 0)], 5.0);
        assert_eq!(out[(0, 0, 1)], 7.0);
        assert_eq!(out[(0, 1, 0)], 13.0);
        assert_eq!(out[(0, 1, 1)], 15.0);
    }

    #[test]
    fn pool_3x3_stride_1_overlapping() {
        let input = Tensor::from_fn(1, 4, 4, |_, y, x| ((y * 4 + x) as f32 * 0.5) - 3.0);
        let out = maxpool_f32(&input, 3, 1);
        assert_eq!(out.shape(), Shape::new(1, 2, 2));
        assert_eq!(out[(0, 0, 0)], input[(0, 2, 2)]);
    }

    #[test]
    fn quant_pool_handles_negatives() {
        let input = Tensor::from_fn(1, 2, 2, |_, y, x| Sm8::from_i32_saturating(-((y * 2 + x) as i32) - 1));
        let out = maxpool_quant(&input, 2, 2);
        assert_eq!(out[(0, 0, 0)].to_i32(), -1);
    }

    #[test]
    fn relu_variants_agree() {
        let f = Tensor::from_fn(1, 2, 2, |_, y, x| (y as f32 - x as f32) * 2.0 - 1.0);
        let q = f.map(|v| Sm8::from_i32_saturating(v as i32));
        let rf = relu_f32(&f);
        let rq = relu_quant(&q);
        for (a, b) in rf.as_slice().iter().zip(rq.as_slice()) {
            assert!(*a >= 0.0);
            assert!(b.to_i32() >= 0);
            assert_eq!(b.to_i32(), (*a as i32).max(0));
        }
    }

    proptest! {
        #[test]
        fn quant_pool_matches_float_pool_on_quantized_grid(
            vals in proptest::collection::vec(-127i32..=127, 36),
            k in 1usize..=3,
            stride in 1usize..=2,
        ) {
            let fq = Tensor::from_vec(1, 6, 6, vals.iter().map(|&v| v as f32).collect());
            let q = Tensor::from_vec(1, 6, 6, vals.iter().map(|&v| Sm8::from_i32_saturating(v)).collect());
            let pf = maxpool_f32(&fq, k, stride);
            let pq = maxpool_quant(&q, k, stride);
            for (a, b) in pf.as_slice().iter().zip(pq.as_slice()) {
                prop_assert_eq!(*a as i32, b.to_i32());
            }
        }
    }
}
