//! Networks with weights: synthetic generation, quantization, inference.
//!
//! This module is the Rust stand-in for the paper's Caffe flow (§IV-B/C):
//! start from a trained float model, prune to a sparsity profile, reduce to
//! 8-bit sign+magnitude by scaling, and hand the result to the accelerator
//! driver. Trained VGG-16 weights and ImageNet are data-gated (see
//! DESIGN.md), so float models are generated synthetically with seeded,
//! realistically-scaled distributions — everything downstream (sparsity
//! structure, zero-skipping, cycle counts, bit-exactness) is faithful.

use crate::conv::{conv2d_f32, conv2d_quant_into, conv2d_quant_into_pool, ConvWeights, QuantConvWeights};
use crate::eltwise::{
    add_f32, add_quant_phase1, add_quant_phase2, batchnorm_f32, global_avgpool_f32,
    global_avgpool_quant_into, BnWeights,
};
use crate::fc::{fc_f32, fc_quant_into, softmax, FcWeights, QuantFcWeights};
use crate::layer::{LayerRef, LayerSpec, NetworkSpec};
use crate::plan::{ExecPlan, PlanStep};
use crate::pool::{maxpool_f32, maxpool_quant_into};
use crate::scratch::{slot_pair, Scratch};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use zskip_quant::{prune_to_density, DensityProfile, QuantParams, Requantizer, Sm8};
use zskip_tensor::Tensor;

/// A float network: a spec plus per-layer weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    /// The layer graph.
    pub spec: NetworkSpec,
    /// Weights for each conv layer, in layer order.
    pub conv_weights: Vec<ConvWeights>,
    /// Weights for each FC layer, in layer order.
    pub fc_weights: Vec<FcWeights>,
    /// Weights for each batch-norm layer, in layer order (empty for
    /// BN-free networks; folded away by [`Network::fold_batchnorm`]).
    pub bn_weights: Vec<BnWeights>,
}

/// Configuration for synthetic model generation.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticModelConfig {
    /// RNG seed; identical seeds generate identical models.
    pub seed: u64,
    /// Per-conv-layer density profile applied by magnitude pruning.
    pub density: DensityProfile,
}

impl Default for SyntheticModelConfig {
    fn default() -> Self {
        SyntheticModelConfig { seed: 0x5eed, density: DensityProfile::dense(0) }
    }
}

impl Network {
    /// Generates a synthetic float model for a network spec: He-scaled
    /// Gaussian weights (`std = sqrt(2 / fan_in)`), small biases, then
    /// magnitude pruning per the density profile.
    pub fn synthetic(spec: NetworkSpec, config: &SyntheticModelConfig) -> Network {
        let shapes = spec.shapes().expect("network must be shape-valid");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut conv_weights = Vec::new();
        let mut fc_weights = Vec::new();
        let mut bn_weights = Vec::new();
        let mut conv_idx = 0;
        for (li, layer) in spec.layers.iter().enumerate() {
            match layer {
                LayerSpec::Conv { in_c, out_c, k, .. } => {
                    let fan_in = in_c * k * k;
                    let std = (2.0 / fan_in as f32).sqrt();
                    let mut w = ConvWeights::zeros(*out_c, *in_c, *k);
                    for v in w.w.iter_mut() {
                        *v = gaussian(&mut rng) * std;
                    }
                    for b in w.bias.iter_mut() {
                        *b = gaussian(&mut rng) * 0.01;
                    }
                    prune_to_density(&mut w.w, config.density.density(conv_idx));
                    conv_idx += 1;
                    conv_weights.push(w);
                }
                LayerSpec::Fc { in_features, out_features, .. } => {
                    let std = (2.0 / *in_features as f32).sqrt();
                    let mut w = FcWeights::zeros(*out_features, *in_features);
                    for v in w.w.iter_mut() {
                        *v = gaussian(&mut rng) * std;
                    }
                    for b in w.bias.iter_mut() {
                        *b = gaussian(&mut rng) * 0.01;
                    }
                    fc_weights.push(w);
                }
                LayerSpec::BatchNorm { .. } => {
                    // Realistic inference statistics: gamma near 1, small
                    // beta/mean, variance strictly positive near 1.
                    let c = shapes[li].c;
                    let mut bn = BnWeights::identity(c);
                    for i in 0..c {
                        bn.gamma[i] = 1.0 + gaussian(&mut rng) * 0.1;
                        bn.beta[i] = gaussian(&mut rng) * 0.05;
                        bn.mean[i] = gaussian(&mut rng) * 0.05;
                        bn.var[i] = (1.0 + gaussian(&mut rng) * 0.25).abs().max(0.05);
                    }
                    bn_weights.push(bn);
                }
                LayerSpec::MaxPool { .. }
                | LayerSpec::Softmax
                | LayerSpec::Ref { .. }
                | LayerSpec::Add { .. }
                | LayerSpec::GlobalAvgPool { .. } => {}
            }
        }
        Network { spec, conv_weights, fc_weights, bn_weights }
    }

    /// Folds every batch-norm layer into its preceding convolution's
    /// weights in f32 — the standard inference-time transform: scale
    /// output-channel `o`'s filters by `gamma[o] / sqrt(var[o] + eps)`
    /// and map the bias through the same per-channel affine. The BN layer
    /// disappears from the spec (its fused ReLU moves onto the conv) and
    /// every `Ref`/`Add` reference is remapped to the compacted indices.
    ///
    /// [`Network::quantize`] calls this first when the spec carries
    /// batch-norm, which pins the fold order: fold in f32, then quantize.
    pub fn fold_batchnorm(&self) -> Network {
        if !self.spec.has_batchnorm() {
            return self.clone();
        }
        let mut layers: Vec<LayerSpec> = Vec::with_capacity(self.spec.layers.len());
        // Old layer index -> index of the layer producing the same value
        // in the folded spec (a BN maps to its host conv).
        let mut index_map = vec![usize::MAX; self.spec.layers.len()];
        let mut conv_weights = self.conv_weights.clone();
        let mut conv_i = 0;
        let mut bn_i = 0;
        for (i, layer) in self.spec.layers.iter().enumerate() {
            match layer {
                LayerSpec::BatchNorm { relu, .. } => {
                    let bn = &self.bn_weights[bn_i];
                    bn_i += 1;
                    let w = &mut conv_weights[conv_i - 1];
                    let affine = bn.affine();
                    assert_eq!(affine.len(), w.out_c, "one affine per conv output channel");
                    let per_filter = w.in_c * w.k * w.k;
                    for (o, &(a, b)) in affine.iter().enumerate() {
                        for v in &mut w.w[o * per_filter..(o + 1) * per_filter] {
                            *v *= a;
                        }
                        w.bias[o] = a * w.bias[o] + b;
                    }
                    let host = layers.last_mut().expect("validated: BN follows its conv");
                    match host {
                        LayerSpec::Conv { relu: conv_relu, .. } => *conv_relu = *relu,
                        _ => unreachable!("validated: BN follows its conv"),
                    }
                    index_map[i] = layers.len() - 1;
                }
                _ => {
                    let mut l = layer.clone();
                    match &mut l {
                        LayerSpec::Ref { from, .. } | LayerSpec::Add { from, .. } => {
                            if let LayerRef::Layer(j) = from {
                                *from = LayerRef::Layer(index_map[*j]);
                            }
                        }
                        LayerSpec::Conv { .. } => conv_i += 1,
                        _ => {}
                    }
                    layers.push(l);
                    index_map[i] = layers.len() - 1;
                }
            }
        }
        let spec = NetworkSpec { name: self.spec.name.clone(), input: self.spec.input, layers };
        debug_assert!(spec.shapes().is_ok(), "folding preserves validity");
        Network { spec, conv_weights, fc_weights: self.fc_weights.clone(), bn_weights: Vec::new() }
    }

    /// Float forward pass, invoking `visit(layer_index, activation)` after
    /// every layer (index 0 receives the input). Returns the final
    /// activation flattened.
    pub fn forward_f32_with(
        &self,
        input: &Tensor<f32>,
        mut visit: impl FnMut(usize, &Tensor<f32>),
    ) -> Vec<f32> {
        visit(0, input);
        // The float oracle favours clarity over memory: every boundary
        // activation is kept so `Ref`/`Add` can reach back into the DAG
        // (`acts[0]` is the input, `acts[i + 1]` the output of layer `i`).
        let mut acts: Vec<Tensor<f32>> = Vec::with_capacity(self.spec.layers.len() + 1);
        acts.push(input.clone());
        let mut conv_i = 0;
        let mut fc_i = 0;
        let mut bn_i = 0;
        for (li, layer) in self.spec.layers.iter().enumerate() {
            let next = {
                let prev = acts.last().expect("non-empty");
                let resolve = |r: &LayerRef| match r {
                    LayerRef::Input => &acts[0],
                    LayerRef::Layer(j) => &acts[j + 1],
                };
                match layer {
                    LayerSpec::Conv { stride, pad, relu, .. } => {
                        let out = conv2d_f32(prev, &self.conv_weights[conv_i], *stride, *pad, *relu);
                        conv_i += 1;
                        out
                    }
                    LayerSpec::MaxPool { k, stride, .. } => maxpool_f32(prev, *k, *stride),
                    LayerSpec::Fc { relu, .. } => {
                        let out = fc_f32(prev.as_slice(), &self.fc_weights[fc_i], *relu);
                        fc_i += 1;
                        Tensor::from_vec(out.len(), 1, 1, out)
                    }
                    LayerSpec::Softmax => {
                        let out = softmax(prev.as_slice());
                        Tensor::from_vec(out.len(), 1, 1, out)
                    }
                    LayerSpec::Ref { from, .. } => resolve(from).clone(),
                    LayerSpec::Add { from, relu, .. } => add_f32(prev, resolve(from), *relu),
                    LayerSpec::GlobalAvgPool { .. } => global_avgpool_f32(prev),
                    LayerSpec::BatchNorm { relu, .. } => {
                        let out = batchnorm_f32(prev, &self.bn_weights[bn_i], *relu);
                        bn_i += 1;
                        out
                    }
                }
            };
            visit(li + 1, &next);
            acts.push(next);
        }
        acts.pop().expect("non-empty").into_vec()
    }

    /// Float forward pass.
    pub fn forward_f32(&self, input: &Tensor<f32>) -> Vec<f32> {
        self.forward_f32_with(input, |_, _| {})
    }

    /// Quantizes this network to 8-bit sign+magnitude using the given
    /// calibration inputs to set activation scales (max-abs calibration).
    /// With no calibration inputs, all activation scales default to 1.0.
    ///
    /// Batch-norm folds **before** quantization ([`Network::fold_batchnorm`]
    /// runs first when the spec carries BN), so the returned network's
    /// spec is BN-free; calibration then sees the folded activations.
    pub fn quantize(&self, calibration: &[Tensor<f32>]) -> QuantizedNetwork {
        if self.spec.has_batchnorm() {
            return self.fold_batchnorm().quantize(calibration);
        }
        let boundaries = self.spec.layers.len() + 1;
        let mut max_abs = vec![0f32; boundaries];
        for input in calibration {
            self.forward_f32_with(input, |i, act| {
                let m = act.as_slice().iter().fold(0f32, |m, &v| m.max(v.abs()));
                max_abs[i] = max_abs[i].max(m);
            });
        }
        let scales: Vec<f32> =
            max_abs.iter().map(|&m| if m > 0.0 { m / 127.0 } else { 1.0 }).collect();

        let mut conv = Vec::new();
        let mut fc = Vec::new();
        let mut conv_i = 0;
        let mut fc_i = 0;
        for (li, layer) in self.spec.layers.iter().enumerate() {
            let s_in = scales[li];
            let s_out = scales[li + 1];
            match layer {
                LayerSpec::Conv { relu, .. } => {
                    let w = &self.conv_weights[conv_i];
                    let wq = QuantParams::from_max_abs(&w.w);
                    conv.push(QuantizedConvLayer {
                        layer_index: li,
                        weights: QuantConvWeights::new(
                            w.out_c,
                            w.in_c,
                            w.k,
                            w.w.iter().map(|&v| wq.quantize(v)).collect(),
                            w.bias
                                .iter()
                                .map(|&b| (b / (s_in * wq.scale)).round() as i64)
                                .collect(),
                            Requantizer::from_ratio((s_in * wq.scale / s_out) as f64),
                            *relu,
                        ),
                        in_scale: s_in,
                        w_scale: wq.scale,
                        out_scale: s_out,
                    });
                    conv_i += 1;
                }
                LayerSpec::Fc { relu, .. } => {
                    let w = &self.fc_weights[fc_i];
                    let wq = QuantParams::from_max_abs(&w.w);
                    fc.push(QuantFcWeights {
                        out_features: w.out_features,
                        in_features: w.in_features,
                        w: w.w.iter().map(|&v| wq.quantize(v)).collect(),
                        bias_acc: w
                            .bias
                            .iter()
                            .map(|&b| (b / (s_in * wq.scale)).round() as i64)
                            .collect(),
                        requant: Requantizer::from_ratio((s_in * wq.scale / s_out) as f64),
                        relu: *relu,
                    });
                    fc_i += 1;
                }
                // Ref/Add/GAP carry no weights: their requantizers derive
                // from the activation scales on demand (see
                // [`QuantizedNetwork::add_requantizers`]).
                LayerSpec::MaxPool { .. }
                | LayerSpec::Softmax
                | LayerSpec::Ref { .. }
                | LayerSpec::Add { .. }
                | LayerSpec::GlobalAvgPool { .. } => {}
                LayerSpec::BatchNorm { .. } => unreachable!("folded above"),
            }
        }
        QuantizedNetwork {
            spec: self.spec.clone(),
            plan: ExecPlan::build(&self.spec).expect("network must be shape-valid"),
            input_params: QuantParams { scale: scales[0] },
            activation_scales: scales,
            conv,
            fc,
        }
    }
}

impl Network {
    /// Quantizes this network with **ternary** conv weights (the paper's
    /// future-work network style): each conv layer's weights become
    /// `{-1, 0, +1}` with a per-layer scale, inducing 30-60% sparsity that
    /// the zero-skipping hardware exploits directly. FC layers stay 8-bit.
    pub fn quantize_ternary(&self, calibration: &[Tensor<f32>]) -> QuantizedNetwork {
        use zskip_quant::TernaryParams;
        if self.spec.has_batchnorm() {
            // Fold first so the layer walk below sees the same spec the
            // 8-bit quantization produced.
            return self.fold_batchnorm().quantize_ternary(calibration);
        }
        // Start from the 8-bit quantization for activation scales and FC.
        let mut q = self.quantize(calibration);
        let mut conv_i = 0;
        for (li, layer) in self.spec.layers.iter().enumerate() {
            if let LayerSpec::Conv { relu, .. } = layer {
                let w = &self.conv_weights[conv_i];
                let s_in = q.activation_scales[li];
                let s_out = q.activation_scales[li + 1];
                let t = TernaryParams::from_weights(&w.w);
                let ql = &mut q.conv[conv_i];
                ql.weights.w = t.quantize_all(&w.w);
                ql.weights.bias_acc =
                    w.bias.iter().map(|&b| (b / (s_in * t.scale)).round() as i64).collect();
                ql.weights.requant = t.requantizer(s_in, s_out);
                ql.weights.relu = *relu;
                ql.weights.invalidate_caches();
                ql.w_scale = t.scale;
                conv_i += 1;
            }
        }
        q
    }
}

/// One quantized conv layer with its scale bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedConvLayer {
    /// Index of this layer in the network spec.
    pub layer_index: usize,
    /// The integer operands (what the accelerator consumes).
    pub weights: QuantConvWeights,
    /// Input activation scale.
    pub in_scale: f32,
    /// Weight scale.
    pub w_scale: f32,
    /// Output activation scale.
    pub out_scale: f32,
}

/// A fully quantized network: the artifact handed to the accelerator driver.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedNetwork {
    /// The layer graph (shared with the float model; batch-norm-free —
    /// quantization folds BN away).
    pub spec: NetworkSpec,
    /// The DAG execution plan (slot assignment and liveness) the scratch
    /// forward pass and the accelerator driver both walk.
    pub plan: ExecPlan,
    /// Quantizer for network inputs.
    pub input_params: QuantParams,
    /// Activation scale at every layer boundary (len = layers + 1).
    pub activation_scales: Vec<f32>,
    /// Quantized conv layers, in order.
    pub conv: Vec<QuantizedConvLayer>,
    /// Quantized FC layers, in order.
    pub fc: Vec<QuantFcWeights>,
}

impl QuantizedNetwork {
    /// Integer-exact forward pass (the software golden model). Returns the
    /// final quantized activations.
    ///
    /// Convenience wrapper over [`QuantizedNetwork::forward_quant_scratch`]
    /// with a throwaway arena; streaming callers should hold a [`Scratch`]
    /// and call the `_scratch` variant so steady-state images allocate
    /// nothing.
    pub fn forward_quant(&self, input: &Tensor<f32>) -> Vec<Sm8> {
        let mut scratch = Scratch::new();
        self.forward_quant_scratch(input, &mut scratch).to_vec()
    }

    /// Integer-exact forward pass through a caller-owned buffer arena.
    /// Returns a borrow of the final quantized activations inside the
    /// arena (copy it out before the next image).
    ///
    /// The first image through a network grows the arena and warms the
    /// per-layer weight caches; after that the whole pass performs zero
    /// heap allocations (`tests/alloc_free.rs` asserts this with a
    /// counting allocator). Kernels run at [`Scratch::tier`].
    pub fn forward_quant_scratch<'s>(&self, input: &Tensor<f32>, scratch: &'s mut Scratch) -> &'s [Sm8] {
        let before = scratch.capacity_bytes();
        let tier = scratch.tier();
        scratch.ensure_slots(self.plan.slots.max(1));
        let mut flat_cur: Option<usize> = None;
        {
            let Scratch { slots, acc, flat, pool, .. } = scratch;
            // The plan always places the network input in slot 0.
            input.map_into(&mut slots[0], |v| self.input_params.quantize(v));
            let mut conv_i = 0;
            let mut fc_i = 0;
            for step in &self.plan.steps {
                let layer = &self.spec.layers[step.layer];
                match layer {
                    LayerSpec::Conv { stride, pad, .. } => {
                        let (src, dst) = slot_pair(slots, step.src.expect("conv reads a slot"), step.dst.expect("conv writes a slot"));
                        match pool.as_deref() {
                            Some(p) => conv2d_quant_into_pool(
                                src,
                                &self.conv[conv_i].weights,
                                *stride,
                                *pad,
                                tier,
                                p,
                                acc,
                                dst,
                            ),
                            None => conv2d_quant_into(
                                src,
                                &self.conv[conv_i].weights,
                                *stride,
                                *pad,
                                tier,
                                acc,
                                dst,
                            ),
                        }
                        conv_i += 1;
                    }
                    LayerSpec::MaxPool { k, stride, .. } => {
                        let (src, dst) = slot_pair(slots, step.src.expect("pool reads a slot"), step.dst.expect("pool writes a slot"));
                        maxpool_quant_into(src, *k, *stride, dst);
                    }
                    // A Ref is a pure alias: its plan step re-emits the
                    // source slot (`dst == src`), no data moves.
                    LayerSpec::Ref { .. } => {}
                    LayerSpec::Add { relu, .. } => {
                        let (ra, rb) = self.add_requantizers(step);
                        add_quant_phase1(&slots[step.src.expect("add reads a slot")], ra, acc);
                        let (b, dst) = slot_pair(slots, step.operand.expect("add has an operand"), step.dst.expect("add writes a slot"));
                        add_quant_phase2(b, rb, *relu, acc, dst);
                    }
                    LayerSpec::GlobalAvgPool { .. } => {
                        let (src, dst) = slot_pair(slots, step.src.expect("gap reads a slot"), step.dst.expect("gap writes a slot"));
                        let r = self.gap_requantizer(step, src.shape().h * src.shape().w);
                        global_avgpool_quant_into(src, r, dst);
                    }
                    LayerSpec::Fc { .. } => {
                        match flat_cur {
                            Some(fi) => {
                                let (lo, hi) = flat.split_at_mut(1);
                                let (src, dst) =
                                    if fi == 0 { (&lo[0], &mut hi[0]) } else { (&hi[0], &mut lo[0]) };
                                fc_quant_into(src, &self.fc[fc_i], dst);
                                flat_cur = Some(1 - fi);
                            }
                            None => {
                                let src = &slots[step.src.expect("first fc reads a slot")];
                                fc_quant_into(src.as_slice(), &self.fc[fc_i], &mut flat[0]);
                                flat_cur = Some(0);
                            }
                        }
                        fc_i += 1;
                    }
                    LayerSpec::Softmax => {
                        // Softmax is monotone; the quantized path carries logits
                        // through (classification by argmax is unchanged).
                    }
                    LayerSpec::BatchNorm { .. } => {
                        unreachable!("quantize() folds batch-norm before execution")
                    }
                }
            }
        }
        if scratch.capacity_bytes() != before {
            scratch.grow_events += 1;
        }
        match flat_cur {
            Some(fi) => &scratch.flat[fi],
            None => scratch.slots[self.plan.output_slot.unwrap_or(0)].as_slice(),
        }
    }

    /// Requantizers bringing an [`LayerSpec::Add`] step's two operands to
    /// the layer's output scale (`s_operand / s_out` each): applied raw
    /// (to `i32`), summed, then saturated once — the shared definition of
    /// the quantized residual join for oracle and driver.
    pub fn add_requantizers(&self, step: &PlanStep) -> (Requantizer, Requantizer) {
        let s_out = self.activation_scales[step.layer + 1];
        let ra = self.boundary_scale(step.src_layer) / s_out;
        let rb = self.boundary_scale(step.operand_layer) / s_out;
        (Requantizer::from_ratio(ra as f64), Requantizer::from_ratio(rb as f64))
    }

    /// Requantizer for a [`LayerSpec::GlobalAvgPool`] step over `n`
    /// spatial positions: the `1/n` mean divisor folds into the scale
    /// ratio, so the exact `i64` channel sum requantizes in one step.
    pub fn gap_requantizer(&self, step: &PlanStep, n: usize) -> Requantizer {
        let s_in = self.boundary_scale(step.src_layer);
        let s_out = self.activation_scales[step.layer + 1];
        Requantizer::from_ratio(s_in as f64 / (s_out as f64 * n as f64))
    }

    /// The activation scale at a plan step's input boundary (`None` = the
    /// network input).
    fn boundary_scale(&self, layer: Option<usize>) -> f32 {
        match layer {
            None => self.activation_scales[0],
            Some(j) => self.activation_scales[j + 1],
        }
    }

    /// Forward pass returning dequantized (approximate float) logits.
    pub fn forward_dequant(&self, input: &Tensor<f32>) -> Vec<f32> {
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        self.forward_dequant_into(input, &mut scratch, &mut out);
        out
    }

    /// [`QuantizedNetwork::forward_dequant`] through a caller-owned arena,
    /// writing the logits into a reused vector (fidelity sweeps call this
    /// per input without allocating on the quantized side).
    pub fn forward_dequant_into(&self, input: &Tensor<f32>, scratch: &mut Scratch, out: &mut Vec<f32>) {
        // The last non-softmax boundary scale applies to the logits.
        let scale = self
            .spec
            .layers
            .iter()
            .rposition(|l| !matches!(l, LayerSpec::Softmax))
            .map(|i| self.activation_scales[i + 1])
            .unwrap_or(1.0);
        let q = self.forward_quant_scratch(input, scratch);
        out.clear();
        out.extend(q.iter().map(|&v| v.to_i32() as f32 * scale));
    }

    /// Per-conv-layer weight density, in layer order.
    pub fn conv_densities(&self) -> Vec<f64> {
        self.conv.iter().map(|c| c.weights.density()).collect()
    }
}

/// Standard Gaussian via Box-Muller (keeps dependencies minimal and seeds
/// reproducible across `rand` versions).
fn gaussian(rng: &mut impl Rng) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        let u2: f32 = rng.gen::<f32>();
        if u1 > f32::EPSILON {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{conv3x3, maxpool2x2};
    use zskip_quant::sparsity;
    use zskip_tensor::Shape;

    fn tiny_spec() -> NetworkSpec {
        NetworkSpec {
            name: "tiny".into(),
            input: Shape::new(3, 8, 8),
            layers: vec![
                conv3x3("c1", 3, 8),
                maxpool2x2("p1"),
                conv3x3("c2", 8, 16),
                maxpool2x2("p2"),
                LayerSpec::Fc { name: "fc".into(), in_features: 16 * 2 * 2, out_features: 10, relu: false },
                LayerSpec::Softmax,
            ],
        }
    }

    fn tiny_input(seed: u64) -> Tensor<f32> {
        Tensor::from_fn(3, 8, 8, |c, y, x| {
            (((c * 64 + y * 8 + x) as f32 + seed as f32) * 0.618).sin()
        })
    }

    #[test]
    fn synthetic_is_deterministic() {
        let cfg = SyntheticModelConfig { seed: 7, density: DensityProfile::dense(2) };
        let a = Network::synthetic(tiny_spec(), &cfg);
        let b = Network::synthetic(tiny_spec(), &cfg);
        assert_eq!(a, b);
        let c = Network::synthetic(tiny_spec(), &SyntheticModelConfig { seed: 8, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn synthetic_respects_density_profile() {
        let cfg = SyntheticModelConfig { seed: 1, density: DensityProfile::uniform(2, 0.25) };
        let net = Network::synthetic(tiny_spec(), &cfg);
        for w in &net.conv_weights {
            let s = sparsity(&w.w);
            assert!((s - 0.75).abs() < 0.02, "sparsity {s}");
        }
    }

    #[test]
    fn forward_produces_distribution_after_softmax() {
        let net = Network::synthetic(tiny_spec(), &SyntheticModelConfig::default());
        let out = net.forward_f32(&tiny_input(0));
        assert_eq!(out.len(), 10);
        assert!((out.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(out.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn quantized_forward_agrees_with_float_argmax() {
        let net = Network::synthetic(tiny_spec(), &SyntheticModelConfig::default());
        let calib: Vec<Tensor<f32>> = (0..4).map(tiny_input).collect();
        let qnet = net.quantize(&calib);
        let mut agree = 0;
        let n = 8;
        for i in 0..n {
            let input = tiny_input(100 + i);
            let f = net.forward_f32(&input);
            let q = qnet.forward_dequant(&input);
            assert_eq!(q.len(), 10);
            if crate::fc::argmax(&f) == crate::fc::argmax(&q) {
                agree += 1;
            }
        }
        // 8-bit quantization should agree on most random inputs.
        assert!(agree >= n * 3 / 4, "agreement {agree}/{n}");
    }

    #[test]
    fn quantized_network_preserves_density() {
        let cfg = SyntheticModelConfig { seed: 3, density: DensityProfile::uniform(2, 0.3) };
        let net = Network::synthetic(tiny_spec(), &cfg);
        let qnet = net.quantize(&[tiny_input(0)]);
        for d in qnet.conv_densities() {
            // Quantization can only add zeros (small weights round to 0).
            assert!(d <= 0.32, "density {d}");
        }
    }

    #[test]
    fn scratch_forward_matches_allocating_forward_and_stops_growing() {
        let net = Network::synthetic(tiny_spec(), &SyntheticModelConfig::default());
        let qnet = net.quantize(&[tiny_input(0)]);
        let mut scratch = Scratch::new();
        for i in 0..4 {
            let input = tiny_input(200 + i);
            let fresh = qnet.forward_quant(&input);
            let reused = qnet.forward_quant_scratch(&input, &mut scratch).to_vec();
            assert_eq!(fresh, reused, "image {i}");
        }
        // Same-shaped images: only the first pass may grow the arena.
        assert_eq!(scratch.grow_events(), 1);
    }

    #[test]
    fn scratch_forward_is_tier_independent() {
        let net = Network::synthetic(tiny_spec(), &SyntheticModelConfig::default());
        let qnet = net.quantize(&[tiny_input(0)]);
        let input = tiny_input(42);
        let mut base = Scratch::with_tier(crate::simd::KernelTier::Scalar);
        let want = qnet.forward_quant_scratch(&input, &mut base).to_vec();
        for tier in crate::simd::KernelTier::supported() {
            let mut s = Scratch::with_tier(tier);
            assert_eq!(qnet.forward_quant_scratch(&input, &mut s), &want[..], "tier {tier}");
        }
    }

    /// A residual block with batch-norm, a projection shortcut, global
    /// average pooling, and an FC head — every new layer type at once.
    fn residual_spec() -> NetworkSpec {
        use crate::layer::{conv1x1, LayerRef};
        NetworkSpec {
            name: "res-tiny".into(),
            input: Shape::new(3, 8, 8),
            layers: vec![
                LayerSpec::Conv { name: "stem".into(), in_c: 3, out_c: 4, k: 3, stride: 1, pad: 1, relu: false },
                LayerSpec::BatchNorm { name: "stem_bn".into(), relu: true },
                LayerSpec::Conv { name: "c1".into(), in_c: 4, out_c: 4, k: 3, stride: 1, pad: 1, relu: false },
                LayerSpec::BatchNorm { name: "c1_bn".into(), relu: true },
                LayerSpec::Conv { name: "c2".into(), in_c: 4, out_c: 4, k: 3, stride: 1, pad: 1, relu: false },
                LayerSpec::BatchNorm { name: "c2_bn".into(), relu: false },
                LayerSpec::Add { name: "join".into(), from: LayerRef::Layer(1), relu: true },
                maxpool2x2("pool"),
                LayerSpec::Ref { name: "skip".into(), from: LayerRef::Layer(6) },
                conv1x1("proj", 4, 6),
                LayerSpec::BatchNorm { name: "proj_bn".into(), relu: false },
                LayerSpec::GlobalAvgPool { name: "gap".into() },
                LayerSpec::Fc { name: "fc".into(), in_features: 6, out_features: 5, relu: false },
                LayerSpec::Softmax,
            ],
        }
    }

    #[test]
    fn fold_batchnorm_matches_the_float_bn_oracle() {
        let net = Network::synthetic(residual_spec(), &SyntheticModelConfig { seed: 11, ..Default::default() });
        let folded = net.fold_batchnorm();
        assert!(!folded.spec.has_batchnorm());
        assert!(folded.bn_weights.is_empty());
        assert_eq!(folded.spec.layers.len(), net.spec.layers.len() - 4);
        for i in 0..4 {
            let input = tiny_input(300 + i);
            let a = net.forward_f32(&input);
            let b = folded.forward_f32(&input);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-4, "fold drifted: {x} vs {y}");
            }
        }
    }

    #[test]
    fn residual_quantized_forward_agrees_with_float_argmax() {
        let net = Network::synthetic(residual_spec(), &SyntheticModelConfig { seed: 5, ..Default::default() });
        let calib: Vec<Tensor<f32>> = (0..4).map(tiny_input).collect();
        let qnet = net.quantize(&calib);
        assert!(!qnet.spec.has_batchnorm(), "quantization folds BN away");
        assert_eq!(qnet.plan.slots, 3, "skip branch holds a third slot");
        let mut agree = 0;
        let n = 8;
        for i in 0..n {
            let input = tiny_input(400 + i);
            let f = net.forward_f32(&input);
            let q = qnet.forward_dequant(&input);
            if crate::fc::argmax(&f) == crate::fc::argmax(&q) {
                agree += 1;
            }
        }
        assert!(agree >= n * 3 / 4, "agreement {agree}/{n}");
    }

    #[test]
    fn residual_scratch_forward_is_warm_allocation_stable_and_tier_independent() {
        let net = Network::synthetic(residual_spec(), &SyntheticModelConfig::default());
        let qnet = net.quantize(&[tiny_input(0)]);
        let mut scratch = Scratch::with_tier(crate::simd::KernelTier::Scalar);
        let mut want = Vec::new();
        for i in 0..4 {
            let input = tiny_input(500 + i);
            let fresh = qnet.forward_quant(&input);
            let reused = qnet.forward_quant_scratch(&input, &mut scratch).to_vec();
            assert_eq!(fresh, reused, "image {i}");
            if i == 0 {
                want = fresh;
            }
        }
        assert_eq!(scratch.grow_events(), 1, "skip slots must reuse after warmup");
        let input = tiny_input(500);
        for tier in crate::simd::KernelTier::supported() {
            let mut s = Scratch::with_tier(tier);
            assert_eq!(qnet.forward_quant_scratch(&input, &mut s), &want[..], "tier {tier}");
        }
    }

    #[test]
    fn visit_sees_every_boundary() {
        let net = Network::synthetic(tiny_spec(), &SyntheticModelConfig::default());
        let mut seen = Vec::new();
        net.forward_f32_with(&tiny_input(0), |i, act| seen.push((i, act.shape())));
        assert_eq!(seen.len(), 7);
        assert_eq!(seen[0].1, Shape::new(3, 8, 8));
        assert_eq!(seen[6].1, Shape::new(10, 1, 1));
    }
}

#[cfg(test)]
mod fold_order_tests {
    use super::*;
    use crate::layer::conv3x3;
    use proptest::prelude::*;
    use zskip_tensor::Shape;

    fn bn_spec() -> NetworkSpec {
        NetworkSpec {
            name: "bn-prop".into(),
            input: Shape::new(2, 6, 6),
            layers: vec![
                LayerSpec::Conv { name: "c1".into(), in_c: 2, out_c: 3, k: 3, stride: 1, pad: 1, relu: false },
                LayerSpec::BatchNorm { name: "c1_bn".into(), relu: true },
                conv3x3("c2", 3, 3),
                LayerSpec::Add { name: "join".into(), from: LayerRef::Layer(1), relu: false },
            ],
        }
    }

    fn input(seed: u64) -> Tensor<f32> {
        Tensor::from_fn(2, 6, 6, |c, y, x| (((c * 36 + y * 6 + x) as f32 + seed as f32) * 0.41).sin())
    }

    proptest! {
        /// Pins the fold order: quantizing a BN-carrying network is
        /// bit-identical to folding batch-norm in f32 first and then
        /// quantizing, across random BN statistics and epsilons. Any
        /// future change that quantizes first and folds integer weights
        /// afterwards must reproduce this exactly.
        #[test]
        fn quantizing_with_bn_equals_folding_then_quantizing(
            seed in 0u64..500,
            gamma in proptest::collection::vec(0.2f32..3.0, 3),
            beta in proptest::collection::vec(-0.5f32..0.5, 3),
            mean in proptest::collection::vec(-0.5f32..0.5, 3),
            var in proptest::collection::vec(0.05f32..4.0, 3),
            eps in prop_oneof![Just(1e-5f32), Just(1e-3f32), Just(0.1f32)],
        ) {
            let mut net = Network::synthetic(
                bn_spec(),
                &SyntheticModelConfig { seed, ..Default::default() },
            );
            net.bn_weights = vec![BnWeights { gamma, beta, mean, var, eps }];
            let calib: Vec<Tensor<f32>> = (0..2).map(input).collect();
            let with_bn = net.quantize(&calib);
            let folded_first = net.fold_batchnorm().quantize(&calib);
            prop_assert_eq!(&with_bn, &folded_first);
            let x = input(seed + 1000);
            prop_assert_eq!(with_bn.forward_quant(&x), folded_first.forward_quant(&x));
        }
    }
}

#[cfg(test)]
mod ternary_tests {
    use super::*;
    use crate::layer::{conv3x3, maxpool2x2, NetworkSpec};
    use zskip_tensor::Shape;

    fn spec() -> NetworkSpec {
        NetworkSpec {
            name: "t".into(),
            input: Shape::new(3, 8, 8),
            layers: vec![
                conv3x3("c1", 3, 8),
                maxpool2x2("p1"),
                LayerSpec::Fc { name: "fc".into(), in_features: 8 * 4 * 4, out_features: 4, relu: false },
            ],
        }
    }

    fn input(seed: u64) -> Tensor<f32> {
        Tensor::from_fn(3, 8, 8, |c, y, x| (((c * 64 + y * 8 + x) as f32 + seed as f32) * 0.37).sin())
    }

    #[test]
    fn ternary_weights_are_three_valued_and_sparse() {
        let net = Network::synthetic(spec(), &SyntheticModelConfig::default());
        let q = net.quantize_ternary(&[input(0)]);
        for layer in &q.conv {
            for w in &layer.weights.w {
                assert!(w.to_i32().abs() <= 1);
            }
            let d = layer.weights.density();
            assert!((0.2..0.85).contains(&d), "density {d}");
        }
    }

    #[test]
    fn ternary_network_still_classifies_like_float() {
        let net = Network::synthetic(spec(), &SyntheticModelConfig::default());
        let calib: Vec<Tensor<f32>> = (0..3).map(input).collect();
        let q = net.quantize_ternary(&calib);
        // Ternary is lossier than 8-bit; demand majority agreement only.
        let mut agree = 0;
        let n = 10;
        for i in 0..n {
            let x = input(50 + i);
            let f = net.forward_f32(&x);
            let t = q.forward_dequant(&x);
            if crate::fc::argmax(&f) == crate::fc::argmax(&t) {
                agree += 1;
            }
        }
        assert!(agree * 2 >= n, "agreement {agree}/{n}");
    }

    #[test]
    fn ternary_is_sparser_than_eight_bit() {
        let net = Network::synthetic(spec(), &SyntheticModelConfig::default());
        let q8 = net.quantize(&[input(0)]);
        let qt = net.quantize_ternary(&[input(0)]);
        for (a, b) in q8.conv.iter().zip(&qt.conv) {
            assert!(b.weights.density() < a.weights.density());
        }
    }
}
