//! Fidelity evaluation: the reproducible substitute for the paper's
//! ImageNet accuracy comparison.
//!
//! The paper reports the pruned reduced-precision VGG-16 "within 2% of the
//! original unpruned floating point" on ImageNet validation. ImageNet and
//! the trained model are unavailable here, so we report the analogous,
//! reproducible quantities: top-1 **agreement** between the float model and
//! its quantized/pruned derivative on synthetic inputs, and logit SQNR.

use crate::fc::argmax;
use crate::model::{Network, QuantizedNetwork};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use zskip_quant::quantize::sqnr_db;
use zskip_tensor::{Shape, Tensor};

/// Generates `n` seeded synthetic input images of the given shape with
/// values in `[-1, 1]` (mean-subtracted-image stand-ins).
pub fn synthetic_inputs(seed: u64, n: usize, shape: Shape) -> Vec<Tensor<f32>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| Tensor::from_fn(shape.c, shape.h, shape.w, |_, _, _| rng.gen_range(-1.0..1.0)))
        .collect()
}

/// Result of a float-vs-quantized fidelity comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityReport {
    /// Fraction of inputs whose top-1 class matches the float model.
    pub top1_agreement: f64,
    /// Mean logit signal-to-quantization-noise ratio in dB.
    pub mean_logit_sqnr_db: f64,
    /// Number of inputs evaluated.
    pub inputs: usize,
}

impl std::fmt::Display for FidelityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "top-1 agreement {:.1}% over {} inputs, mean logit SQNR {:.1} dB",
            self.top1_agreement * 100.0,
            self.inputs,
            self.mean_logit_sqnr_db
        )
    }
}

/// Compares a float network against a quantized network on the given
/// inputs.
///
/// # Panics
/// Panics if `inputs` is empty.
pub fn compare(float_net: &Network, quant_net: &QuantizedNetwork, inputs: &[Tensor<f32>]) -> FidelityReport {
    assert!(!inputs.is_empty(), "fidelity comparison needs at least one input");
    // The quantized path carries logits through a trailing softmax (it is
    // monotone); apply softmax to the dequantized logits so both sides are
    // compared in the same domain.
    let ends_in_softmax = matches!(float_net.spec.layers.last(), Some(crate::layer::LayerSpec::Softmax));
    let mut agree = 0usize;
    let mut sqnr_sum = 0f64;
    // One arena + logit buffer for the whole sweep: after the first input
    // the quantized side of the comparison stops allocating.
    let mut scratch = crate::scratch::Scratch::new();
    let mut logits = Vec::new();
    for input in inputs {
        let f = float_net.forward_f32(input);
        quant_net.forward_dequant_into(input, &mut scratch, &mut logits);
        let softmaxed;
        let q: &[f32] = if ends_in_softmax {
            softmaxed = crate::fc::softmax(&logits);
            &softmaxed
        } else {
            &logits
        };
        if argmax(&f) == argmax(q) {
            agree += 1;
        }
        let n = f.len().min(q.len());
        sqnr_sum += sqnr_db(&f[..n], &q[..n]).min(96.0);
    }
    FidelityReport {
        top1_agreement: agree as f64 / inputs.len() as f64,
        mean_logit_sqnr_db: sqnr_sum / inputs.len() as f64,
        inputs: inputs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{conv3x3, maxpool2x2, LayerSpec, NetworkSpec};
    use crate::model::SyntheticModelConfig;
    use zskip_quant::DensityProfile;

    fn spec() -> NetworkSpec {
        NetworkSpec {
            name: "t".into(),
            input: Shape::new(3, 8, 8),
            layers: vec![
                conv3x3("c1", 3, 8),
                maxpool2x2("p1"),
                LayerSpec::Fc { name: "fc".into(), in_features: 8 * 4 * 4, out_features: 5, relu: false },
            ],
        }
    }

    #[test]
    fn synthetic_inputs_are_seeded_and_bounded() {
        let a = synthetic_inputs(1, 3, Shape::new(2, 4, 4));
        let b = synthetic_inputs(1, 3, Shape::new(2, 4, 4));
        let c = synthetic_inputs(2, 3, Shape::new(2, 4, 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
        for t in &a {
            assert!(t.as_slice().iter().all(|v| (-1.0..1.0).contains(v)));
        }
    }

    #[test]
    fn quantized_model_agrees_with_itself_via_float() {
        let net = Network::synthetic(spec(), &SyntheticModelConfig::default());
        let calib = synthetic_inputs(9, 4, Shape::new(3, 8, 8));
        let qnet = net.quantize(&calib);
        let inputs = synthetic_inputs(10, 12, Shape::new(3, 8, 8));
        let report = compare(&net, &qnet, &inputs);
        assert!(report.top1_agreement >= 0.75, "{report}");
        assert!(report.mean_logit_sqnr_db > 10.0, "{report}");
    }

    #[test]
    fn pruned_model_agreement_degrades_gracefully() {
        let dense = Network::synthetic(spec(), &SyntheticModelConfig::default());
        let pruned = Network::synthetic(
            spec(),
            &SyntheticModelConfig { density: DensityProfile::uniform(1, 0.4), ..Default::default() },
        );
        let calib = synthetic_inputs(9, 4, Shape::new(3, 8, 8));
        let q_dense = dense.quantize(&calib);
        let q_pruned = pruned.quantize(&calib);
        let inputs = synthetic_inputs(11, 8, Shape::new(3, 8, 8));
        let dense_rep = compare(&dense, &q_dense, &inputs);
        let pruned_rep = compare(&pruned, &q_pruned, &inputs);
        // Each model agrees with its own quantization well.
        assert!(dense_rep.top1_agreement >= 0.5);
        assert!(pruned_rep.top1_agreement >= 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn compare_rejects_empty() {
        let net = Network::synthetic(spec(), &SyntheticModelConfig::default());
        let qnet = net.quantize(&[]);
        let _ = compare(&net, &qnet, &[]);
    }

    #[test]
    fn report_display_is_informative() {
        let r = FidelityReport { top1_agreement: 0.985, mean_logit_sqnr_db: 33.2, inputs: 200 };
        let s = r.to_string();
        assert!(s.contains("98.5%"));
        assert!(s.contains("200"));
        assert!(s.contains("33.2"));
    }
}
