//! Reusable buffer arena for allocation-free streaming inference.
//!
//! The accelerator owns a fixed set of on-chip buffers and streams every
//! image through them; the software golden model historically allocated
//! fresh tensors per layer per image. A [`Scratch`] holds the software
//! analogue of that fixed buffer set — a ping-pong pair of activation
//! tensors, one `i64` accumulator plane, and a ping-pong pair of FC
//! vectors — and every `_into` operator reshapes them in place instead of
//! allocating.
//!
//! # Lifetime rules
//!
//! * A `Scratch` belongs to one thread; the batch engine keeps one per
//!   worker. It may be shared across *networks* — buffers only ever grow.
//! * Buffers grow lazily: the **first** image through a given network
//!   warms the arena (and the per-layer weight caches); every subsequent
//!   image runs with **zero heap allocations**, asserted by a
//!   counting-allocator test (`tests/alloc_free.rs`).
//! * The slice returned by
//!   [`QuantizedNetwork::forward_quant_scratch`](crate::model::QuantizedNetwork::forward_quant_scratch)
//!   borrows the arena — copy it out before running the next image.
//!
//! See `docs/KERNELS.md` for how this composes with the SIMD kernel tiers.

use crate::par::ConvPool;
use crate::simd::{self, KernelTier};
use std::sync::Arc;
use zskip_quant::Sm8;
use zskip_tensor::Tensor;

/// Reusable buffers for the quantized forward pass, plus the kernel tier
/// the pass should run with.
#[derive(Debug, Clone)]
pub struct Scratch {
    /// Ping-pong activation tensors (conv/pool layers alternate them).
    pub(crate) act: [Tensor<Sm8>; 2],
    /// Plan-addressed activation slots for the quantized forward pass.
    /// A linear chain uses two (the classic ping-pong degenerates to the
    /// plan's two-slot assignment); a residual block briefly needs a
    /// third to hold the skip-branch activation alive across the branch
    /// body. Grown by [`Scratch::ensure_slots`].
    pub(crate) slots: Vec<Tensor<Sm8>>,
    /// Per-output-channel `i64` conv accumulator plane.
    pub(crate) acc: Vec<i64>,
    /// Ping-pong FC activation vectors.
    pub(crate) flat: [Vec<Sm8>; 2],
    tier: KernelTier,
    pub(crate) grow_events: u64,
    /// Intra-image worker pool. `None` (the default) is the
    /// single-threaded path; [`Scratch::set_threads`] attaches a pool so
    /// conv layers split their output channels across cores. Cloned
    /// arenas share the pool handle (`ConvPool::run` serializes
    /// concurrent jobs), but an arena still belongs to one thread.
    pub(crate) pool: Option<Arc<ConvPool>>,
}

impl Scratch {
    /// An empty arena using the process-wide dispatched kernel tier
    /// ([`simd::dispatch`]); buffers grow on first use.
    pub fn new() -> Self {
        Self::with_tier(simd::dispatch())
    }

    /// An empty arena pinned to an explicit kernel tier (benchmarks and
    /// tier-equivalence tests).
    pub fn with_tier(tier: KernelTier) -> Self {
        Scratch {
            act: [Tensor::zeros(1, 1, 1), Tensor::zeros(1, 1, 1)],
            slots: Vec::new(),
            acc: Vec::new(),
            flat: [Vec::new(), Vec::new()],
            tier,
            grow_events: 0,
            pool: None,
        }
    }

    /// Attaches (or detaches) the intra-image worker pool. `threads <= 1`
    /// drops the pool (single-threaded conv); larger values spawn
    /// `threads - 1` persistent workers. A no-op when the arena already
    /// has the requested width, so the driver can call this per image —
    /// pool construction is a warmup cost, like the first buffer growth.
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.max(1);
        if self.threads() == threads {
            return;
        }
        self.pool = if threads > 1 { Some(Arc::new(ConvPool::new(threads))) } else { None };
    }

    /// The intra-image worker count (1 = no pool, the default).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.threads())
    }

    /// The attached worker pool, if any.
    pub fn pool(&self) -> Option<&ConvPool> {
        self.pool.as_deref()
    }

    /// The kernel tier forward passes through this arena use.
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// Re-pins the arena's kernel tier (clamped to what the host
    /// supports). Buffers are tier-agnostic, so this is safe on a warmed
    /// arena; the driver calls it per image so a session's configured
    /// tier wins over whatever the arena was created with.
    pub fn set_tier(&mut self, tier: KernelTier) {
        self.tier = if tier.is_supported() { tier } else { KernelTier::best_supported() };
    }

    /// Total bytes currently reserved by the arena's buffers.
    pub fn capacity_bytes(&self) -> usize {
        self.act.iter().map(|t| t.capacity()).sum::<usize>()
            + self.slots.iter().map(|t| t.capacity()).sum::<usize>()
            + self.acc.capacity() * std::mem::size_of::<i64>()
            + self.flat.iter().map(|v| v.capacity()).sum::<usize>()
    }

    /// Ensures the arena holds at least `n` activation slots (an
    /// [`crate::plan::ExecPlan`]'s concurrent-slot count). Slots only
    /// ever accumulate, so an arena shared across networks keeps the
    /// widest plan's pool.
    pub fn ensure_slots(&mut self, n: usize) {
        while self.slots.len() < n {
            self.slots.push(Tensor::zeros(1, 1, 1));
        }
    }

    /// Number of forward passes that grew at least one buffer. Stays at 1
    /// for a warmed arena streaming same-shaped images — surfaced by
    /// `zskip analyze` as the steady-state allocation indicator.
    pub fn grow_events(&self) -> u64 {
        self.grow_events
    }

    /// Splits out the buffers the accelerator driver's **host-side** path
    /// reuses across images: the input-quantization tensor and the FC
    /// ping-pong pair. (The driver's conv layers run on the simulated SoC
    /// or, on the CPU backend, through [`Scratch::pass_buffers`].)
    pub fn host_buffers(&mut self) -> (&mut Tensor<Sm8>, &mut Vec<Sm8>, &mut Vec<Sm8>) {
        let (a, b) = self.flat.split_at_mut(1);
        (&mut self.act[0], &mut a[0], &mut b[0])
    }

    /// Splits out the buffers the accelerator driver's **CPU backend**
    /// uses for one pass: a source/destination activation-tensor pair,
    /// the `i64` accumulator plane, and the kernel tier to compute with.
    /// The pair aliases the forward-pass ping-pong tensors; a pass using
    /// it must not interleave with `forward_quant_scratch` on the same
    /// arena (they never do — an arena belongs to one session).
    pub fn pass_buffers(&mut self) -> (&mut Tensor<Sm8>, &mut Tensor<Sm8>, &mut Vec<i64>, KernelTier) {
        let (a, b) = self.act.split_at_mut(1);
        (&mut a[0], &mut b[0], &mut self.acc, self.tier)
    }

    /// [`Scratch::pass_buffers`] plus the attached worker pool, for conv
    /// passes that split output channels across it.
    #[allow(clippy::type_complexity)]
    pub fn pass_buffers_pool(
        &mut self,
    ) -> (&mut Tensor<Sm8>, &mut Tensor<Sm8>, &mut Vec<i64>, KernelTier, Option<&ConvPool>) {
        let (a, b) = self.act.split_at_mut(1);
        (&mut a[0], &mut b[0], &mut self.acc, self.tier, self.pool.as_deref())
    }
}

impl Default for Scratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Borrows slot `src` immutably and slot `dst` mutably. The execution
/// plan guarantees a step's output slot never aliases a live input slot.
///
/// # Panics
/// Panics if `src == dst`.
pub(crate) fn slot_pair<T>(v: &mut [T], src: usize, dst: usize) -> (&T, &mut T) {
    assert_ne!(src, dst, "a step never writes over the slot it reads");
    if src < dst {
        let (lo, hi) = v.split_at_mut(dst);
        (&lo[src], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(src);
        (&hi[0], &mut lo[dst])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_arena_is_empty_and_uses_dispatch_tier() {
        let s = Scratch::new();
        assert_eq!(s.tier(), simd::dispatch());
        assert_eq!(s.grow_events(), 0);
        // The 1x1x1 placeholder tensors may reserve a few bytes; nothing else.
        assert!(s.capacity_bytes() <= 16);
    }

    #[test]
    fn with_tier_pins_the_tier() {
        let mut s = Scratch::with_tier(KernelTier::Scalar);
        assert_eq!(s.tier(), KernelTier::Scalar);
        // Re-pinning an existing arena works and clamps to host support.
        let best = KernelTier::best_supported();
        s.set_tier(best);
        assert_eq!(s.tier(), best);
        s.set_tier(KernelTier::Avx512);
        assert!(s.tier().is_supported());
    }

    #[test]
    fn set_threads_attaches_and_detaches_the_pool() {
        let mut s = Scratch::new();
        assert_eq!(s.threads(), 1);
        assert!(s.pool().is_none());
        s.set_threads(3);
        assert_eq!(s.threads(), 3);
        assert!(s.pool().is_some());
        // Same width: no-op, pool identity preserved (no respawn).
        let before = s.pool().map(|p| p as *const _);
        s.set_threads(3);
        assert_eq!(s.pool().map(|p| p as *const _), before);
        s.set_threads(1);
        assert_eq!(s.threads(), 1);
        assert!(s.pool().is_none());
        s.set_threads(0); // clamps to 1
        assert_eq!(s.threads(), 1);
    }
}
