//! Software reference CNN: float and integer-exact quantized inference.
//!
//! The paper's design methodology rests on the software implementation
//! behaving exactly like the synthesized hardware ("The software behavior
//! closely resembles the synthesized hardware, easing design and
//! debugging"). This crate is that software side:
//!
//! * [`layer`] — layer specifications and shape inference,
//! * [`conv`], [`pool`], [`fc`] — float reference operators *and*
//!   integer-exact quantized operators (the golden model the simulated
//!   accelerator must match bit-for-bit),
//! * [`eltwise`] — host-side elementwise operators: residual add, global
//!   average pooling and batch-norm folding, float and quantized,
//! * [`model`] — networks, synthetic seeded weight generation, pruning and
//!   quantization pipelines (the stand-in for the paper's Caffe flow),
//! * [`plan`] — DAG execution planning: topological walk order, activation
//!   liveness, and slot assignment shared by the oracle and the driver,
//! * [`vgg16`] — the VGG-16 network used as the paper's test vehicle,
//! * [`resnet`] — residual networks (skip connections, 1×1 convs,
//!   batch-norm folding, global average pooling),
//! * [`spec_io`] — the JSON network-spec loader so new topologies need no
//!   Rust code,
//! * [`eval`] — fidelity metrics substituting for the data-gated ImageNet
//!   accuracy comparison (top-1 agreement, SQNR),
//! * [`simd`] — SIMD kernel tiers (SSE2/AVX2/AVX-512) for the quantized
//!   inner loops with runtime dispatch, scalar kept as the bit-exact
//!   oracle,
//! * [`par`] — the intra-image worker pool splitting one image's conv
//!   layers across cores by output-channel panels, bit-exact at any
//!   worker count,
//! * [`scratch`] — reusable buffer arena making the steady-state forward
//!   pass allocation-free.

pub mod conv;
pub mod eltwise;
pub mod eval;
pub mod fc;
pub mod gemm;
pub mod layer;
pub mod model;
pub mod par;
pub mod plan;
pub mod pool;
pub mod resnet;
pub mod scratch;
pub mod simd;
pub mod spec_io;
pub mod vgg16;

pub use eltwise::BnWeights;
pub use layer::{LayerRef, LayerSpec, NetworkSpec};
pub use model::{Network, QuantizedConvLayer, QuantizedNetwork, SyntheticModelConfig};
pub use par::ConvPool;
pub use plan::{ExecPlan, PlanStep};
pub use resnet::{resnet18_spec, resnet34_spec};
pub use scratch::Scratch;
pub use simd::{dispatch, select_tier, KernelTier, KERNEL_ENV};
pub use spec_io::SpecError;
pub use vgg16::{vgg16_spec, VGG16_CONV_NAMES};
