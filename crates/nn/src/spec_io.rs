//! JSON network-spec loader and writer: new topologies without Rust code.
//!
//! The text format mirrors [`NetworkSpec`] directly — a name, an input
//! shape, and a layer array in execution order — except that
//! `ref`/`add` layers reference earlier layers **by name** (or
//! `"input"`), which the loader resolves to absolute indices. See
//! `docs/NETWORKS.md` for the full schema; `specs/resnet18.json` and
//! `specs/resnet34.json` are the in-repo exemplars, pinned byte-identical
//! to the [`crate::resnet`] builders by test.
//!
//! Parsing is strict: unknown fields, unknown `op` values, duplicate
//! layer names, and out-of-range numbers are rejected with a
//! [`SpecError`] naming the offending layer, and the loaded spec must
//! pass full DAG validation ([`NetworkSpec::shapes`]) before it is
//! returned. The CLI surfaces these as `error[spec.invalid]`.

use crate::layer::{LayerRef, LayerSpec, NetworkSpec};
use std::fmt;
use zskip_json::Json;
use zskip_tensor::Shape;

/// Error: a network-spec document could not be loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// What was wrong with the document.
    pub message: String,
}

impl SpecError {
    fn new(message: impl Into<String>) -> Self {
        SpecError { message: message.into() }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SpecError {}

/// One parsed layer object: checks field presence/types and tracks which
/// keys were consumed so leftovers can be rejected.
struct LayerObj<'a> {
    index: usize,
    op: &'a str,
    name: String,
    fields: &'a [(String, Json)],
    used: Vec<&'a str>,
}

impl<'a> LayerObj<'a> {
    fn err(&self, message: impl fmt::Display) -> SpecError {
        SpecError::new(format!("layer {} ('{}'): {}", self.index, self.name, message))
    }

    fn get(&mut self, key: &'a str) -> Option<&'a Json> {
        self.used.push(key);
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn usize_field(&mut self, key: &'a str) -> Result<usize, SpecError> {
        let v = self.get(key).ok_or_else(|| self.err(format!("missing field '{key}'")))?;
        v.as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| self.err(format!("field '{key}' must be a non-negative integer")))
    }

    fn bool_field(&mut self, key: &'a str) -> Result<bool, SpecError> {
        let v = self.get(key).ok_or_else(|| self.err(format!("missing field '{key}'")))?;
        v.as_bool().ok_or_else(|| self.err(format!("field '{key}' must be a boolean")))
    }

    /// Resolves the `from` field against the names of preceding layers.
    fn resolve_from(&mut self, earlier: &[String]) -> Result<LayerRef, SpecError> {
        let v = self.get("from").ok_or_else(|| self.err("missing field 'from'"))?;
        let target = v.as_str().ok_or_else(|| {
            self.err("field 'from' must be a layer name or \"input\"")
        })?;
        if target == "input" {
            return Ok(LayerRef::Input);
        }
        match earlier.iter().position(|n| n == target) {
            Some(j) => Ok(LayerRef::Layer(j)),
            None => Err(self.err(format!("'from' target '{target}' is not an earlier layer"))),
        }
    }

    fn reject_unknown(&self) -> Result<(), SpecError> {
        for (k, _) in self.fields {
            if !self.used.contains(&k.as_str()) {
                return Err(self.err(format!("unknown field '{k}'")));
            }
        }
        Ok(())
    }
}

impl NetworkSpec {
    /// Parses a network spec from its JSON text form and fully validates
    /// it (strict parsing plus [`NetworkSpec::shapes`] DAG validation).
    ///
    /// # Errors
    /// [`SpecError`] describing the first problem found.
    pub fn from_json(text: &str) -> Result<NetworkSpec, SpecError> {
        let doc = Json::parse(text).map_err(|e| SpecError::new(e.to_string()))?;
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| SpecError::new("missing string field 'name'"))?
            .to_string();
        let input = doc.get("input").ok_or_else(|| SpecError::new("missing field 'input'"))?;
        let dim = |key: &str| {
            input
                .get(key)
                .and_then(Json::as_u64)
                .filter(|&n| n > 0)
                .map(|n| n as usize)
                .ok_or_else(|| SpecError::new(format!("'input.{key}' must be a positive integer")))
        };
        let input = Shape::new(dim("c")?, dim("h")?, dim("w")?);
        let layer_objs = doc
            .get("layers")
            .and_then(Json::as_arr)
            .ok_or_else(|| SpecError::new("missing array field 'layers'"))?;

        let mut layers = Vec::with_capacity(layer_objs.len());
        let mut names: Vec<String> = Vec::with_capacity(layer_objs.len());
        for (index, obj) in layer_objs.iter().enumerate() {
            let fields = match obj {
                Json::Obj(fields) => fields,
                _ => return Err(SpecError::new(format!("layer {index}: not an object"))),
            };
            let op = obj
                .get("op")
                .and_then(Json::as_str)
                .ok_or_else(|| SpecError::new(format!("layer {index}: missing string field 'op'")))?;
            let name = match obj.get("name").and_then(Json::as_str) {
                Some(n) => n.to_string(),
                None if op == "softmax" => "softmax".to_string(),
                None => {
                    return Err(SpecError::new(format!("layer {index}: missing string field 'name'")))
                }
            };
            let mut l = LayerObj { index, op, name, fields, used: vec!["op", "name"] };
            if names.contains(&l.name) {
                return Err(l.err("duplicate layer name"));
            }
            let layer = match l.op {
                "conv" => LayerSpec::Conv {
                    name: l.name.clone(),
                    in_c: l.usize_field("in_c")?,
                    out_c: l.usize_field("out_c")?,
                    k: l.usize_field("k")?,
                    stride: l.usize_field("stride")?,
                    pad: l.usize_field("pad")?,
                    relu: l.bool_field("relu")?,
                },
                "maxpool" => LayerSpec::MaxPool {
                    name: l.name.clone(),
                    k: l.usize_field("k")?,
                    stride: l.usize_field("stride")?,
                },
                "fc" => LayerSpec::Fc {
                    name: l.name.clone(),
                    in_features: l.usize_field("in_features")?,
                    out_features: l.usize_field("out_features")?,
                    relu: l.bool_field("relu")?,
                },
                "softmax" => LayerSpec::Softmax,
                "ref" => LayerSpec::Ref { name: l.name.clone(), from: l.resolve_from(&names)? },
                "add" => LayerSpec::Add {
                    name: l.name.clone(),
                    from: l.resolve_from(&names)?,
                    relu: l.bool_field("relu")?,
                },
                "gap" => LayerSpec::GlobalAvgPool { name: l.name.clone() },
                "batchnorm" => {
                    LayerSpec::BatchNorm { name: l.name.clone(), relu: l.bool_field("relu")? }
                }
                other => return Err(l.err(format!("unknown op '{other}'"))),
            };
            l.reject_unknown()?;
            names.push(l.name.clone());
            layers.push(layer);
        }
        for (k, _) in match &doc {
            Json::Obj(fields) => fields.as_slice(),
            _ => return Err(SpecError::new("document must be a JSON object")),
        } {
            if !matches!(k.as_str(), "name" | "input" | "layers") {
                return Err(SpecError::new(format!("unknown top-level field '{k}'")));
            }
        }
        let spec = NetworkSpec { name, input, layers };
        spec.shapes().map_err(|e| SpecError::new(e.to_string()))?;
        Ok(spec)
    }

    /// Renders this spec in the JSON text form [`NetworkSpec::from_json`]
    /// parses (references are emitted by layer name). Round-trips exactly
    /// for any spec whose layer names are unique — which `from_json`
    /// enforces on the way back in.
    pub fn to_json(&self) -> String {
        let num = |n: usize| Json::Num(n as f64);
        let from_str = |from: &LayerRef| {
            Json::Str(match from {
                LayerRef::Input => "input".to_string(),
                LayerRef::Layer(j) => self.layers[*j].name().to_string(),
            })
        };
        let layers: Vec<Json> = self
            .layers
            .iter()
            .map(|l| {
                let mut fields: Vec<(&str, Json)> = Vec::new();
                match l {
                    LayerSpec::Conv { name, in_c, out_c, k, stride, pad, relu } => {
                        fields.push(("op", Json::Str("conv".into())));
                        fields.push(("name", Json::Str(name.clone())));
                        fields.push(("in_c", num(*in_c)));
                        fields.push(("out_c", num(*out_c)));
                        fields.push(("k", num(*k)));
                        fields.push(("stride", num(*stride)));
                        fields.push(("pad", num(*pad)));
                        fields.push(("relu", Json::Bool(*relu)));
                    }
                    LayerSpec::MaxPool { name, k, stride } => {
                        fields.push(("op", Json::Str("maxpool".into())));
                        fields.push(("name", Json::Str(name.clone())));
                        fields.push(("k", num(*k)));
                        fields.push(("stride", num(*stride)));
                    }
                    LayerSpec::Fc { name, in_features, out_features, relu } => {
                        fields.push(("op", Json::Str("fc".into())));
                        fields.push(("name", Json::Str(name.clone())));
                        fields.push(("in_features", num(*in_features)));
                        fields.push(("out_features", num(*out_features)));
                        fields.push(("relu", Json::Bool(*relu)));
                    }
                    LayerSpec::Softmax => {
                        fields.push(("op", Json::Str("softmax".into())));
                    }
                    LayerSpec::Ref { name, from } => {
                        fields.push(("op", Json::Str("ref".into())));
                        fields.push(("name", Json::Str(name.clone())));
                        fields.push(("from", from_str(from)));
                    }
                    LayerSpec::Add { name, from, relu } => {
                        fields.push(("op", Json::Str("add".into())));
                        fields.push(("name", Json::Str(name.clone())));
                        fields.push(("from", from_str(from)));
                        fields.push(("relu", Json::Bool(*relu)));
                    }
                    LayerSpec::GlobalAvgPool { name } => {
                        fields.push(("op", Json::Str("gap".into())));
                        fields.push(("name", Json::Str(name.clone())));
                    }
                    LayerSpec::BatchNorm { name, relu } => {
                        fields.push(("op", Json::Str("batchnorm".into())));
                        fields.push(("name", Json::Str(name.clone())));
                        fields.push(("relu", Json::Bool(*relu)));
                    }
                }
                Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
            })
            .collect();
        let doc = Json::obj([
            ("name", Json::Str(self.name.clone())),
            (
                "input",
                Json::obj([
                    ("c", num(self.input.c)),
                    ("h", num(self.input.h)),
                    ("w", num(self.input.w)),
                ]),
            ),
            ("layers", Json::Arr(layers)),
        ]);
        let mut out = doc.to_string_pretty();
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::{resnet18_spec, resnet34_spec};
    use crate::vgg16::vgg16_spec;

    #[test]
    fn builders_round_trip_through_json() {
        for spec in [vgg16_spec(), resnet18_spec(), resnet34_spec()] {
            let text = spec.to_json();
            let back = NetworkSpec::from_json(&text).expect("round-trip parse");
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn minimal_linear_spec_parses() {
        let spec = NetworkSpec::from_json(
            r#"{
              "name": "tiny",
              "input": {"c": 3, "h": 8, "w": 8},
              "layers": [
                {"op": "conv", "name": "c1", "in_c": 3, "out_c": 4, "k": 3, "stride": 1, "pad": 1, "relu": true},
                {"op": "maxpool", "name": "p1", "k": 2, "stride": 2},
                {"op": "fc", "name": "fc", "in_features": 64, "out_features": 10, "relu": false},
                {"op": "softmax"}
              ]
            }"#,
        )
        .expect("valid spec");
        assert_eq!(spec.layers.len(), 4);
        assert_eq!(spec.input, Shape::new(3, 8, 8));
    }

    #[test]
    fn residual_references_resolve_by_name() {
        let spec = NetworkSpec::from_json(
            r#"{
              "name": "res",
              "input": {"c": 2, "h": 8, "w": 8},
              "layers": [
                {"op": "conv", "name": "c1", "in_c": 2, "out_c": 2, "k": 3, "stride": 1, "pad": 1, "relu": true},
                {"op": "add", "name": "join", "from": "input", "relu": true},
                {"op": "ref", "name": "skip", "from": "c1"},
                {"op": "add", "name": "join2", "from": "join", "relu": false}
              ]
            }"#,
        )
        .expect("valid spec");
        assert_eq!(spec.layers[1].explicit_input(), Some(LayerRef::Input));
        assert_eq!(spec.layers[2].explicit_input(), Some(LayerRef::Layer(0)));
        assert_eq!(spec.layers[3].explicit_input(), Some(LayerRef::Layer(1)));
    }

    fn expect_err(text: &str, needle: &str) {
        let err = NetworkSpec::from_json(text).expect_err("must be rejected");
        assert!(err.message.contains(needle), "'{}' not in '{}'", needle, err.message);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        expect_err("{", "invalid JSON");
        expect_err(r#"{"name": "x"}"#, "'input'");
        expect_err(r#"{"name": "x", "input": {"c": 0, "h": 8, "w": 8}, "layers": []}"#, "input.c");
        expect_err(
            r#"{"name": "x", "input": {"c": 1, "h": 8, "w": 8}, "layers": [{"op": "warp", "name": "w"}]}"#,
            "unknown op",
        );
        expect_err(
            r#"{"name": "x", "input": {"c": 1, "h": 8, "w": 8}, "layers": [{"op": "gap", "name": "g", "mode": 1}]}"#,
            "unknown field 'mode'",
        );
        expect_err(
            r#"{"name": "x", "input": {"c": 1, "h": 8, "w": 8}, "layers": [
                {"op": "gap", "name": "g"}, {"op": "gap", "name": "g"}]}"#,
            "duplicate layer name",
        );
        expect_err(
            r#"{"name": "x", "input": {"c": 1, "h": 8, "w": 8}, "layers": [
                {"op": "add", "name": "a", "from": "nope", "relu": false}]}"#,
            "not an earlier layer",
        );
        expect_err(
            r#"{"name": "x", "input": {"c": 1, "h": 8, "w": 8}, "layers": [], "extra": 1}"#,
            "unknown top-level field",
        );
        // Structurally well-formed but shape-invalid: DAG validation runs.
        expect_err(
            r#"{"name": "x", "input": {"c": 1, "h": 8, "w": 8}, "layers": [
                {"op": "maxpool", "name": "p", "k": 2, "stride": 2},
                {"op": "add", "name": "a", "from": "input", "relu": false}]}"#,
            "operand shapes differ",
        );
    }
}
