//! Residual networks (He et al. 2015), adapted to the accelerator's
//! constraints: the stripe pipeline runs stride-1 convolutions with
//! kernels up to the tile edge, so downsampling uses 2x2 max-pools
//! instead of stride-2 convolutions (both halve the spatial extent; the
//! pool keeps the stronger activation). Every convolution is ReLU-free
//! and followed by a [`LayerSpec::BatchNorm`] that quantization folds
//! into the conv weights, and projection shortcuts use the 1x1-conv fast
//! path (no im2col). Input is a 3x32x32 image (CIFAR-style), classified
//! into 10 classes through global average pooling and one FC layer.
//!
//! In linear spec order a residual block reads:
//!
//! * identity block: `conv, bn, conv, bn, add(from: block input)`;
//! * downsampling block: the main path first (`maxpool, conv, bn, conv,
//!   bn`), then the projection shortcut re-opened with a
//!   [`LayerSpec::Ref`] on the block input (`ref, maxpool, conv1x1,
//!   bn`), and an `add` joining the two (`from:` the main path's end).

use crate::layer::{conv1x1, LayerRef, LayerSpec, NetworkSpec};
use zskip_tensor::Shape;

/// Stage widths (channels); spatial extent halves at each stage boundary.
const WIDTHS: [usize; 4] = [16, 32, 64, 128];

/// Output classes.
const CLASSES: usize = 10;

/// ResNet-18 (block pattern `[2, 2, 2, 2]`).
pub fn resnet18_spec() -> NetworkSpec {
    resnet_spec("resnet18", [2, 2, 2, 2])
}

/// ResNet-34 (block pattern `[3, 4, 6, 3]`).
pub fn resnet34_spec() -> NetworkSpec {
    resnet_spec("resnet34", [3, 4, 6, 3])
}

fn conv_bn(layers: &mut Vec<LayerSpec>, name: &str, in_c: usize, out_c: usize, relu: bool) {
    layers.push(LayerSpec::Conv {
        name: name.to_string(),
        in_c,
        out_c,
        k: 3,
        stride: 1,
        pad: 1,
        relu: false,
    });
    layers.push(LayerSpec::BatchNorm { name: format!("{name}_bn"), relu });
}

/// `conv, bn, conv, bn, add(from: block input)` at constant width.
fn identity_block(layers: &mut Vec<LayerSpec>, name: &str, w: usize) {
    let block_in = layers.len() - 1;
    conv_bn(layers, &format!("{name}_c1"), w, w, true);
    conv_bn(layers, &format!("{name}_c2"), w, w, false);
    layers.push(LayerSpec::Add {
        name: format!("{name}_add"),
        from: LayerRef::Layer(block_in),
        relu: true,
    });
}

/// Main path (`maxpool, conv, bn, conv, bn`), projection shortcut
/// (`ref, maxpool, conv1x1, bn`), then the join.
fn downsample_block(layers: &mut Vec<LayerSpec>, name: &str, w_in: usize, w_out: usize) {
    let block_in = layers.len() - 1;
    layers.push(LayerSpec::MaxPool { name: format!("{name}_pool"), k: 2, stride: 2 });
    conv_bn(layers, &format!("{name}_c1"), w_in, w_out, true);
    conv_bn(layers, &format!("{name}_c2"), w_out, w_out, false);
    let main_end = layers.len() - 1;
    layers.push(LayerSpec::Ref { name: format!("{name}_skip"), from: LayerRef::Layer(block_in) });
    layers.push(LayerSpec::MaxPool { name: format!("{name}_skip_pool"), k: 2, stride: 2 });
    layers.push(conv1x1(&format!("{name}_proj"), w_in, w_out));
    layers.push(LayerSpec::BatchNorm { name: format!("{name}_proj_bn"), relu: false });
    layers.push(LayerSpec::Add {
        name: format!("{name}_add"),
        from: LayerRef::Layer(main_end),
        relu: true,
    });
}

fn resnet_spec(name: &str, blocks: [usize; 4]) -> NetworkSpec {
    let mut layers = Vec::new();
    conv_bn(&mut layers, "stem", 3, WIDTHS[0], true);
    let mut w_in = WIDTHS[0];
    for (s, (&n, &w)) in blocks.iter().zip(&WIDTHS).enumerate() {
        for b in 0..n {
            let block = format!("b{}_{}", s + 1, b + 1);
            if s > 0 && b == 0 {
                downsample_block(&mut layers, &block, w_in, w);
            } else {
                identity_block(&mut layers, &block, w);
            }
        }
        w_in = w;
    }
    layers.push(LayerSpec::GlobalAvgPool { name: "gap".into() });
    layers.push(LayerSpec::Fc {
        name: "fc".into(),
        in_features: WIDTHS[3],
        out_features: CLASSES,
        relu: false,
    });
    layers.push(LayerSpec::Softmax);
    NetworkSpec { name: name.to_string(), input: Shape::new(3, 32, 32), layers }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_shape_chain_is_valid() {
        let spec = resnet18_spec();
        let shapes = spec.shapes().expect("resnet18 must be shape-valid");
        assert_eq!(shapes[0], Shape::new(3, 32, 32));
        // The stage-4 output feeding the head: 128 channels at 4x4.
        let n = spec.layers.len();
        assert_eq!(shapes[n - 3], Shape::new(128, 4, 4));
        assert_eq!(*shapes.last().unwrap(), Shape::new(CLASSES, 1, 1));
        assert!(spec.has_branches());
        assert!(spec.has_batchnorm());
    }

    #[test]
    fn resnet34_shape_chain_is_valid() {
        let spec = resnet34_spec();
        assert!(spec.shapes().is_ok());
        assert!(spec.total_macs() > resnet18_spec().total_macs());
    }

    #[test]
    fn conv_counts_match_the_architecture() {
        // 18-layer pattern: 1 stem + 2 convs x (2+2+2+2) blocks + 3
        // projection shortcuts; 34-layer: 1 + 2 x (3+4+6+3) + 3.
        assert_eq!(resnet18_spec().conv_layers().len(), 20);
        assert_eq!(resnet34_spec().conv_layers().len(), 36);
        for spec in [resnet18_spec(), resnet34_spec()] {
            let pointwise = spec
                .conv_layers()
                .iter()
                .filter(|(_, l, _)| matches!(l, LayerSpec::Conv { k: 1, .. }))
                .count();
            assert_eq!(pointwise, 3, "{}: one projection per downsampling stage", spec.name);
        }
    }

    #[test]
    fn mac_counts_are_pinned() {
        // Per-stage identity convs all cost w^2 * hw^2 * 9 = 2,359,296 MACs
        // (width doubles exactly as the spatial extent halves); the stem,
        // three downsampling blocks, and the FC head make up the rest.
        assert_eq!(resnet18_spec().total_macs(), 35_046_656);
        assert_eq!(resnet34_spec().total_macs(), 72_795_392);
    }

    #[test]
    fn every_conv_is_relu_free_and_batchnormed() {
        let spec = resnet34_spec();
        for (i, l, _) in spec.conv_layers() {
            assert!(matches!(l, LayerSpec::Conv { relu: false, .. }), "{}", l.name());
            assert!(
                matches!(spec.layers[i + 1], LayerSpec::BatchNorm { .. }),
                "{} must feed a batch-norm",
                l.name()
            );
        }
    }
}
