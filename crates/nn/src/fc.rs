//! Fully connected layers and softmax.
//!
//! In the paper's system, FC layers run as software on the embedded ARM
//! processor ("We do not focus on fully connected layers, since it is
//! essentially matrix multiplication"); here they run as host-side Rust,
//! with both a float and an integer-exact quantized path so the end-to-end
//! quantized pipeline stays self-consistent.

use zskip_quant::{Requantizer, Sm8};

/// Float fully connected weights: `w[out][in]` row-major plus bias.
#[derive(Debug, Clone, PartialEq)]
pub struct FcWeights {
    /// Output features.
    pub out_features: usize,
    /// Input features.
    pub in_features: usize,
    /// Weights, `out_features * in_features` entries.
    pub w: Vec<f32>,
    /// Per-output bias.
    pub bias: Vec<f32>,
}

impl FcWeights {
    /// All-zero weights of the given geometry.
    pub fn zeros(out_features: usize, in_features: usize) -> Self {
        FcWeights { out_features, in_features, w: vec![0.0; out_features * in_features], bias: vec![0.0; out_features] }
    }
}

/// Quantized fully connected weights (host-side integer path).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantFcWeights {
    /// Output features.
    pub out_features: usize,
    /// Input features.
    pub in_features: usize,
    /// Quantized weights.
    pub w: Vec<Sm8>,
    /// Bias in accumulator domain.
    pub bias_acc: Vec<i64>,
    /// Output requantizer.
    pub requant: Requantizer,
    /// Whether ReLU is fused.
    pub relu: bool,
}

/// Float FC forward: `out = W x + b`, optional ReLU.
pub fn fc_f32(input: &[f32], weights: &FcWeights, relu: bool) -> Vec<f32> {
    assert_eq!(input.len(), weights.in_features, "fc input length mismatch");
    (0..weights.out_features)
        .map(|o| {
            let row = &weights.w[o * weights.in_features..(o + 1) * weights.in_features];
            let acc = weights.bias[o] + row.iter().zip(input).map(|(w, x)| w * x).sum::<f32>();
            if relu {
                acc.max(0.0)
            } else {
                acc
            }
        })
        .collect()
}

/// Integer-exact quantized FC forward.
pub fn fc_quant(input: &[Sm8], weights: &QuantFcWeights) -> Vec<Sm8> {
    let mut out = Vec::new();
    fc_quant_into(input, weights, &mut out);
    out
}

/// [`fc_quant`] writing into a caller-owned vector, cleared and refilled in
/// place so its allocation is reused across calls (the scratch-arena
/// inference path).
pub fn fc_quant_into(input: &[Sm8], weights: &QuantFcWeights, out: &mut Vec<Sm8>) {
    assert_eq!(input.len(), weights.in_features, "fc input length mismatch");
    out.clear();
    out.extend((0..weights.out_features).map(|o| {
        let row = &weights.w[o * weights.in_features..(o + 1) * weights.in_features];
        let acc: i64 = weights.bias_acc[o]
            + row.iter().zip(input).map(|(w, x)| w.mul_exact(*x) as i64).sum::<i64>();
        if weights.relu {
            weights.requant.apply_relu(acc)
        } else {
            weights.requant.apply(acc)
        }
    }));
}

/// Numerically-stable softmax.
pub fn softmax(input: &[f32]) -> Vec<f32> {
    if input.is_empty() {
        return Vec::new();
    }
    let max = input.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let exps: Vec<f32> = input.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// Index of the largest element (top-1 class). Ties break to the lower
/// index. Returns `None` for empty input.
pub fn argmax<T: PartialOrd + Copy>(values: &[T]) -> Option<usize> {
    if values.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, v) in values.iter().enumerate().skip(1) {
        if *v > values[best] {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fc_computes_matvec_plus_bias() {
        let mut w = FcWeights::zeros(2, 3);
        w.w = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        w.bias = vec![0.5, -0.5];
        let out = fc_f32(&[1.0, 1.0, 1.0], &w, false);
        assert_eq!(out, vec![6.5, -0.5]);
        let out_relu = fc_f32(&[1.0, 1.0, 1.0], &w, true);
        assert_eq!(out_relu, vec![6.5, 0.0]);
    }

    #[test]
    fn quant_fc_is_integer_exact() {
        let qw = QuantFcWeights {
            out_features: 2,
            in_features: 2,
            w: [3, -2, 1, 4].iter().map(|&v| Sm8::from_i32_saturating(v)).collect(),
            bias_acc: vec![10, -10],
            requant: Requantizer::IDENTITY,
            relu: false,
        };
        let input: Vec<Sm8> = [5, 7].iter().map(|&v| Sm8::from_i32_saturating(v)).collect();
        let out = fc_quant(&input, &qw);
        assert_eq!(out[0].to_i32(), 10 + 3 * 5 - 2 * 7);
        assert_eq!(out[1].to_i32(), -10 + 5 + 28);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1001.0]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_empty_is_empty() {
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax::<f32>(&[]), None);
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        // Ties break low.
        assert_eq!(argmax(&[5, 5, 1]), Some(0));
    }
}
