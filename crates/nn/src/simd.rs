//! SIMD kernel tiers for the quantized (Sm8) datapath, with runtime
//! CPU-feature dispatch.
//!
//! The paper's datapath consumes one 16-value IFM tile per cycle per bank
//! and applies 4 weights per cycle in 8-bit sign+magnitude arithmetic
//! (§III-A). The software golden model historically emulated that one
//! scalar lane at a time; this module supplies the lane-parallel inner
//! loops — a 32-wide AVX-512 tier (two tile rows per iteration), a 16-wide
//! AVX2 tier (one whole tile row per iteration) and an 8-wide SSE2 tier —
//! behind a [`KernelTier`] selector, with the scalar loops kept as the
//! bit-exactness oracle and unconditional fallback.
//!
//! # Exactness
//!
//! Every kernel here is **bit-identical** to its scalar counterpart, not
//! merely close:
//!
//! * `Sm8` values decode branch-free to `i16` ([`Sm8::decode_i16`]); the
//!   SIMD decode is the same `(mag ^ neg) - neg` dataflow in 16-bit lanes.
//! * A product of two `Sm8` values is at most `127 * 127 = 16129 < 2^15`,
//!   so `mullo_epi16` computes it exactly — the low half *is* the product.
//! * Accumulation is pure integer addition, which is associative and
//!   commutative, so any lane/order regrouping leaves the sum unchanged
//!   (callers guarantee no intermediate overflow; see [`axpy_i32`]).
//!
//! Property tests in `tests/kernel_tiers.rs` pin every reachable tier
//! against the scalar oracle over random shapes and densities.
//!
//! # Dispatch
//!
//! [`dispatch`] picks the widest tier the CPU supports, once, at first
//! use. The `ZSKIP_KERNEL` environment variable (`scalar` | `sse2` |
//! `avx2` | `avx512`) overrides the choice for testing and benchmarking; requesting
//! an unsupported or unknown tier falls back to the best supported one.
//! See `docs/KERNELS.md` for the full dispatch rules and how to add a
//! tier.

use std::sync::OnceLock;
use zskip_quant::Sm8;

/// Environment variable that overrides the dispatched kernel tier.
pub const KERNEL_ENV: &str = "ZSKIP_KERNEL";

/// A kernel implementation tier, ordered narrowest to widest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelTier {
    /// Portable scalar loops: the oracle and universal fallback.
    Scalar,
    /// 8-lane `std::arch::x86_64` SSE2 kernels (baseline on x86-64).
    Sse2,
    /// 16-lane AVX2 kernels: one IFM tile row per iteration.
    Avx2,
    /// 32-lane AVX-512 kernels (F + BW): two IFM tile rows per iteration.
    Avx512,
}

impl KernelTier {
    /// Every tier, narrowest first.
    pub const ALL: [KernelTier; 4] =
        [KernelTier::Scalar, KernelTier::Sse2, KernelTier::Avx2, KernelTier::Avx512];

    /// Stable lower-case name (the `ZSKIP_KERNEL` spelling).
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Sse2 => "sse2",
            KernelTier::Avx2 => "avx2",
            KernelTier::Avx512 => "avx512",
        }
    }

    /// Parses a `ZSKIP_KERNEL` spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<KernelTier> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelTier::Scalar),
            "sse2" => Some(KernelTier::Sse2),
            "avx2" => Some(KernelTier::Avx2),
            "avx512" => Some(KernelTier::Avx512),
            _ => None,
        }
    }

    /// Whether this machine can execute the tier.
    pub fn is_supported(self) -> bool {
        match self {
            KernelTier::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelTier::Sse2 => is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => is_x86_feature_detected!("avx2"),
            // BW is needed for the 32-lane i16 multiply/shift; F for the
            // 512-bit integer adds and widening converts.
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx512 => {
                is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512bw")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// The tiers this machine can execute, narrowest first. Always
    /// contains at least [`KernelTier::Scalar`] — the set property tests
    /// iterate to cover "every dispatch tier reachable on the host".
    pub fn supported() -> Vec<KernelTier> {
        Self::ALL.iter().copied().filter(|t| t.is_supported()).collect()
    }

    /// The widest supported tier (the default dispatch choice).
    pub fn best_supported() -> KernelTier {
        Self::ALL.iter().rev().copied().find(|t| t.is_supported()).unwrap_or(KernelTier::Scalar)
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Pure dispatch policy: the widest supported tier, unless `requested`
/// names a supported tier. Unknown or unsupported requests fall back to
/// the default (the kernels must keep working on machines whose
/// environment carries a stale override).
pub fn select_tier(requested: Option<&str>) -> KernelTier {
    match requested.and_then(KernelTier::parse) {
        Some(t) if t.is_supported() => t,
        _ => KernelTier::best_supported(),
    }
}

/// The process-wide kernel tier: [`select_tier`] over `ZSKIP_KERNEL`,
/// decided once at first use and cached.
pub fn dispatch() -> KernelTier {
    static TIER: OnceLock<KernelTier> = OnceLock::new();
    *TIER.get_or_init(|| select_tier(std::env::var(KERNEL_ENV).ok().as_deref()))
}

/// Clamps a tier to what the machine supports (scalar otherwise). Keeps
/// the explicit-tier kernel entry points safe to call with any tier value.
#[inline]
fn effective(tier: KernelTier) -> KernelTier {
    if tier.is_supported() {
        tier
    } else {
        KernelTier::Scalar
    }
}

/// `acc[i] += w * xs[i]` over `i64` accumulators — the packed-nonzero tap
/// update of `conv2d_quant`, where one weight streams against a contiguous
/// input run (the paper's one-weight-per-cycle application order).
///
/// Bit-identical across tiers for any `w` in the `Sm8` product range
/// (`|w| <= 127`): per-element addends fit `i16` exactly and `i64`
/// accumulation cannot overflow from `Sm8`-ranged data.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn axpy_i64(tier: KernelTier, acc: &mut [i64], xs: &[Sm8], w: i32) {
    assert_eq!(acc.len(), xs.len(), "axpy length mismatch");
    match effective(tier) {
        KernelTier::Scalar => axpy_i64_scalar(acc, xs, w),
        // SAFETY: `effective` verified the feature is available on this CPU.
        #[cfg(target_arch = "x86_64")]
        KernelTier::Sse2 => unsafe { x86::axpy_i64_sse2(acc, xs, w) },
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 => unsafe { x86::axpy_i64_avx2(acc, xs, w) },
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx512 => unsafe { x86::axpy_i64_avx512(acc, xs, w) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => axpy_i64_scalar(acc, xs, w),
    }
}

/// `acc[i] += w * xs[i]` over `i32` accumulators — the row update of the
/// quantized GEMM. The caller must bound the number of accumulated rows so
/// no `i32` accumulator overflows: each addend is at most `127 * 127 =
/// 16129` in magnitude, so up to `2^31 / 16129 > 133_000` rows are safe
/// between flushes (the GEMM flushes every [`GEMM_I32_CHUNK_ROWS`]).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn axpy_i32(tier: KernelTier, acc: &mut [i32], xs: &[Sm8], w: i32) {
    assert_eq!(acc.len(), xs.len(), "axpy length mismatch");
    match effective(tier) {
        KernelTier::Scalar => axpy_i32_scalar(acc, xs, w),
        // SAFETY: `effective` verified the feature is available on this CPU.
        #[cfg(target_arch = "x86_64")]
        KernelTier::Sse2 => unsafe { x86::axpy_i32_sse2(acc, xs, w) },
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 => unsafe { x86::axpy_i32_avx2(acc, xs, w) },
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx512 => unsafe { x86::axpy_i32_avx512(acc, xs, w) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => axpy_i32_scalar(acc, xs, w),
    }
}

/// Rows the quantized GEMM may accumulate in `i32` between `i64` flushes
/// without overflow: `8192 * 16129 = 1.3e8`, two orders of magnitude under
/// `i32::MAX` (margin for the bias-free partial sums both signs).
pub const GEMM_I32_CHUNK_ROWS: usize = 8192;

fn axpy_i64_scalar(acc: &mut [i64], xs: &[Sm8], w: i32) {
    let w = w as i64;
    for (a, &x) in acc.iter_mut().zip(xs) {
        *a += w * x.to_i32() as i64;
    }
}

fn axpy_i32_scalar(acc: &mut [i32], xs: &[Sm8], w: i32) {
    for (a, &x) in acc.iter_mut().zip(xs) {
        *a += w * x.to_i32();
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! `std::arch::x86_64` kernel bodies. Every function carries a
    //! `#[target_feature]` attribute; callers must have verified the
    //! feature via `KernelTier::is_supported` (the `effective` clamp in
    //! the public wrappers does this).
    //!
    //! `Sm8` is `#[repr(transparent)]` over `u8`, so an `&[Sm8]` is
    //! byte-loadable directly into vector registers.

    use super::Sm8;
    use std::arch::x86_64::*;

    /// Branch-free sign+magnitude decode of 16 zero-extended bytes held in
    /// 16-bit lanes: `(mag ^ neg) - neg`, where `neg` smears bit 7 of each
    /// byte across its lane. Identical per-lane to `Sm8::decode_i16`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn decode16_avx2(b16: __m256i) -> __m256i {
        let mag = _mm256_and_si256(b16, _mm256_set1_epi16(0x7f));
        let neg = _mm256_srai_epi16(_mm256_slli_epi16(b16, 8), 15);
        _mm256_sub_epi16(_mm256_xor_si256(mag, neg), neg)
    }

    /// Same decode, 32 lanes. The shift/multiply i16 ops are AVX-512BW;
    /// the bitwise ops are AVX-512F.
    #[inline]
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn decode32_avx512(b16: __m512i) -> __m512i {
        let mag = _mm512_and_si512(b16, _mm512_set1_epi16(0x7f));
        let neg = _mm512_srai_epi16::<15>(_mm512_slli_epi16::<8>(b16));
        _mm512_sub_epi16(_mm512_xor_si512(mag, neg), neg)
    }

    /// Same decode, 8 lanes, SSE2-only ops.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn decode8_sse2(b16: __m128i) -> __m128i {
        let mag = _mm_and_si128(b16, _mm_set1_epi16(0x7f));
        let neg = _mm_srai_epi16(_mm_slli_epi16(b16, 8), 15);
        _mm_sub_epi16(_mm_xor_si128(mag, neg), neg)
    }

    /// Adds 8 sign-extended `i32` lanes into 8 consecutive `i64` slots.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn add_i32x8_into_i64(acc: *mut i64, v: __m256i) {
        let q0 = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v));
        let q1 = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v, 1));
        let a0 = _mm256_loadu_si256(acc as *const __m256i);
        _mm256_storeu_si256(acc as *mut __m256i, _mm256_add_epi64(a0, q0));
        let a1 = _mm256_loadu_si256(acc.add(4) as *const __m256i);
        _mm256_storeu_si256(acc.add(4) as *mut __m256i, _mm256_add_epi64(a1, q1));
    }

    /// Adds 16 sign-extended `i32` lanes into 16 consecutive `i64` slots.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn add_i32x16_into_i64(acc: *mut i64, v: __m512i) {
        let q0 = _mm512_cvtepi32_epi64(_mm512_castsi512_si256(v));
        let q1 = _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64::<1>(v));
        let a0 = _mm512_loadu_si512(acc as *const _);
        _mm512_storeu_si512(acc as *mut _, _mm512_add_epi64(a0, q0));
        let a1 = _mm512_loadu_si512(acc.add(8) as *const _);
        _mm512_storeu_si512(acc.add(8) as *mut _, _mm512_add_epi64(a1, q1));
    }

    /// 32-wide tap update: decode two tile rows of inputs, multiply by the
    /// broadcast weight in `i16` (exact), widen through `i32` to `i64`.
    /// Same dataflow as the AVX2 kernel at double width; the sub-32
    /// remainder runs the scalar tail, so short valid-spans stay exact.
    #[target_feature(enable = "avx512f,avx512bw")]
    pub unsafe fn axpy_i64_avx512(acc: &mut [i64], xs: &[Sm8], w: i32) {
        let n = xs.len();
        let wv = _mm512_set1_epi16(w as i16);
        let mut i = 0;
        while i + 32 <= n {
            let bytes = _mm256_loadu_si256(xs.as_ptr().add(i) as *const __m256i);
            let prod = _mm512_mullo_epi16(decode32_avx512(_mm512_cvtepu8_epi16(bytes)), wv);
            let lo = _mm512_cvtepi16_epi32(_mm512_castsi512_si256(prod));
            let hi = _mm512_cvtepi16_epi32(_mm512_extracti64x4_epi64::<1>(prod));
            add_i32x16_into_i64(acc.as_mut_ptr().add(i), lo);
            add_i32x16_into_i64(acc.as_mut_ptr().add(i + 16), hi);
            i += 32;
        }
        super::axpy_i64_scalar(&mut acc[i..], &xs[i..], w);
    }

    /// 32-wide GEMM row update into `i32` accumulators.
    #[target_feature(enable = "avx512f,avx512bw")]
    pub unsafe fn axpy_i32_avx512(acc: &mut [i32], xs: &[Sm8], w: i32) {
        let n = xs.len();
        let wv = _mm512_set1_epi16(w as i16);
        let mut i = 0;
        while i + 32 <= n {
            let bytes = _mm256_loadu_si256(xs.as_ptr().add(i) as *const __m256i);
            let prod = _mm512_mullo_epi16(decode32_avx512(_mm512_cvtepu8_epi16(bytes)), wv);
            let lo = _mm512_cvtepi16_epi32(_mm512_castsi512_si256(prod));
            let hi = _mm512_cvtepi16_epi32(_mm512_extracti64x4_epi64::<1>(prod));
            let base = acc.as_mut_ptr().add(i);
            let a0 = _mm512_loadu_si512(base as *const _);
            _mm512_storeu_si512(base as *mut _, _mm512_add_epi32(a0, lo));
            let a1 = _mm512_loadu_si512(base.add(16) as *const _);
            _mm512_storeu_si512(base.add(16) as *mut _, _mm512_add_epi32(a1, hi));
            i += 32;
        }
        super::axpy_i32_scalar(&mut acc[i..], &xs[i..], w);
    }

    /// 16-wide tap update: decode one tile row of inputs, multiply by the
    /// broadcast weight in `i16` (exact), widen through `i32` to `i64`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_i64_avx2(acc: &mut [i64], xs: &[Sm8], w: i32) {
        let n = xs.len();
        let wv = _mm256_set1_epi16(w as i16);
        let mut i = 0;
        while i + 16 <= n {
            let bytes = _mm_loadu_si128(xs.as_ptr().add(i) as *const __m128i);
            let prod = _mm256_mullo_epi16(decode16_avx2(_mm256_cvtepu8_epi16(bytes)), wv);
            let lo = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod));
            let hi = _mm256_cvtepi16_epi32(_mm256_extracti128_si256(prod, 1));
            add_i32x8_into_i64(acc.as_mut_ptr().add(i), lo);
            add_i32x8_into_i64(acc.as_mut_ptr().add(i + 8), hi);
            i += 16;
        }
        super::axpy_i64_scalar(&mut acc[i..], &xs[i..], w);
    }

    /// 8-wide tap update using SSE2-era widening (unpack + arithmetic
    /// shift for `i16 -> i32`, unpack with a sign mask for `i32 -> i64`).
    #[target_feature(enable = "sse2")]
    pub unsafe fn axpy_i64_sse2(acc: &mut [i64], xs: &[Sm8], w: i32) {
        let n = xs.len();
        let wv = _mm_set1_epi16(w as i16);
        let zero = _mm_setzero_si128();
        let mut i = 0;
        while i + 8 <= n {
            let bytes = _mm_loadl_epi64(xs.as_ptr().add(i) as *const __m128i);
            let prod = _mm_mullo_epi16(decode8_sse2(_mm_unpacklo_epi8(bytes, zero)), wv);
            // Sign-extend i16 lanes to i32 by self-interleave + shift.
            let p32 = [
                _mm_srai_epi32(_mm_unpacklo_epi16(prod, prod), 16),
                _mm_srai_epi32(_mm_unpackhi_epi16(prod, prod), 16),
            ];
            for (half, p) in p32.iter().enumerate() {
                let sign = _mm_srai_epi32(*p, 31);
                let q0 = _mm_unpacklo_epi32(*p, sign);
                let q1 = _mm_unpackhi_epi32(*p, sign);
                let base = acc.as_mut_ptr().add(i + 4 * half);
                let a0 = _mm_loadu_si128(base as *const __m128i);
                _mm_storeu_si128(base as *mut __m128i, _mm_add_epi64(a0, q0));
                let a1 = _mm_loadu_si128(base.add(2) as *const __m128i);
                _mm_storeu_si128(base.add(2) as *mut __m128i, _mm_add_epi64(a1, q1));
            }
            i += 8;
        }
        super::axpy_i64_scalar(&mut acc[i..], &xs[i..], w);
    }

    /// 16-wide GEMM row update into `i32` accumulators.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_i32_avx2(acc: &mut [i32], xs: &[Sm8], w: i32) {
        let n = xs.len();
        let wv = _mm256_set1_epi16(w as i16);
        let mut i = 0;
        while i + 16 <= n {
            let bytes = _mm_loadu_si128(xs.as_ptr().add(i) as *const __m128i);
            let prod = _mm256_mullo_epi16(decode16_avx2(_mm256_cvtepu8_epi16(bytes)), wv);
            let lo = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod));
            let hi = _mm256_cvtepi16_epi32(_mm256_extracti128_si256(prod, 1));
            let base = acc.as_mut_ptr().add(i);
            let a0 = _mm256_loadu_si256(base as *const __m256i);
            _mm256_storeu_si256(base as *mut __m256i, _mm256_add_epi32(a0, lo));
            let a1 = _mm256_loadu_si256(base.add(8) as *const __m256i);
            _mm256_storeu_si256(base.add(8) as *mut __m256i, _mm256_add_epi32(a1, hi));
            i += 16;
        }
        super::axpy_i32_scalar(&mut acc[i..], &xs[i..], w);
    }

    /// 8-wide GEMM row update into `i32` accumulators, SSE2-only ops.
    #[target_feature(enable = "sse2")]
    pub unsafe fn axpy_i32_sse2(acc: &mut [i32], xs: &[Sm8], w: i32) {
        let n = xs.len();
        let wv = _mm_set1_epi16(w as i16);
        let zero = _mm_setzero_si128();
        let mut i = 0;
        while i + 8 <= n {
            let bytes = _mm_loadl_epi64(xs.as_ptr().add(i) as *const __m128i);
            let prod = _mm_mullo_epi16(decode8_sse2(_mm_unpacklo_epi8(bytes, zero)), wv);
            let lo = _mm_srai_epi32(_mm_unpacklo_epi16(prod, prod), 16);
            let hi = _mm_srai_epi32(_mm_unpackhi_epi16(prod, prod), 16);
            let base = acc.as_mut_ptr().add(i);
            let a0 = _mm_loadu_si128(base as *const __m128i);
            _mm_storeu_si128(base as *mut __m128i, _mm_add_epi32(a0, lo));
            let a1 = _mm_loadu_si128(base.add(4) as *const __m128i);
            _mm_storeu_si128(base.add(4) as *mut __m128i, _mm_add_epi32(a1, hi));
            i += 8;
        }
        super::axpy_i32_scalar(&mut acc[i..], &xs[i..], w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tier_names_round_trip() {
        for t in KernelTier::ALL {
            assert_eq!(KernelTier::parse(t.name()), Some(t));
            assert_eq!(KernelTier::parse(&t.name().to_uppercase()), Some(t));
            assert_eq!(t.to_string(), t.name());
        }
        assert_eq!(KernelTier::parse("avx512"), Some(KernelTier::Avx512));
        assert_eq!(KernelTier::parse("avx999"), None);
        assert_eq!(KernelTier::parse(""), None);
    }

    #[test]
    fn scalar_is_always_supported_and_listed_first() {
        assert!(KernelTier::Scalar.is_supported());
        let sup = KernelTier::supported();
        assert_eq!(sup[0], KernelTier::Scalar);
        assert!(sup.contains(&KernelTier::best_supported()));
    }

    #[test]
    fn select_tier_honors_supported_requests_and_ignores_junk() {
        assert_eq!(select_tier(Some("scalar")), KernelTier::Scalar);
        assert_eq!(select_tier(None), KernelTier::best_supported());
        assert_eq!(select_tier(Some("definitely-not-a-tier")), KernelTier::best_supported());
        for t in KernelTier::supported() {
            assert_eq!(select_tier(Some(t.name())), t);
        }
    }

    #[test]
    fn dispatch_is_stable_and_supported() {
        let a = dispatch();
        assert!(a.is_supported());
        assert_eq!(dispatch(), a, "dispatch must be cached");
    }

    fn sm8_vec(seed: u64, n: usize) -> Vec<Sm8> {
        let mut rng = zskip_fault::SplitMix64::new(seed);
        (0..n).map(|_| Sm8::from_bits(rng.next_u64() as u8)).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn axpy_tiers_match_scalar(
            n in 0usize..70, // crosses the 8-, 16- and 32-lane boundaries and tails
            w in -127i32..=127,
            seed in 0u64..1000,
        ) {
            let xs = sm8_vec(seed, n);
            let base: Vec<i64> = (0..n as i64).map(|i| i * 1_000_003 - 7).collect();
            let base32: Vec<i32> = (0..n as i32).map(|i| i * 1003 - 7).collect();
            let mut want64 = base.clone();
            axpy_i64(KernelTier::Scalar, &mut want64, &xs, w);
            let mut want32 = base32.clone();
            axpy_i32(KernelTier::Scalar, &mut want32, &xs, w);
            for tier in KernelTier::supported() {
                let mut got64 = base.clone();
                axpy_i64(tier, &mut got64, &xs, w);
                prop_assert_eq!(&got64, &want64, "axpy_i64 tier {}", tier);
                let mut got32 = base32.clone();
                axpy_i32(tier, &mut got32, &xs, w);
                prop_assert_eq!(&got32, &want32, "axpy_i32 tier {}", tier);
            }
        }
    }

    #[test]
    fn unsupported_tier_falls_back_to_scalar_result() {
        // `effective` clamps: calling any tier value is safe and exact,
        // even one the host lacks (regression guard for non-x86 hosts).
        let xs = sm8_vec(3, 37);
        let mut a = vec![5i64; 37];
        let mut b = vec![5i64; 37];
        axpy_i64(KernelTier::Scalar, &mut a, &xs, -77);
        axpy_i64(KernelTier::Avx2, &mut b, &xs, -77);
        assert_eq!(a, b);
    }
}
