//! The VGG-16 network (Simonyan & Zisserman 2014), the paper's test vehicle.

use crate::layer::{conv3x3, maxpool2x2, LayerSpec, NetworkSpec};
use zskip_tensor::Shape;

/// Names of the 13 convolutional layers, in order.
pub const VGG16_CONV_NAMES: [&str; 13] = [
    "conv1_1", "conv1_2", "conv2_1", "conv2_2", "conv3_1", "conv3_2", "conv3_3", "conv4_1",
    "conv4_2", "conv4_3", "conv5_1", "conv5_2", "conv5_3",
];

/// Builds the VGG-16 specification: 13 conv layers (all 3x3 stride 1 pad 1,
/// ReLU) interspersed with five 2x2/stride-2 max-pools, then three FC
/// layers and softmax. Input is a 224x224 RGB image.
pub fn vgg16_spec() -> NetworkSpec {
    NetworkSpec {
        name: "vgg16".into(),
        input: Shape::new(3, 224, 224),
        layers: vec![
            conv3x3("conv1_1", 3, 64),
            conv3x3("conv1_2", 64, 64),
            maxpool2x2("pool1"),
            conv3x3("conv2_1", 64, 128),
            conv3x3("conv2_2", 128, 128),
            maxpool2x2("pool2"),
            conv3x3("conv3_1", 128, 256),
            conv3x3("conv3_2", 256, 256),
            conv3x3("conv3_3", 256, 256),
            maxpool2x2("pool3"),
            conv3x3("conv4_1", 256, 512),
            conv3x3("conv4_2", 512, 512),
            conv3x3("conv4_3", 512, 512),
            maxpool2x2("pool4"),
            conv3x3("conv5_1", 512, 512),
            conv3x3("conv5_2", 512, 512),
            conv3x3("conv5_3", 512, 512),
            maxpool2x2("pool5"),
            LayerSpec::Fc { name: "fc6".into(), in_features: 512 * 7 * 7, out_features: 4096, relu: true },
            LayerSpec::Fc { name: "fc7".into(), in_features: 4096, out_features: 4096, relu: true },
            LayerSpec::Fc { name: "fc8".into(), in_features: 4096, out_features: 1000, relu: false },
            LayerSpec::Softmax,
        ],
    }
}

/// A spatially scaled-down VGG-16 with the same channel progression and
/// layer structure but an `input_hw x input_hw` input. Used by tests and
/// examples that need VGG's *structure* without the full 15.3 GMAC cost.
/// `input_hw` must be a multiple of 32 (five 2x2 pools).
///
/// # Panics
/// Panics if `input_hw` is not a positive multiple of 32.
pub fn vgg16_scaled_spec(input_hw: usize) -> NetworkSpec {
    assert!(input_hw > 0 && input_hw.is_multiple_of(32), "input_hw must be a positive multiple of 32");
    let mut spec = vgg16_spec();
    spec.name = format!("vgg16-{input_hw}");
    spec.input = Shape::new(3, input_hw, input_hw);
    let final_hw = input_hw / 32;
    for layer in spec.layers.iter_mut() {
        if let LayerSpec::Fc { name, in_features, .. } = layer {
            if name == "fc6" {
                *in_features = 512 * final_hw * final_hw;
            }
        }
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_shape_chain_is_valid() {
        let spec = vgg16_spec();
        let shapes = spec.shapes().expect("vgg16 must be shape-valid");
        assert_eq!(shapes[0], Shape::new(3, 224, 224));
        // After pool5: 512 x 7 x 7.
        assert_eq!(shapes[18], Shape::new(512, 7, 7));
        // Final output: 1000 classes.
        assert_eq!(*shapes.last().unwrap(), Shape::new(1000, 1, 1));
    }

    #[test]
    fn vgg16_mac_counts_match_literature() {
        let spec = vgg16_spec();
        let shapes = spec.shapes().unwrap();
        let conv_macs: u64 = spec
            .layers
            .iter()
            .zip(&shapes)
            .filter(|(l, _)| matches!(l, LayerSpec::Conv { .. }))
            .map(|(l, &s)| l.macs(s))
            .sum();
        // The well-known VGG-16 convolution workload: ~15.35 GMACs.
        assert_eq!(conv_macs, 15_346_630_656);
        // FC layers add ~0.12 GMACs.
        assert_eq!(spec.total_macs(), 15_346_630_656 + 123_633_664);
    }

    #[test]
    fn thirteen_conv_layers_with_expected_names() {
        let spec = vgg16_spec();
        let convs = spec.conv_layers();
        assert_eq!(convs.len(), 13);
        for ((_, l, _), expect) in convs.iter().zip(VGG16_CONV_NAMES) {
            assert_eq!(l.name(), expect);
        }
    }

    #[test]
    fn scaled_spec_shrinks_spatially_only() {
        let spec = vgg16_scaled_spec(32);
        let shapes = spec.shapes().expect("scaled vgg16 must be shape-valid");
        assert_eq!(shapes[0], Shape::new(3, 32, 32));
        assert_eq!(shapes[18], Shape::new(512, 1, 1));
        assert_eq!(*shapes.last().unwrap(), Shape::new(1000, 1, 1));
        assert_eq!(spec.conv_layers().len(), 13);
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn scaled_spec_rejects_bad_size() {
        let _ = vgg16_scaled_spec(30);
    }

    #[test]
    fn vgg_prefix_scratch_forward_matches_allocating_forward() {
        // A truncated VGG-16 prefix (conv1_1, conv1_2, pool1) at reduced
        // resolution: the real layer geometry exercising the scratch arena
        // ping-pong, against the allocating path, on every reachable tier.
        use crate::model::{Network, SyntheticModelConfig};
        use crate::scratch::Scratch;
        use zskip_tensor::Tensor;
        let full = vgg16_scaled_spec(32);
        let spec = NetworkSpec {
            name: "vgg16-prefix".into(),
            input: Shape::new(3, 16, 16),
            layers: full.layers[..3].to_vec(),
        };
        let net = Network::synthetic(spec, &SyntheticModelConfig::default());
        let input = Tensor::from_fn(3, 16, 16, |c, y, x| ((c * 256 + y * 16 + x) as f32 * 0.37).sin());
        let qnet = net.quantize(std::slice::from_ref(&input));
        let fresh = qnet.forward_quant(&input);
        for tier in crate::simd::KernelTier::supported() {
            let mut scratch = Scratch::with_tier(tier);
            // Two passes: the second runs against a warmed arena.
            let first = qnet.forward_quant_scratch(&input, &mut scratch).to_vec();
            let second = qnet.forward_quant_scratch(&input, &mut scratch).to_vec();
            assert_eq!(fresh, first, "tier {tier} (cold arena)");
            assert_eq!(fresh, second, "tier {tier} (warm arena)");
            assert_eq!(scratch.grow_events(), 1, "tier {tier} arena kept growing");
        }
    }

    #[test]
    fn deepest_layers_have_highest_weight_to_activation_ratio() {
        // The paper attributes worst-case efficiency to deep layers where
        // weight data dominates FM data; confirm the geometry implies it.
        let spec = vgg16_spec();
        let shapes = spec.shapes().unwrap();
        let ratio = |i: usize| -> f64 {
            if let LayerSpec::Conv { in_c, out_c, k, .. } = &spec.layers[i] {
                let weights = (in_c * out_c * k * k) as f64;
                let fm = shapes[i].len() as f64;
                weights / fm
            } else {
                panic!("not conv")
            }
        };
        let first = ratio(0);
        let last = ratio(16);
        assert!(last > first * 100.0, "first {first} last {last}");
    }
}
