//! Convolution reference operators: float and integer-exact quantized.

use crate::par::{ConvPool, SendPtr};
use crate::simd::{self, KernelTier};
use std::sync::{Arc, OnceLock};
use zskip_quant::cache::{CacheStats, Fingerprint, WeightCache};
use zskip_quant::{PackedTile, Requantizer, Sm8};
use zskip_tensor::{Shape, Tensor, Tile, TILE_DIM};

/// Float convolution weights for one layer, `[out_c][in_c][k][k]` row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvWeights {
    /// Output channels.
    pub out_c: usize,
    /// Input channels.
    pub in_c: usize,
    /// Kernel edge length.
    pub k: usize,
    /// Weight values, `out_c * in_c * k * k` entries.
    pub w: Vec<f32>,
    /// Per-output-channel bias.
    pub bias: Vec<f32>,
}

impl ConvWeights {
    /// All-zero weights of the given geometry.
    pub fn zeros(out_c: usize, in_c: usize, k: usize) -> Self {
        ConvWeights { out_c, in_c, k, w: vec![0.0; out_c * in_c * k * k], bias: vec![0.0; out_c] }
    }

    /// Weight at `[o][i][ky][kx]`.
    #[inline]
    pub fn at(&self, o: usize, i: usize, ky: usize, kx: usize) -> f32 {
        self.w[((o * self.in_c + i) * self.k + ky) * self.k + kx]
    }

    /// Mutable weight at `[o][i][ky][kx]`.
    #[inline]
    pub fn at_mut(&mut self, o: usize, i: usize, ky: usize, kx: usize) -> &mut f32 {
        &mut self.w[((o * self.in_c + i) * self.k + ky) * self.k + kx]
    }

    /// The `k*k` filter slice for `(o, i)`.
    pub fn filter(&self, o: usize, i: usize) -> &[f32] {
        let kk = self.k * self.k;
        let base = (o * self.in_c + i) * kk;
        &self.w[base..base + kk]
    }
}

/// Quantized (sign+magnitude) convolution weights plus the integer epilogue
/// parameters; the exact operands the accelerator consumes.
///
/// Construct via [`QuantConvWeights::new`], which also sizes the internal
/// per-filter caches. The data fields stay public for read access; code
/// that mutates `w` in place after construction must call
/// [`QuantConvWeights::invalidate_caches`] so the cached nonzero counts
/// and packed taps stay truthful.
#[derive(Debug, Clone)]
pub struct QuantConvWeights {
    /// Output channels.
    pub out_c: usize,
    /// Input channels.
    pub in_c: usize,
    /// Kernel edge length.
    pub k: usize,
    /// Quantized weights, `[o][i][ky][kx]` row-major.
    pub w: Vec<Sm8>,
    /// Bias in accumulator domain (already scaled by `1/(s_in * s_w)`).
    pub bias_acc: Vec<i64>,
    /// The multiply-shift requantizer for the output write-back.
    pub requant: Requantizer,
    /// Whether ReLU is fused before requantization.
    pub relu: bool,
    /// Handle into the process-wide packed-taps cache: the shared artifact
    /// holding this layer's nonzero counts and packed taps, resolved once
    /// per instance by content fingerprint. Not part of the logical value:
    /// ignored by `PartialEq`.
    packed: OnceLock<Arc<PackedTaps>>,
    /// Cached content fingerprint (the shared-cache key). Ignored by
    /// `PartialEq` like `packed`.
    fp: OnceLock<u64>,
}

/// The derived packing of one conv layer: per-`(o, i)` nonzero counts and
/// packed nonzero taps. Lives in the process-wide [`WeightCache`], shared
/// by every `QuantConvWeights` instance with identical content — N batch
/// workers and N driver sessions warm it once, not N times.
#[derive(Debug)]
pub struct PackedTaps {
    nnz: Vec<u32>,
    taps: Vec<Vec<(u8, u8, Sm8)>>,
}

impl PackedTaps {
    fn heap_bytes(&self) -> usize {
        self.nnz.capacity() * std::mem::size_of::<u32>()
            + self.taps.capacity() * std::mem::size_of::<Vec<(u8, u8, Sm8)>>()
            + self
                .taps
                .iter()
                .map(|t| t.capacity() * std::mem::size_of::<(u8, u8, Sm8)>())
                .sum::<usize>()
    }
}

fn taps_cache() -> &'static WeightCache<PackedTaps> {
    static CACHE: OnceLock<WeightCache<PackedTaps>> = OnceLock::new();
    CACHE.get_or_init(WeightCache::new)
}

/// Counters of the shared packed-taps cache (surfaced by `zskip analyze`).
pub fn tap_cache_stats() -> CacheStats {
    taps_cache().stats()
}

impl PartialEq for QuantConvWeights {
    fn eq(&self, other: &Self) -> bool {
        self.out_c == other.out_c
            && self.in_c == other.in_c
            && self.k == other.k
            && self.w == other.w
            && self.bias_acc == other.bias_acc
            && self.requant == other.requant
            && self.relu == other.relu
    }
}

impl QuantConvWeights {
    /// Builds a quantized layer, validating geometry.
    pub fn new(
        out_c: usize,
        in_c: usize,
        k: usize,
        w: Vec<Sm8>,
        bias_acc: Vec<i64>,
        requant: Requantizer,
        relu: bool,
    ) -> Self {
        assert_eq!(w.len(), out_c * in_c * k * k, "weight count mismatch");
        assert_eq!(bias_acc.len(), out_c, "bias count mismatch");
        QuantConvWeights {
            out_c,
            in_c,
            k,
            w,
            bias_acc,
            requant,
            relu,
            packed: OnceLock::new(),
            fp: OnceLock::new(),
        }
    }

    /// The layer's content fingerprint: a stable 64-bit digest of geometry,
    /// weight bits, bias, requantizer, and the ReLU flag — everything that
    /// determines the derived packing and the epilogue. Two instances with
    /// equal content (e.g. clones across batch workers) share one
    /// fingerprint and therefore one shared-cache entry.
    pub fn fingerprint(&self) -> u64 {
        *self.fp.get_or_init(|| {
            // SAFETY: `Sm8` is `#[repr(transparent)]` over `u8`, so the
            // weight vector's buffer is a valid byte slice.
            let w_bytes: &[u8] =
                unsafe { std::slice::from_raw_parts(self.w.as_ptr() as *const u8, self.w.len()) };
            Fingerprint::new()
                .u64(self.out_c as u64)
                .u64(self.in_c as u64)
                .u64(self.k as u64)
                .bytes(w_bytes)
                .i64s(&self.bias_acc)
                .u64(u64::from(self.requant.mult))
                .u64(u64::from(self.requant.shift))
                .u64(u64::from(self.relu))
                .finish()
        })
    }

    /// Resolves this layer's packing in the shared cache (building it on
    /// the first request for this content anywhere in the process).
    fn packed(&self) -> &PackedTaps {
        self.packed.get_or_init(|| {
            taps_cache().get_or_insert_with(
                self.fingerprint(),
                || self.build_packed(),
                PackedTaps::heap_bytes,
            )
        })
    }

    /// Weight at `[o][i][ky][kx]`.
    #[inline]
    pub fn at(&self, o: usize, i: usize, ky: usize, kx: usize) -> Sm8 {
        self.w[((o * self.in_c + i) * self.k + ky) * self.k + kx]
    }

    /// The `k*k` filter slice for `(o, i)`.
    pub fn filter(&self, o: usize, i: usize) -> &[Sm8] {
        let kk = self.k * self.k;
        let base = (o * self.in_c + i) * kk;
        &self.w[base..base + kk]
    }

    /// The per-`(o, i)` nonzero table (shared-cache resident).
    fn nnz_table(&self) -> &[u32] {
        &self.packed().nnz
    }

    /// Builds the full derived packing: the nonzero table plus the packed
    /// taps. Runs at most once per distinct weight content per process —
    /// the shared cache hands every later requester the same artifact.
    fn build_packed(&self) -> PackedTaps {
        let kk = self.k * self.k;
        let nnz: Vec<u32> = self
            .w
            .chunks(kk.max(1))
            .map(|f| f.iter().filter(|v| !v.is_zero()).count() as u32)
            .collect();
        let k = self.k;
        let taps = (0..self.out_c * self.in_c)
            .map(|f| {
                let (o, i) = (f / self.in_c, f % self.in_c);
                let filter = self.filter(o, i);
                let mut taps = Vec::with_capacity(nnz[f] as usize);
                if k <= TILE_DIM {
                    // Filter fits one hardware tile: go through the packed
                    // form so the golden model exercises the same offsets.
                    let mut tile = Tile::<Sm8>::zero();
                    for ky in 0..k {
                        for kx in 0..k {
                            tile[(ky, kx)] = filter[ky * k + kx];
                        }
                    }
                    for e in PackedTile::pack(&tile).entries() {
                        taps.push((e.offset / TILE_DIM as u8, e.offset % TILE_DIM as u8, e.value));
                    }
                } else {
                    for (idx, &v) in filter.iter().enumerate() {
                        if !v.is_zero() {
                            taps.push(((idx / k) as u8, (idx % k) as u8, v));
                        }
                    }
                }
                taps
            })
            .collect();
        PackedTaps { nnz, taps }
    }

    /// Drops this instance's fingerprint and shared-cache handle. Must be
    /// called after mutating `w` through the public field (e.g.
    /// re-sparsifying a layer in place); the next query re-fingerprints
    /// the new content and resolves (or builds) its own cache entry. Stale
    /// entries for the old content stay resident for other holders.
    pub fn invalidate_caches(&mut self) {
        self.packed = OnceLock::new();
        self.fp = OnceLock::new();
    }

    /// Non-zero weight count of filter `(o, i)` (cached; the driver asks
    /// for this per filter per pass when balancing lockstep lanes).
    pub fn filter_nnz(&self, o: usize, i: usize) -> usize {
        self.nnz_table()[o * self.in_c + i] as usize
    }

    /// Total non-zero weights of output filter `o` across all input
    /// channels (the quantity filter grouping balances).
    pub fn output_filter_nnz(&self, o: usize) -> usize {
        let t = self.nnz_table();
        t[o * self.in_c..(o + 1) * self.in_c].iter().map(|&n| n as u64).sum::<u64>() as usize
    }

    /// Overall weight density in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.w.is_empty() {
            return 0.0;
        }
        let nonzero: u64 = self.nnz_table().iter().map(|&n| n as u64).sum();
        nonzero as f64 / self.w.len() as f64
    }

    /// The per-`(o, i)` packed nonzero taps `(ky, kx, value)` in row-major
    /// tap order — the same offline packing the hardware's scratchpad
    /// stream uses (paper §III-B). Kernels up to `4x4` reuse the
    /// [`PackedTile`] tile encoding; larger kernels fall back to a scan.
    ///
    /// Taps are **pad-independent** (raw kernel coordinates), so they are
    /// computed once per distinct weight content per *process* and shared
    /// through the packed-taps cache; consumers subtract the pad at use
    /// time. The allocation-free inference path relies on this: after the
    /// first forward pass no conv layer packs its weights again — and with
    /// the shared cache, neither does any *other* session or worker
    /// holding the same weights.
    pub fn raw_taps(&self) -> &[Vec<(u8, u8, Sm8)>] {
        &self.packed().taps
    }

    /// [`QuantConvWeights::raw_taps`] with `-pad` folded into each tap's
    /// coordinates, materialized per call. Kept for consumers that want the
    /// classic padded-offset form; the hot conv path uses `raw_taps`
    /// directly to stay allocation-free.
    pub fn packed_taps(&self, pad: usize) -> Vec<Vec<(isize, isize, Sm8)>> {
        self.raw_taps()
            .iter()
            .map(|taps| {
                taps.iter()
                    .map(|&(ky, kx, v)| {
                        (ky as isize - pad as isize, kx as isize - pad as isize, v)
                    })
                    .collect()
            })
            .collect()
    }
}

/// Float reference convolution (stride/pad general), with optional ReLU.
pub fn conv2d_f32(input: &Tensor<f32>, weights: &ConvWeights, stride: usize, pad: usize, relu: bool) -> Tensor<f32> {
    let s = input.shape();
    assert_eq!(s.c, weights.in_c, "input channels mismatch");
    let out_h = (s.h + 2 * pad - weights.k) / stride + 1;
    let out_w = (s.w + 2 * pad - weights.k) / stride + 1;
    let mut out = Tensor::zeros(weights.out_c, out_h, out_w);
    for o in 0..weights.out_c {
        for y in 0..out_h {
            for x in 0..out_w {
                let mut acc = weights.bias[o];
                for i in 0..s.c {
                    for ky in 0..weights.k {
                        for kx in 0..weights.k {
                            let iy = (y * stride + ky) as isize - pad as isize;
                            let ix = (x * stride + kx) as isize - pad as isize;
                            acc += weights.at(o, i, ky, kx) * input.get_or(i, iy, ix, 0.0);
                        }
                    }
                }
                out[(o, y, x)] = if relu { acc.max(0.0) } else { acc };
            }
        }
    }
    out
}

/// Integer-exact quantized convolution: accumulates `i64`, applies the fused
/// ReLU + multiply-shift epilogue. This is the **golden model** — the
/// simulated accelerator must reproduce its output bit-for-bit.
///
/// Internally it runs on per-filter packed nonzero taps (the same
/// zero-weight skipping the hardware does, via [`QuantConvWeights::packed_taps`]);
/// `i64` accumulation makes the sum order-independent, so the result is
/// bit-identical to the dense scan [`conv2d_quant_dense`] — property tests
/// pin the two together.
pub fn conv2d_quant(input: &Tensor<Sm8>, weights: &QuantConvWeights, stride: usize, pad: usize) -> Tensor<Sm8> {
    let mut out = Tensor::zeros(1, 1, 1);
    let mut acc = Vec::new();
    conv2d_quant_into(input, weights, stride, pad, simd::dispatch(), &mut acc, &mut out);
    out
}

/// [`conv2d_quant`] with an explicit kernel tier and caller-owned scratch:
/// `acc` is the per-output-channel `i64` accumulator plane and `out` the
/// destination tensor, both reshaped in place and reused across calls (the
/// scratch-arena inference path passes the same buffers every image, so
/// steady-state conv layers allocate nothing).
pub fn conv2d_quant_into(
    input: &Tensor<Sm8>,
    weights: &QuantConvWeights,
    stride: usize,
    pad: usize,
    tier: KernelTier,
    acc: &mut Vec<i64>,
    out: &mut Tensor<Sm8>,
) {
    let s = input.shape();
    assert_eq!(s.c, weights.in_c, "input channels mismatch");
    let out_h = (s.h + 2 * pad - weights.k) / stride + 1;
    let out_w = (s.w + 2 * pad - weights.k) / stride + 1;
    let taps = weights.raw_taps();
    let in_data = input.as_slice();
    out.reset(weights.out_c, out_h, out_w);
    let out_slice = out.as_mut_slice();
    // One i64 accumulator plane per output channel, visited tap-by-tap:
    // each nonzero tap contributes a shifted copy of an input row to a
    // contiguous span of accumulators (the span where the tap lands
    // in-bounds; out-of-bounds taps read the zero padding and contribute
    // nothing). Integer accumulation is order-independent, so this is
    // bit-identical to the per-pixel scan.
    acc.clear();
    acc.resize(out_h * out_w, 0);
    for o in 0..weights.out_c {
        let plane = &mut out_slice[o * out_h * out_w..(o + 1) * out_h * out_w];
        conv_channel(ConvChannelArgs {
            in_data,
            s,
            weights,
            channel_taps: &taps[o * weights.in_c..(o + 1) * weights.in_c],
            o,
            stride,
            pad,
            tier,
            out_h,
            out_w,
            acc,
            out_plane: plane,
        });
    }
}

/// Operands of one output channel's conv computation — the unit of work a
/// pool panel executes. Bundled so the single-threaded loop and the pooled
/// path share one body (bit-exactness across worker counts reduces to
/// "same function, same inputs, disjoint outputs").
struct ConvChannelArgs<'a> {
    in_data: &'a [Sm8],
    s: Shape,
    weights: &'a QuantConvWeights,
    channel_taps: &'a [Vec<(u8, u8, Sm8)>],
    o: usize,
    stride: usize,
    pad: usize,
    tier: KernelTier,
    out_h: usize,
    out_w: usize,
    acc: &'a mut [i64],
    out_plane: &'a mut [Sm8],
}

/// Computes output channel `o`: fills the accumulator plane with the bias,
/// applies every packed tap in deterministic (input-channel, tap) order,
/// then requantizes into the output plane. Exactly the former inner loop of
/// [`conv2d_quant_into`]; the pooled path runs this per panel unchanged, so
/// any worker count produces bit-identical planes.
fn conv_channel(args: ConvChannelArgs<'_>) {
    let ConvChannelArgs {
        in_data,
        s,
        weights,
        channel_taps,
        o,
        stride,
        pad,
        tier,
        out_h,
        out_w,
        acc,
        out_plane,
    } = args;
    acc.fill(weights.bias_acc[o]);
    for (i, filter_taps) in channel_taps.iter().enumerate() {
        let ibase = i * s.h * s.w;
        for &(ky, kx, w) in filter_taps {
            let dy = ky as isize - pad as isize;
            let dx = kx as isize - pad as isize;
            let wv = w.to_i32();
            for y in 0..out_h {
                let iy = (y * stride) as isize + dy;
                if iy < 0 || iy >= s.h as isize {
                    continue;
                }
                // Output columns whose tap sample 0 <= x*stride + dx < s.w.
                let x0 = if dx >= 0 { 0 } else { (dx.unsigned_abs()).div_ceil(stride) };
                let max_ix = s.w as isize - 1 - dx;
                if max_ix < 0 || x0 >= out_w {
                    continue;
                }
                let x1 = (max_ix as usize / stride).min(out_w - 1);
                if x0 > x1 {
                    continue;
                }
                let irow = ibase + iy as usize * s.w;
                let acc_run = &mut acc[y * out_w + x0..=y * out_w + x1];
                if stride == 1 {
                    // Contiguous input run: the SIMD axpy tier applies
                    // this tap 8, 16 or 32 outputs at a time.
                    let istart = (irow + x0).wrapping_add_signed(dx);
                    let in_run = &in_data[istart..istart + (x1 - x0 + 1)];
                    simd::axpy_i64(tier, acc_run, in_run, wv);
                } else {
                    let wv = wv as i64;
                    for (j, a) in acc_run.iter_mut().enumerate() {
                        let ix = ((x0 + j) * stride).wrapping_add_signed(dx);
                        *a += wv * in_data[irow + ix].to_i32() as i64;
                    }
                }
            }
        }
    }
    for (dst, &a) in out_plane.iter_mut().zip(acc.iter()) {
        *dst = if weights.relu { weights.requant.apply_relu(a) } else { weights.requant.apply(a) };
    }
}

/// [`conv2d_quant_into`] with the output channels split across an
/// intra-image worker pool. Panel `o` is output channel `o`; whichever
/// worker claims it runs `conv_channel` — the same body as the
/// single-threaded loop — over its own disjoint slice of the accumulator
/// arena, so the result is **bit-identical at any worker count** (integer
/// accumulation per panel is untouched; only the executing thread varies).
///
/// `acc` is grown to `pool.threads() * out_plane` once (a warmup
/// `grow_event`); after that the pooled steady state allocates nothing,
/// like the single-threaded path.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_quant_into_pool(
    input: &Tensor<Sm8>,
    weights: &QuantConvWeights,
    stride: usize,
    pad: usize,
    tier: KernelTier,
    pool: &ConvPool,
    acc: &mut Vec<i64>,
    out: &mut Tensor<Sm8>,
) {
    let s = input.shape();
    assert_eq!(s.c, weights.in_c, "input channels mismatch");
    let out_h = (s.h + 2 * pad - weights.k) / stride + 1;
    let out_w = (s.w + 2 * pad - weights.k) / stride + 1;
    let plane = out_h * out_w;
    let taps = weights.raw_taps();
    let in_data = input.as_slice();
    out.reset(weights.out_c, out_h, out_w);
    acc.clear();
    acc.resize(pool.threads() * plane, 0);
    let acc_ptr = SendPtr::new(acc.as_mut_ptr());
    let out_ptr = SendPtr::new(out.as_mut_slice().as_mut_ptr());
    let in_c = weights.in_c;
    pool.run(weights.out_c, &|worker, o| {
        // SAFETY: worker indices are unique per concurrently-running
        // closure and panels are claimed exactly once, so accumulator
        // slice `worker` and output plane `o` each have a single owner;
        // both stay in bounds by the resize/reset above.
        let acc = unsafe { std::slice::from_raw_parts_mut(acc_ptr.add(worker * plane), plane) };
        let out_plane = unsafe { std::slice::from_raw_parts_mut(out_ptr.add(o * plane), plane) };
        conv_channel(ConvChannelArgs {
            in_data,
            s,
            weights,
            channel_taps: &taps[o * in_c..(o + 1) * in_c],
            o,
            stride,
            pad,
            tier,
            out_h,
            out_w,
            acc,
            out_plane,
        });
    });
}

/// The dense reference scan: visits every weight, skipping zeros one by
/// one. Kept as the baseline the packed fast path is property-tested
/// against (and as the "no offline packing" ablation reference).
pub fn conv2d_quant_dense(
    input: &Tensor<Sm8>,
    weights: &QuantConvWeights,
    stride: usize,
    pad: usize,
) -> Tensor<Sm8> {
    let s = input.shape();
    assert_eq!(s.c, weights.in_c, "input channels mismatch");
    let out_h = (s.h + 2 * pad - weights.k) / stride + 1;
    let out_w = (s.w + 2 * pad - weights.k) / stride + 1;
    let mut out = Tensor::zeros(weights.out_c, out_h, out_w);
    for o in 0..weights.out_c {
        for y in 0..out_h {
            for x in 0..out_w {
                let mut acc: i64 = weights.bias_acc[o];
                for i in 0..s.c {
                    for ky in 0..weights.k {
                        for kx in 0..weights.k {
                            let w = weights.at(o, i, ky, kx);
                            if w.is_zero() {
                                continue; // zero-skipping changes nothing numerically
                            }
                            let iy = (y * stride + ky) as isize - pad as isize;
                            let ix = (x * stride + kx) as isize - pad as isize;
                            let v = input.get_or(i, iy, ix, Sm8::ZERO);
                            acc += w.mul_exact(v) as i64;
                        }
                    }
                }
                out[(o, y, x)] = if weights.relu {
                    weights.requant.apply_relu(acc)
                } else {
                    weights.requant.apply(acc)
                };
            }
        }
    }
    out
}

/// Output shape of [`conv2d_quant`] / [`conv2d_f32`] for an input shape.
pub fn conv_output_shape(input: Shape, weights_out_c: usize, k: usize, stride: usize, pad: usize) -> Shape {
    Shape::new(weights_out_c, (input.h + 2 * pad - k) / stride + 1, (input.w + 2 * pad - k) / stride + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use zskip_quant::QuantParams;

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 kernel of weight 1.0: output equals input.
        let mut w = ConvWeights::zeros(1, 1, 1);
        w.w[0] = 1.0;
        let input = Tensor::from_fn(1, 3, 3, |_, y, x| (y * 3 + x) as f32);
        let out = conv2d_f32(&input, &w, 1, 0, false);
        assert_eq!(out, input);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut w = ConvWeights::zeros(1, 1, 1);
        w.w[0] = -1.0;
        let input = Tensor::from_fn(1, 2, 2, |_, y, x| (y + x) as f32);
        let out = conv2d_f32(&input, &w, 1, 0, true);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn padding_sees_zeros() {
        // 3x3 all-ones kernel over a 1x1 input with pad 1: every output
        // position sums the single input value once.
        let mut w = ConvWeights::zeros(1, 1, 3);
        w.w.iter_mut().for_each(|v| *v = 1.0);
        let mut input = Tensor::zeros(1, 1, 1);
        input[(0, 0, 0)] = 5.0;
        let out = conv2d_f32(&input, &w, 1, 1, false);
        assert_eq!(out.shape(), Shape::new(1, 1, 1));
        assert_eq!(out[(0, 0, 0)], 5.0);
    }

    #[test]
    fn stride_subsamples() {
        let mut w = ConvWeights::zeros(1, 1, 1);
        w.w[0] = 1.0;
        let input = Tensor::from_fn(1, 4, 4, |_, y, x| (y * 4 + x) as f32);
        let out = conv2d_f32(&input, &w, 2, 0, false);
        assert_eq!(out.shape(), Shape::new(1, 2, 2));
        assert_eq!(out[(0, 0, 0)], 0.0);
        assert_eq!(out[(0, 1, 1)], 10.0);
    }

    #[test]
    fn bias_is_added_once() {
        let mut w = ConvWeights::zeros(2, 1, 1);
        w.bias = vec![1.5, -2.0];
        let input = Tensor::zeros(1, 2, 2);
        let out = conv2d_f32(&input, &w, 1, 0, false);
        assert_eq!(out[(0, 0, 0)], 1.5);
        assert_eq!(out[(1, 1, 1)], -2.0);
    }

    #[test]
    fn quant_conv_tracks_float_conv() {
        // Quantize a small random-ish layer and check the quantized output
        // dequantizes close to the float output.
        let in_c = 3;
        let out_c = 4;
        let mut w = ConvWeights::zeros(out_c, in_c, 3);
        for (i, v) in w.w.iter_mut().enumerate() {
            *v = ((i as f32 * 0.37).sin()) * 0.2;
        }
        let input = Tensor::from_fn(in_c, 6, 6, |c, y, x| ((c + y * 6 + x) as f32 * 0.71).cos());

        let float_out = conv2d_f32(&input, &w, 1, 1, true);

        let in_q = QuantParams::from_max_abs(input.as_slice());
        let w_q = QuantParams::from_max_abs(&w.w);
        let out_q = QuantParams::from_max_abs(float_out.as_slice());
        let qw = QuantConvWeights::new(
            out_c,
            in_c,
            3,
            w.w.iter().map(|&v| w_q.quantize(v)).collect(),
            w.bias.iter().map(|&b| (b / (in_q.scale * w_q.scale)) as i64).collect(),
            Requantizer::from_ratio((in_q.scale * w_q.scale / out_q.scale) as f64),
            true,
        );
        let input_q = input.map(|v| in_q.quantize(v));
        let quant_out = conv2d_quant(&input_q, &qw, 1, 1);

        for (f, q) in float_out.as_slice().iter().zip(quant_out.as_slice()) {
            let deq = out_q.dequantize(*q);
            assert!((f - deq).abs() < out_q.scale * 4.0, "float {f} vs dequant {deq}");
        }
    }

    #[test]
    fn zero_weights_contribute_nothing() {
        // A half-zero weight tensor must give identical results whether
        // zeros are skipped (conv2d_quant skips) or multiplied.
        let qw = QuantConvWeights::new(
            1,
            1,
            3,
            (0..9)
                .map(|i| if i % 2 == 0 { Sm8::from_i32_saturating(i - 4) } else { Sm8::ZERO })
                .collect(),
            vec![3],
            Requantizer::IDENTITY,
            false,
        );
        let input = Tensor::from_fn(1, 5, 5, |_, y, x| Sm8::from_i32_saturating((y * 5 + x) as i32 - 12));
        let out = conv2d_quant(&input, &qw, 1, 1);
        // Manual check at center position (2,2).
        let mut acc = 3i64;
        for ky in 0..3usize {
            for kx in 0..3usize {
                let wv = (ky * 3 + kx) as i32 - 4;
                if (ky * 3 + kx) % 2 == 0 {
                    let iy = 2 + ky - 1;
                    let ix = 2 + kx - 1;
                    acc += (wv * ((iy * 5 + ix) as i32 - 12)) as i64;
                }
            }
        }
        assert_eq!(out[(0, 2, 2)].to_i32() as i64, acc.clamp(-127, 127));
    }

    #[test]
    fn filter_nnz_counts() {
        let qw = QuantConvWeights::new(
            2,
            1,
            3,
            (0..18)
                .map(|i| if i < 9 { Sm8::from_i32_saturating(1) } else { Sm8::ZERO })
                .collect(),
            vec![0, 0],
            Requantizer::IDENTITY,
            false,
        );
        assert_eq!(qw.filter_nnz(0, 0), 9);
        assert_eq!(qw.filter_nnz(1, 0), 0);
        assert_eq!(qw.output_filter_nnz(0), 9);
        assert_eq!(qw.density(), 0.5);
    }

    #[test]
    fn nnz_cache_survives_clone_and_invalidation() {
        let mut qw = QuantConvWeights::new(
            1,
            2,
            3,
            (0..18).map(|i| Sm8::from_i32_saturating(i % 3)).collect(),
            vec![0],
            Requantizer::IDENTITY,
            false,
        );
        assert_eq!(qw.filter_nnz(0, 0), 6);
        assert_eq!(qw.clone().filter_nnz(0, 1), 6);
        // In-place mutation through the public field requires invalidation.
        qw.w.iter_mut().for_each(|w| *w = Sm8::ZERO);
        qw.invalidate_caches();
        assert_eq!(qw.output_filter_nnz(0), 0);
        assert_eq!(qw.density(), 0.0);
    }

    #[test]
    fn taps_cache_survives_invalidation_and_matches_packed_taps() {
        let mut qw = synthetic_qw(2, 2, 3, 11, false);
        // Raw taps fold no pad; packed_taps(p) is the same set shifted.
        let raw: Vec<Vec<(u8, u8, Sm8)>> = qw.raw_taps().to_vec();
        for pad in 0..3usize {
            let shifted = qw.packed_taps(pad);
            for (r, s) in raw.iter().zip(&shifted) {
                assert_eq!(r.len(), s.len());
                for (&(ky, kx, v), &(dy, dx, sv)) in r.iter().zip(s) {
                    assert_eq!(dy, ky as isize - pad as isize);
                    assert_eq!(dx, kx as isize - pad as isize);
                    assert_eq!(v, sv);
                }
            }
        }
        // After zeroing the weights and invalidating, the taps disappear.
        qw.w.iter_mut().for_each(|w| *w = Sm8::ZERO);
        qw.invalidate_caches();
        assert!(qw.raw_taps().iter().all(|t| t.is_empty()));
    }

    fn synthetic_qw(out_c: usize, in_c: usize, k: usize, seed: u64, relu: bool) -> QuantConvWeights {
        QuantConvWeights::new(
            out_c,
            in_c,
            k,
            (0..out_c * in_c * k * k)
                .map(|i| {
                    let h = (i as u64).wrapping_mul(seed | 1).wrapping_add(seed >> 3);
                    if h.is_multiple_of(3) {
                        Sm8::ZERO
                    } else {
                        Sm8::from_i32_saturating(((h >> 8) % 255) as i32 - 127)
                    }
                })
                .collect(),
            (0..out_c as i64).map(|o| o * 13 - 5).collect(),
            Requantizer::from_ratio(1.0 / 8.0),
            relu,
        )
    }

    #[test]
    fn pooled_conv_matches_single_threaded_bit_exact() {
        let qw = synthetic_qw(7, 3, 3, 97, true);
        let input = Tensor::from_fn(3, 9, 9, |c, y, x| {
            Sm8::from_i32_saturating(((c * 131 + y * 17 + x * 3) % 255) as i32 - 127)
        });
        let mut want = Tensor::zeros(1, 1, 1);
        let mut acc = Vec::new();
        conv2d_quant_into(&input, &qw, 1, 1, KernelTier::Scalar, &mut acc, &mut want);
        for threads in [1, 2, 4] {
            let pool = crate::par::ConvPool::new(threads);
            let mut got = Tensor::zeros(1, 1, 1);
            let mut acc = Vec::new();
            conv2d_quant_into_pool(&input, &qw, 1, 1, KernelTier::Scalar, &pool, &mut acc, &mut got);
            assert_eq!(got, want, "threads {threads}");
            // Per-worker arena slices: memory is threads * plane, no more.
            assert_eq!(acc.len(), threads * want.shape().h * want.shape().w);
        }
    }

    #[test]
    fn identical_content_shares_one_cache_entry() {
        let a = synthetic_qw(3, 2, 3, 4242, false);
        let b = a.clone();
        let c = synthetic_qw(3, 2, 3, 4242, false); // equal content, separate instance
        let d = synthetic_qw(3, 2, 3, 5000, false); // different content
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), c.fingerprint());
        assert_ne!(a.fingerprint(), d.fingerprint());
        // a/b/c resolve to the *same* shared artifact (pointer-identical
        // tap storage); d, with different content, gets its own. Counter
        // deltas aren't asserted here — the cache is process-global and
        // other tests run concurrently.
        assert!(std::ptr::eq(a.raw_taps().as_ptr(), b.raw_taps().as_ptr()));
        assert!(std::ptr::eq(a.raw_taps().as_ptr(), c.raw_taps().as_ptr()));
        assert!(!std::ptr::eq(a.raw_taps().as_ptr(), d.raw_taps().as_ptr()));
        let s = tap_cache_stats();
        assert!(s.misses >= 2 && s.entries >= 2 && s.bytes > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn packed_conv_is_bit_exact_vs_dense(
            out_c in 1usize..5,
            in_c in 1usize..4,
            hw in 3usize..9,
            k in 1usize..6, // covers the PackedTile path (k<=4) and the fallback (k=5)
            pad in 0usize..2,
            stride in 1usize..3,
            seed in 0u64..500,
        ) {
            prop_assume!(hw + 2 * pad >= k);
            let qw = synthetic_qw(out_c, in_c, k, seed, seed % 2 == 0);
            let input = Tensor::from_fn(in_c, hw, hw, |c, y, x| {
                Sm8::from_i32_saturating((((c * 131 + y * 17 + x * 3) as u64 ^ seed) % 255) as i32 - 127)
            });
            let dense = conv2d_quant_dense(&input, &qw, stride, pad);
            let packed = conv2d_quant(&input, &qw, stride, pad);
            prop_assert_eq!(dense, packed);
        }

        #[test]
        fn nnz_cache_matches_rescan(
            out_c in 1usize..6,
            in_c in 1usize..5,
            k in 1usize..5,
            seed in 0u64..500,
        ) {
            let qw = synthetic_qw(out_c, in_c, k, seed, false);
            for o in 0..out_c {
                let mut total = 0;
                for i in 0..in_c {
                    let scan = qw.filter(o, i).iter().filter(|v| !v.is_zero()).count();
                    prop_assert_eq!(qw.filter_nnz(o, i), scan);
                    total += scan;
                }
                prop_assert_eq!(qw.output_filter_nnz(o), total);
            }
        }
    }
}
