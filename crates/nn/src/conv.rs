//! Convolution reference operators: float and integer-exact quantized.

use zskip_quant::{Requantizer, Sm8};
use zskip_tensor::{Shape, Tensor};

/// Float convolution weights for one layer, `[out_c][in_c][k][k]` row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvWeights {
    /// Output channels.
    pub out_c: usize,
    /// Input channels.
    pub in_c: usize,
    /// Kernel edge length.
    pub k: usize,
    /// Weight values, `out_c * in_c * k * k` entries.
    pub w: Vec<f32>,
    /// Per-output-channel bias.
    pub bias: Vec<f32>,
}

impl ConvWeights {
    /// All-zero weights of the given geometry.
    pub fn zeros(out_c: usize, in_c: usize, k: usize) -> Self {
        ConvWeights { out_c, in_c, k, w: vec![0.0; out_c * in_c * k * k], bias: vec![0.0; out_c] }
    }

    /// Weight at `[o][i][ky][kx]`.
    #[inline]
    pub fn at(&self, o: usize, i: usize, ky: usize, kx: usize) -> f32 {
        self.w[((o * self.in_c + i) * self.k + ky) * self.k + kx]
    }

    /// Mutable weight at `[o][i][ky][kx]`.
    #[inline]
    pub fn at_mut(&mut self, o: usize, i: usize, ky: usize, kx: usize) -> &mut f32 {
        &mut self.w[((o * self.in_c + i) * self.k + ky) * self.k + kx]
    }

    /// The `k*k` filter slice for `(o, i)`.
    pub fn filter(&self, o: usize, i: usize) -> &[f32] {
        let kk = self.k * self.k;
        let base = (o * self.in_c + i) * kk;
        &self.w[base..base + kk]
    }
}

/// Quantized (sign+magnitude) convolution weights plus the integer epilogue
/// parameters; the exact operands the accelerator consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantConvWeights {
    /// Output channels.
    pub out_c: usize,
    /// Input channels.
    pub in_c: usize,
    /// Kernel edge length.
    pub k: usize,
    /// Quantized weights, `[o][i][ky][kx]` row-major.
    pub w: Vec<Sm8>,
    /// Bias in accumulator domain (already scaled by `1/(s_in * s_w)`).
    pub bias_acc: Vec<i64>,
    /// The multiply-shift requantizer for the output write-back.
    pub requant: Requantizer,
    /// Whether ReLU is fused before requantization.
    pub relu: bool,
}

impl QuantConvWeights {
    /// Weight at `[o][i][ky][kx]`.
    #[inline]
    pub fn at(&self, o: usize, i: usize, ky: usize, kx: usize) -> Sm8 {
        self.w[((o * self.in_c + i) * self.k + ky) * self.k + kx]
    }

    /// Non-zero weight count of filter `(o, i)`.
    pub fn filter_nnz(&self, o: usize, i: usize) -> usize {
        let kk = self.k * self.k;
        let base = (o * self.in_c + i) * kk;
        self.w[base..base + kk].iter().filter(|v| !v.is_zero()).count()
    }

    /// Total non-zero weights of output filter `o` across all input
    /// channels (the quantity filter grouping balances).
    pub fn output_filter_nnz(&self, o: usize) -> usize {
        (0..self.in_c).map(|i| self.filter_nnz(o, i)).sum()
    }

    /// Overall weight density in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.w.is_empty() {
            return 0.0;
        }
        self.w.iter().filter(|v| !v.is_zero()).count() as f64 / self.w.len() as f64
    }
}

/// Float reference convolution (stride/pad general), with optional ReLU.
pub fn conv2d_f32(input: &Tensor<f32>, weights: &ConvWeights, stride: usize, pad: usize, relu: bool) -> Tensor<f32> {
    let s = input.shape();
    assert_eq!(s.c, weights.in_c, "input channels mismatch");
    let out_h = (s.h + 2 * pad - weights.k) / stride + 1;
    let out_w = (s.w + 2 * pad - weights.k) / stride + 1;
    let mut out = Tensor::zeros(weights.out_c, out_h, out_w);
    for o in 0..weights.out_c {
        for y in 0..out_h {
            for x in 0..out_w {
                let mut acc = weights.bias[o];
                for i in 0..s.c {
                    for ky in 0..weights.k {
                        for kx in 0..weights.k {
                            let iy = (y * stride + ky) as isize - pad as isize;
                            let ix = (x * stride + kx) as isize - pad as isize;
                            acc += weights.at(o, i, ky, kx) * input.get_or(i, iy, ix, 0.0);
                        }
                    }
                }
                out[(o, y, x)] = if relu { acc.max(0.0) } else { acc };
            }
        }
    }
    out
}

/// Integer-exact quantized convolution: accumulates `i64`, applies the fused
/// ReLU + multiply-shift epilogue. This is the **golden model** — the
/// simulated accelerator must reproduce its output bit-for-bit.
pub fn conv2d_quant(input: &Tensor<Sm8>, weights: &QuantConvWeights, stride: usize, pad: usize) -> Tensor<Sm8> {
    let s = input.shape();
    assert_eq!(s.c, weights.in_c, "input channels mismatch");
    let out_h = (s.h + 2 * pad - weights.k) / stride + 1;
    let out_w = (s.w + 2 * pad - weights.k) / stride + 1;
    let mut out = Tensor::zeros(weights.out_c, out_h, out_w);
    for o in 0..weights.out_c {
        for y in 0..out_h {
            for x in 0..out_w {
                let mut acc: i64 = weights.bias_acc[o];
                for i in 0..s.c {
                    for ky in 0..weights.k {
                        for kx in 0..weights.k {
                            let w = weights.at(o, i, ky, kx);
                            if w.is_zero() {
                                continue; // zero-skipping changes nothing numerically
                            }
                            let iy = (y * stride + ky) as isize - pad as isize;
                            let ix = (x * stride + kx) as isize - pad as isize;
                            let v = input.get_or(i, iy, ix, Sm8::ZERO);
                            acc += w.mul_exact(v) as i64;
                        }
                    }
                }
                out[(o, y, x)] = if weights.relu {
                    weights.requant.apply_relu(acc)
                } else {
                    weights.requant.apply(acc)
                };
            }
        }
    }
    out
}

/// Output shape of [`conv2d_quant`] / [`conv2d_f32`] for an input shape.
pub fn conv_output_shape(input: Shape, weights_out_c: usize, k: usize, stride: usize, pad: usize) -> Shape {
    Shape::new(weights_out_c, (input.h + 2 * pad - k) / stride + 1, (input.w + 2 * pad - k) / stride + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zskip_quant::QuantParams;

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 kernel of weight 1.0: output equals input.
        let mut w = ConvWeights::zeros(1, 1, 1);
        w.w[0] = 1.0;
        let input = Tensor::from_fn(1, 3, 3, |_, y, x| (y * 3 + x) as f32);
        let out = conv2d_f32(&input, &w, 1, 0, false);
        assert_eq!(out, input);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut w = ConvWeights::zeros(1, 1, 1);
        w.w[0] = -1.0;
        let input = Tensor::from_fn(1, 2, 2, |_, y, x| (y + x) as f32);
        let out = conv2d_f32(&input, &w, 1, 0, true);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn padding_sees_zeros() {
        // 3x3 all-ones kernel over a 1x1 input with pad 1: every output
        // position sums the single input value once.
        let mut w = ConvWeights::zeros(1, 1, 3);
        w.w.iter_mut().for_each(|v| *v = 1.0);
        let mut input = Tensor::zeros(1, 1, 1);
        input[(0, 0, 0)] = 5.0;
        let out = conv2d_f32(&input, &w, 1, 1, false);
        assert_eq!(out.shape(), Shape::new(1, 1, 1));
        assert_eq!(out[(0, 0, 0)], 5.0);
    }

    #[test]
    fn stride_subsamples() {
        let mut w = ConvWeights::zeros(1, 1, 1);
        w.w[0] = 1.0;
        let input = Tensor::from_fn(1, 4, 4, |_, y, x| (y * 4 + x) as f32);
        let out = conv2d_f32(&input, &w, 2, 0, false);
        assert_eq!(out.shape(), Shape::new(1, 2, 2));
        assert_eq!(out[(0, 0, 0)], 0.0);
        assert_eq!(out[(0, 1, 1)], 10.0);
    }

    #[test]
    fn bias_is_added_once() {
        let mut w = ConvWeights::zeros(2, 1, 1);
        w.bias = vec![1.5, -2.0];
        let input = Tensor::zeros(1, 2, 2);
        let out = conv2d_f32(&input, &w, 1, 0, false);
        assert_eq!(out[(0, 0, 0)], 1.5);
        assert_eq!(out[(1, 1, 1)], -2.0);
    }

    #[test]
    fn quant_conv_tracks_float_conv() {
        // Quantize a small random-ish layer and check the quantized output
        // dequantizes close to the float output.
        let in_c = 3;
        let out_c = 4;
        let mut w = ConvWeights::zeros(out_c, in_c, 3);
        for (i, v) in w.w.iter_mut().enumerate() {
            *v = ((i as f32 * 0.37).sin()) * 0.2;
        }
        let input = Tensor::from_fn(in_c, 6, 6, |c, y, x| ((c + y * 6 + x) as f32 * 0.71).cos());

        let float_out = conv2d_f32(&input, &w, 1, 1, true);

        let in_q = QuantParams::from_max_abs(input.as_slice());
        let w_q = QuantParams::from_max_abs(&w.w);
        let out_q = QuantParams::from_max_abs(float_out.as_slice());
        let qw = QuantConvWeights {
            out_c,
            in_c,
            k: 3,
            w: w.w.iter().map(|&v| w_q.quantize(v)).collect(),
            bias_acc: w.bias.iter().map(|&b| (b / (in_q.scale * w_q.scale)) as i64).collect(),
            requant: Requantizer::from_ratio((in_q.scale * w_q.scale / out_q.scale) as f64),
            relu: true,
        };
        let input_q = input.map(|v| in_q.quantize(v));
        let quant_out = conv2d_quant(&input_q, &qw, 1, 1);

        for (f, q) in float_out.as_slice().iter().zip(quant_out.as_slice()) {
            let deq = out_q.dequantize(*q);
            assert!((f - deq).abs() < out_q.scale * 4.0, "float {f} vs dequant {deq}");
        }
    }

    #[test]
    fn zero_weights_contribute_nothing() {
        // A half-zero weight tensor must give identical results whether
        // zeros are skipped (conv2d_quant skips) or multiplied.
        let qw = QuantConvWeights {
            out_c: 1,
            in_c: 1,
            k: 3,
            w: (0..9)
                .map(|i| if i % 2 == 0 { Sm8::from_i32_saturating(i as i32 - 4) } else { Sm8::ZERO })
                .collect(),
            bias_acc: vec![3],
            requant: Requantizer::IDENTITY,
            relu: false,
        };
        let input = Tensor::from_fn(1, 5, 5, |_, y, x| Sm8::from_i32_saturating((y * 5 + x) as i32 - 12));
        let out = conv2d_quant(&input, &qw, 1, 1);
        // Manual check at center position (2,2).
        let mut acc = 3i64;
        for ky in 0..3usize {
            for kx in 0..3usize {
                let wv = (ky * 3 + kx) as i32 - 4;
                if (ky * 3 + kx) % 2 == 0 {
                    let iy = 2 + ky - 1;
                    let ix = 2 + kx - 1;
                    acc += (wv * ((iy * 5 + ix) as i32 - 12)) as i64;
                }
            }
        }
        assert_eq!(out[(0, 2, 2)].to_i32() as i64, acc.clamp(-127, 127));
    }

    #[test]
    fn filter_nnz_counts() {
        let qw = QuantConvWeights {
            out_c: 2,
            in_c: 1,
            k: 3,
            w: (0..18)
                .map(|i| if i < 9 { Sm8::from_i32_saturating(1) } else { Sm8::ZERO })
                .collect(),
            bias_acc: vec![0, 0],
            requant: Requantizer::IDENTITY,
            relu: false,
        };
        assert_eq!(qw.filter_nnz(0, 0), 9);
        assert_eq!(qw.filter_nnz(1, 0), 0);
        assert_eq!(qw.output_filter_nnz(0), 9);
        assert_eq!(qw.density(), 0.5);
    }
}
