//! Intra-image worker pool for panel-decomposed conv/GEMM kernels.
//!
//! The paper's fastest configuration exploits *instance* parallelism — two
//! accelerator instances working different stripes of one image. The
//! software analogue is [`ConvPool`]: a small pool of persistent worker
//! threads that split one layer's output-filter-map (OFM) panels across
//! cores, so a single image uses the whole host CPU instead of one core.
//!
//! # Determinism
//!
//! Work is decomposed by **whole output channel**: panel `o` covers output
//! plane `o`, and whichever worker claims it computes that plane with the
//! *identical* tap order and accumulator as the single-threaded kernel.
//! Panels never share accumulators (each worker owns a disjoint slice of
//! the `Scratch` arena's accumulator plane), so the result is bit-exact at
//! any worker count by construction — the claim order only changes *which
//! thread* computes a plane, never *how*. Property tests in
//! `tests/kernel_tiers.rs` pin this across random shapes and worker counts.
//!
//! # Zero allocation
//!
//! Dispatching a job allocates nothing: the job is published as a raw wide
//! pointer to the caller's closure under a `Mutex`/`Condvar` pair (futex
//! based on Linux — no heap), and panels are claimed with a single
//! `fetch_add` each. The only allocations are pool construction (thread
//! spawn) and the first-image growth of per-worker arena slices — both
//! warmup, covered by the counting-allocator test `tests/alloc_free.rs`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// A raw wide pointer to the caller's panel closure. Only dereferenced
/// between job publication and the job's completion barrier, while the
/// closure provably outlives the job (see [`ConvPool::run`]).
#[derive(Clone, Copy)]
struct TaskRef(*const (dyn Fn(usize, usize) + Sync));

// SAFETY: the pointee is `Sync` (required at the only construction site),
// and the pointer is only dereferenced while `run` keeps it alive.
unsafe impl Send for TaskRef {}

struct JobState {
    /// Bumped once per published job; workers track the last seq they ran.
    seq: u64,
    /// Number of panels in the current job.
    panels: usize,
    /// The current job's closure, cleared at the completion barrier.
    task: Option<TaskRef>,
    shutdown: bool,
}

struct Shared {
    job: Mutex<JobState>,
    start: Condvar,
    done: Condvar,
    /// Next unclaimed panel index (may overshoot `panels` by one per
    /// participant; claims at or past `panels` mean "no more work").
    next: AtomicUsize,
    /// Worker threads still executing the current job.
    running: AtomicUsize,
}

fn lock(m: &Mutex<JobState>) -> MutexGuard<'_, JobState> {
    // A poisoned lock means a worker panicked in a kernel — a bug the
    // oracle suite would catch; the state itself is still consistent.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A pool of persistent worker threads executing panel-decomposed kernel
/// jobs. See the [module docs](self) for the determinism and allocation
/// arguments.
///
/// `threads == 1` is the degenerate pool: no threads are spawned and
/// [`ConvPool::run`] executes inline, so single-threaded configurations
/// pay nothing.
pub struct ConvPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
    /// Serializes concurrent `run` calls (e.g. two sessions holding a
    /// cloned `Scratch` and thus one pool): the job slot fits one job.
    run_gate: Mutex<()>,
}

impl ConvPool {
    /// Creates a pool with `threads` total participants: the calling
    /// thread plus `threads - 1` spawned workers. `0` is clamped to 1.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            job: Mutex::new(JobState { seq: 0, panels: 0, task: None, shutdown: false }),
            start: Condvar::new(),
            done: Condvar::new(),
            next: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
        });
        let handles = (1..threads)
            .map(|w| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("zskip-conv-{w}"))
                    .spawn(move || worker_loop(&sh, w))
                    .expect("spawn conv pool worker")
            })
            .collect();
        ConvPool { shared, handles, threads, run_gate: Mutex::new(()) }
    }

    /// Total participants (caller + spawned workers).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The host's available parallelism (the `--threads 0` auto value).
    pub fn auto_threads() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }

    /// Runs `f(worker, panel)` for every `panel in 0..panels`, each panel
    /// exactly once, partitioned dynamically over the participants. The
    /// caller participates as worker `0`; spawned workers are `1..threads`.
    /// Blocks until every panel has completed. Allocation-free.
    ///
    /// `f` must tolerate any panel→worker assignment (the partition is
    /// claim-order dependent); bit-exactness holds when panels touch
    /// disjoint outputs and own per-worker accumulators.
    pub fn run(&self, panels: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        if self.threads == 1 || panels <= 1 {
            for p in 0..panels {
                f(0, p);
            }
            return;
        }
        let _gate = self.run_gate.lock().unwrap_or_else(|e| e.into_inner());
        let sh = &*self.shared;
        {
            let mut g = lock(&sh.job);
            sh.next.store(0, Ordering::Relaxed);
            sh.running.store(self.threads - 1, Ordering::Relaxed);
            g.panels = panels;
            // SAFETY: erasing the closure's lifetime. The completion guard
            // below blocks — even during unwinding — until every worker
            // has finished with the pointer, so it never dangles.
            g.task = Some(TaskRef(unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize, usize) + Sync + '_),
                    *const (dyn Fn(usize, usize) + Sync + 'static),
                >(f as *const _)
            }));
            g.seq += 1;
            sh.start.notify_all();
        }
        // Dropped at return *or* unwind: waits until `running == 0`, so the
        // borrow of `f` cannot escape this frame.
        let _barrier = CompletionBarrier(sh);
        loop {
            let p = sh.next.fetch_add(1, Ordering::Relaxed);
            if p >= panels {
                break;
            }
            f(0, p);
        }
    }
}

struct CompletionBarrier<'a>(&'a Shared);

impl Drop for CompletionBarrier<'_> {
    fn drop(&mut self) {
        let mut g = lock(&self.0.job);
        while self.0.running.load(Ordering::Acquire) != 0 {
            g = self.0.done.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        g.task = None;
    }
}

impl Drop for ConvPool {
    fn drop(&mut self) {
        {
            let mut g = lock(&self.shared.job);
            g.shutdown = true;
            self.shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for ConvPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConvPool").field("threads", &self.threads).finish()
    }
}

fn worker_loop(sh: &Shared, worker: usize) {
    let mut seen = 0u64;
    loop {
        let (task, panels) = {
            let mut g = lock(&sh.job);
            loop {
                if g.shutdown {
                    return;
                }
                // `task` is always `Some` while any worker has yet to see
                // the current seq: it is only cleared at the completion
                // barrier, which requires every worker's decrement first.
                if g.seq != seen {
                    if let Some(task) = g.task {
                        seen = g.seq;
                        break (task, g.panels);
                    }
                }
                g = sh.start.wait(g).unwrap_or_else(|e| e.into_inner());
            }
        };
        loop {
            let p = sh.next.fetch_add(1, Ordering::Relaxed);
            if p >= panels {
                break;
            }
            // SAFETY: `run`'s completion barrier keeps the closure alive
            // until this worker's decrement below.
            unsafe { (*task.0)(worker, p) };
        }
        // Release: publishes this worker's panel writes to the caller,
        // which acquires via the `running` load in the barrier.
        if sh.running.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = lock(&sh.job);
            sh.done.notify_all();
        }
    }
}

/// A raw pointer that may cross threads. Used to hand each pool worker its
/// *disjoint* slice of a shared output or accumulator buffer; every use
/// site carries its own disjointness `// SAFETY` argument.
#[derive(Clone, Copy)]
pub(crate) struct SendPtr<T>(*mut T);

// SAFETY: `SendPtr` is a plain address; the use sites guarantee disjoint
// access per worker/panel.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    pub(crate) fn new(p: *mut T) -> Self {
        SendPtr(p)
    }

    /// The wrapped pointer offset by `i` elements. Going through `self`
    /// (not the raw field) keeps closure captures on the `Sync` wrapper.
    ///
    /// # Safety
    /// Same contract as [`pointer::add`]: the offset must stay inside the
    /// original allocation.
    pub(crate) unsafe fn add(self, i: usize) -> *mut T {
        self.0.add(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_panel_runs_exactly_once_at_any_thread_count() {
        for threads in [1, 2, 3, 8] {
            let pool = ConvPool::new(threads);
            for panels in [0usize, 1, 2, 7, 64] {
                let hits: Vec<AtomicUsize> = (0..panels).map(|_| AtomicUsize::new(0)).collect();
                let max_worker = AtomicUsize::new(0);
                pool.run(panels, &|w, p| {
                    hits[p].fetch_add(1, Ordering::Relaxed);
                    max_worker.fetch_max(w, Ordering::Relaxed);
                });
                for (p, h) in hits.iter().enumerate() {
                    assert_eq!(h.load(Ordering::Relaxed), 1, "panel {p} threads {threads}");
                }
                assert!(max_worker.load(Ordering::Relaxed) < threads);
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = ConvPool::new(4);
        let total = AtomicU64::new(0);
        for job in 0..50u64 {
            pool.run(8, &|_, p| {
                total.fetch_add(job * 8 + p as u64, Ordering::Relaxed);
            });
        }
        let want: u64 = (0..50u64).map(|j| (0..8u64).map(|p| j * 8 + p).sum::<u64>()).sum();
        assert_eq!(total.load(Ordering::Relaxed), want);
    }

    #[test]
    fn degenerate_pool_runs_inline_on_worker_zero() {
        let pool = ConvPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert!(pool.handles.is_empty());
        let workers = AtomicUsize::new(0);
        pool.run(5, &|w, _| {
            workers.fetch_max(w + 1, Ordering::Relaxed);
        });
        assert_eq!(workers.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn zero_is_clamped_and_drop_joins_cleanly() {
        let pool = ConvPool::new(0);
        assert_eq!(pool.threads(), 1);
        drop(pool);
        let pool = ConvPool::new(3);
        pool.run(4, &|_, _| {});
        drop(pool); // must not hang
    }

    #[test]
    fn disjoint_writes_through_sendptr_partition_correctly() {
        let pool = ConvPool::new(4);
        let mut out = vec![0usize; 32];
        let ptr = SendPtr::new(out.as_mut_ptr());
        pool.run(32, &|w, p| {
            // SAFETY: each panel index is claimed exactly once, so slot `p`
            // has a single writer.
            unsafe { *ptr.add(p) = w + 100 * p };
        });
        for (p, &v) in out.iter().enumerate() {
            assert_eq!(v / 100, p);
            assert!(v % 100 < 4);
        }
    }
}
