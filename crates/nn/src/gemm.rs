//! An independent convolution implementation: im2col + GEMM.
//!
//! The accelerator's golden model is the direct convolution in
//! [`crate::conv`]. To guard the guard, this module computes the same
//! layers by the classic lowering — unroll input patches into a matrix
//! (im2col) and multiply by the filter matrix — sharing *no* loop
//! structure with the direct path. Property tests pin the two
//! implementations together, so an indexing bug in either is caught by
//! the other.

use crate::conv::{ConvWeights, QuantConvWeights};
use zskip_quant::Sm8;
use zskip_tensor::{Shape, Tensor};

/// Lowers input patches to a `(in_c * k * k) x (out_h * out_w)` matrix in
/// row-major order (one column per output position).
pub fn im2col_f32(input: &Tensor<f32>, k: usize, stride: usize, pad: usize) -> (Vec<f32>, Shape) {
    let s = input.shape();
    let out_h = (s.h + 2 * pad - k) / stride + 1;
    let out_w = (s.w + 2 * pad - k) / stride + 1;
    let rows = s.c * k * k;
    let cols = out_h * out_w;
    let mut m = vec![0f32; rows * cols];
    for c in 0..s.c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                for oy in 0..out_h {
                    for ox in 0..out_w {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        m[row * cols + oy * out_w + ox] = input.get_or(c, iy, ix, 0.0);
                    }
                }
            }
        }
    }
    (m, Shape::new(rows, out_h, out_w))
}

/// Float convolution via im2col + GEMM (`out = W x patches + bias`).
pub fn conv2d_gemm_f32(
    input: &Tensor<f32>,
    weights: &ConvWeights,
    stride: usize,
    pad: usize,
    relu: bool,
) -> Tensor<f32> {
    let (m, mshape) = im2col_f32(input, weights.k, stride, pad);
    let cols = mshape.h * mshape.w;
    let rows = mshape.c;
    let mut out = Tensor::zeros(weights.out_c, mshape.h, mshape.w);
    for o in 0..weights.out_c {
        let wrow = &weights.w[o * rows..(o + 1) * rows];
        for j in 0..cols {
            let mut acc = weights.bias[o];
            for (r, &wv) in wrow.iter().enumerate() {
                acc += wv * m[r * cols + j];
            }
            out.as_mut_slice()[o * cols + j] = if relu { acc.max(0.0) } else { acc };
        }
    }
    out
}

/// Integer-exact quantized convolution via im2col + GEMM; must agree
/// bit-for-bit with [`crate::conv::conv2d_quant`].
pub fn conv2d_gemm_quant(input: &Tensor<Sm8>, weights: &QuantConvWeights, stride: usize, pad: usize) -> Tensor<Sm8> {
    let s = input.shape();
    let k = weights.k;
    let out_h = (s.h + 2 * pad - k) / stride + 1;
    let out_w = (s.w + 2 * pad - k) / stride + 1;
    let rows = s.c * k * k;
    let cols = out_h * out_w;
    // Integer im2col.
    let mut m = vec![Sm8::ZERO; rows * cols];
    for c in 0..s.c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                for oy in 0..out_h {
                    for ox in 0..out_w {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        m[row * cols + oy * out_w + ox] = input.get_or(c, iy, ix, Sm8::ZERO);
                    }
                }
            }
        }
    }
    let mut out = Tensor::zeros(weights.out_c, out_h, out_w);
    for o in 0..weights.out_c {
        let wrow = &weights.w[o * rows..(o + 1) * rows];
        for j in 0..cols {
            let mut acc: i64 = weights.bias_acc[o];
            for (r, &wv) in wrow.iter().enumerate() {
                acc += wv.mul_exact(m[r * cols + j]) as i64;
            }
            out.as_mut_slice()[o * cols + j] =
                if weights.relu { weights.requant.apply_relu(acc) } else { weights.requant.apply(acc) };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{conv2d_f32, conv2d_quant};
    use proptest::prelude::*;
    use zskip_quant::Requantizer;

    fn float_weights(out_c: usize, in_c: usize, k: usize, seed: u64) -> ConvWeights {
        let mut w = ConvWeights::zeros(out_c, in_c, k);
        for (i, v) in w.w.iter_mut().enumerate() {
            *v = (((i as u64).wrapping_mul(seed | 1) >> 7) % 200) as f32 / 100.0 - 1.0;
        }
        for (i, b) in w.bias.iter_mut().enumerate() {
            *b = i as f32 * 0.1 - 0.2;
        }
        w
    }

    #[test]
    fn gemm_matches_direct_float() {
        let w = float_weights(4, 3, 3, 17);
        let input = Tensor::from_fn(3, 7, 9, |c, y, x| ((c * 63 + y * 9 + x) as f32 * 0.11).sin());
        for (stride, pad, relu) in [(1, 1, true), (1, 0, false), (2, 1, false)] {
            let a = conv2d_f32(&input, &w, stride, pad, relu);
            let b = conv2d_gemm_f32(&input, &w, stride, pad, relu);
            assert_eq!(a.shape(), b.shape());
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y} (stride {stride} pad {pad})");
            }
        }
    }

    #[test]
    fn im2col_shape_and_patch_content() {
        let input = Tensor::from_fn(2, 4, 4, |c, y, x| (c * 16 + y * 4 + x) as f32);
        let (m, shape) = im2col_f32(&input, 3, 1, 1);
        assert_eq!(shape, Shape::new(2 * 9, 4, 4));
        let cols = 16;
        // Center kernel tap of channel 0 at output (1,1) is input (1,1).
        let row = 4; // (c=0, ky=1, kx=1)
        assert_eq!(m[row * cols + 5], input[(0, 1, 1)]);
        // Top-left tap at output (0,0) is padding.
        assert_eq!(m[0], 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn quant_gemm_is_bit_exact_vs_direct(
            out_c in 1usize..5,
            in_c in 1usize..4,
            h in 3usize..9,
            w in 3usize..9,
            k in 1usize..4,
            pad in 0usize..2,
            seed in 0u64..500,
        ) {
            prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
            let qw = QuantConvWeights {
                out_c,
                in_c,
                k,
                w: (0..out_c * in_c * k * k)
                    .map(|i| {
                        let v = ((i as u64).wrapping_mul(seed.wrapping_mul(2654435761) | 1) >> 9) % 255;
                        Sm8::from_i32_saturating(v as i32 - 127)
                    })
                    .collect(),
                bias_acc: (0..out_c as i64).map(|o| o * 7 - 11).collect(),
                requant: Requantizer::from_ratio(1.0 / 16.0),
                relu: seed % 2 == 0,
            };
            let input = Tensor::from_fn(in_c, h, w, |c, y, x| {
                Sm8::from_i32_saturating((((c * 131 + y * 17 + x * 3) as u64 ^ seed) % 255) as i32 - 127)
            });
            let direct = conv2d_quant(&input, &qw, 1, pad);
            let gemm = conv2d_gemm_quant(&input, &qw, 1, pad);
            prop_assert_eq!(direct, gemm);
        }
    }
}
