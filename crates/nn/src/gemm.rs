//! An independent convolution implementation: im2col + GEMM.
//!
//! The accelerator's golden model is the direct convolution in
//! [`crate::conv`]. To guard the guard, this module computes the same
//! layers by the classic lowering — unroll input patches into a matrix
//! (im2col) and multiply by the filter matrix — sharing *no* loop
//! structure with the direct path. Property tests pin the two
//! implementations together, so an indexing bug in either is caught by
//! the other.
//!
//! The GEMMs are register-tiled and cache-blocked: a `4x4` micro-kernel
//! holds sixteen accumulators in registers and streams the im2col matrix
//! through fixed-size array windows (eliding per-element bounds checks).
//! Bit-exactness with the naive triple loop is preserved by construction —
//! every output element owns a single accumulator that walks the reduction
//! dimension in ascending order, so the float rounding sequence is
//! identical; the `_naive` variants stay as property-test baselines.

use crate::conv::{ConvWeights, QuantConvWeights};
use crate::par::{ConvPool, SendPtr};
use crate::simd::{self, KernelTier, GEMM_I32_CHUNK_ROWS};
use zskip_quant::Sm8;
use zskip_tensor::{Shape, Tensor};

/// Micro-kernel tile: MR output channels x NR output positions.
const MR: usize = 4;
const NR: usize = 4;

/// Lowers input patches to a `(c * k * k) x (out_h * out_w)` matrix in
/// row-major order (one column per output position). Generic over the
/// element type — the float and quantized paths share this single routine.
pub fn im2col<T: Copy + Default>(
    input: &Tensor<T>,
    k: usize,
    stride: usize,
    pad: usize,
    zero: T,
) -> (Vec<T>, Shape) {
    let s = input.shape();
    let out_h = (s.h + 2 * pad - k) / stride + 1;
    let out_w = (s.w + 2 * pad - k) / stride + 1;
    let rows = s.c * k * k;
    let cols = out_h * out_w;
    let mut m = vec![zero; rows * cols];
    for c in 0..s.c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                let dst = &mut m[row * cols..(row + 1) * cols];
                for oy in 0..out_h {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    for ox in 0..out_w {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        dst[oy * out_w + ox] = input.get_or(c, iy, ix, zero);
                    }
                }
            }
        }
    }
    (m, Shape::new(rows, out_h, out_w))
}

/// Float im2col (kept for API compatibility; forwards to [`im2col`]).
pub fn im2col_f32(input: &Tensor<f32>, k: usize, stride: usize, pad: usize) -> (Vec<f32>, Shape) {
    im2col(input, k, stride, pad, 0.0)
}

/// Whether this conv geometry makes im2col the identity: a 1x1 stride-1
/// unpadded (pointwise) convolution's patch matrix *is* the input
/// activation, channel-major — one row per input channel, one column per
/// position. ResNet projection shortcuts are exactly this shape, so the
/// quantized GEMM skips the lowering copy entirely and streams the input
/// slice straight into the row-panel kernel.
pub fn pointwise_is_identity(k: usize, stride: usize, pad: usize) -> bool {
    k == 1 && stride == 1 && pad == 0
}

/// Lowers patches for the quantized GEMM, borrowing the input directly
/// when [`pointwise_is_identity`] holds (and `force_im2col` is off).
fn lower_patches<'a>(
    input: &'a Tensor<Sm8>,
    k: usize,
    stride: usize,
    pad: usize,
    force_im2col: bool,
) -> (std::borrow::Cow<'a, [Sm8]>, Shape) {
    if pointwise_is_identity(k, stride, pad) && !force_im2col {
        let s = input.shape();
        return (std::borrow::Cow::Borrowed(input.as_slice()), Shape::new(s.c, s.h, s.w));
    }
    let (m, shape) = im2col(input, k, stride, pad, Sm8::ZERO);
    (std::borrow::Cow::Owned(m), shape)
}

/// Float convolution via im2col + blocked GEMM (`out = W x patches + bias`).
pub fn conv2d_gemm_f32(
    input: &Tensor<f32>,
    weights: &ConvWeights,
    stride: usize,
    pad: usize,
    relu: bool,
) -> Tensor<f32> {
    let (m, mshape) = im2col(input, weights.k, stride, pad, 0.0);
    let cols = mshape.h * mshape.w;
    let rows = mshape.c;
    let mut out = Tensor::zeros(weights.out_c, mshape.h, mshape.w);
    let out_slice = out.as_mut_slice();
    let w = &weights.w[..];

    let mut ob = 0;
    while ob < weights.out_c {
        if weights.out_c - ob >= MR {
            // Four filter rows, resolved to slices once per block.
            let w0 = &w[ob * rows..(ob + 1) * rows];
            let w1 = &w[(ob + 1) * rows..(ob + 2) * rows];
            let w2 = &w[(ob + 2) * rows..(ob + 3) * rows];
            let w3 = &w[(ob + 3) * rows..(ob + 4) * rows];
            let bias = [
                weights.bias[ob],
                weights.bias[ob + 1],
                weights.bias[ob + 2],
                weights.bias[ob + 3],
            ];
            let mut jb = 0;
            while jb + NR <= cols {
                // 4x4 register tile; each accumulator walks r in order, so
                // the rounding sequence matches the naive loop exactly.
                let mut acc = [[0f32; NR]; MR];
                for (mi, a) in acc.iter_mut().enumerate() {
                    *a = [bias[mi]; NR];
                }
                for r in 0..rows {
                    let mbase = r * cols + jb;
                    let mr: [f32; NR] = m[mbase..mbase + NR].try_into().expect("NR window");
                    let wv = [w0[r], w1[r], w2[r], w3[r]];
                    for (acc_row, &wvm) in acc.iter_mut().zip(&wv) {
                        for (a, &mv) in acc_row.iter_mut().zip(&mr) {
                            *a += wvm * mv;
                        }
                    }
                }
                for (mi, acc_row) in acc.iter().enumerate() {
                    let obase = (ob + mi) * cols + jb;
                    for (ni, &v) in acc_row.iter().enumerate() {
                        out_slice[obase + ni] = if relu { v.max(0.0) } else { v };
                    }
                }
                jb += NR;
            }
            // Column remainder: scalar, same reduction order.
            for o in ob..ob + MR {
                let wrow = &w[o * rows..(o + 1) * rows];
                for j in jb..cols {
                    let mut acc = weights.bias[o];
                    for (r, &wv) in wrow.iter().enumerate() {
                        acc += wv * m[r * cols + j];
                    }
                    out_slice[o * cols + j] = if relu { acc.max(0.0) } else { acc };
                }
            }
            ob += MR;
        } else {
            // Output-channel remainder: scalar rows.
            let wrow = &w[ob * rows..(ob + 1) * rows];
            for j in 0..cols {
                let mut acc = weights.bias[ob];
                for (r, &wv) in wrow.iter().enumerate() {
                    acc += wv * m[r * cols + j];
                }
                out_slice[ob * cols + j] = if relu { acc.max(0.0) } else { acc };
            }
            ob += 1;
        }
    }
    out
}

/// The original naive triple loop, kept as the property-test baseline for
/// the blocked kernel.
pub fn conv2d_gemm_f32_naive(
    input: &Tensor<f32>,
    weights: &ConvWeights,
    stride: usize,
    pad: usize,
    relu: bool,
) -> Tensor<f32> {
    let (m, mshape) = im2col(input, weights.k, stride, pad, 0.0);
    let cols = mshape.h * mshape.w;
    let rows = mshape.c;
    let mut out = Tensor::zeros(weights.out_c, mshape.h, mshape.w);
    for o in 0..weights.out_c {
        let wrow = &weights.w[o * rows..(o + 1) * rows];
        for j in 0..cols {
            let mut acc = weights.bias[o];
            for (r, &wv) in wrow.iter().enumerate() {
                acc += wv * m[r * cols + j];
            }
            out.as_mut_slice()[o * cols + j] = if relu { acc.max(0.0) } else { acc };
        }
    }
    out
}

/// Integer-exact quantized convolution via im2col + blocked GEMM; must
/// agree bit-for-bit with [`crate::conv::conv2d_quant`]. Dispatches to the
/// SIMD row-panel kernel when the runtime tier selection
/// ([`crate::simd::dispatch`]) is wider than scalar.
pub fn conv2d_gemm_quant(input: &Tensor<Sm8>, weights: &QuantConvWeights, stride: usize, pad: usize) -> Tensor<Sm8> {
    conv2d_gemm_quant_tier(input, weights, stride, pad, simd::dispatch())
}

/// [`conv2d_gemm_quant`] with an explicit kernel tier.
///
/// * [`KernelTier::Scalar`] runs the register-tiled `4x4` micro-kernel
///   below — the bit-exactness oracle.
/// * SIMD tiers run a row-panel kernel: per output channel, an `i32`
///   column-accumulator panel is updated one reduction row at a time by
///   [`crate::simd::axpy_i32`] (skipping zero weights — the software analogue
///   of the hardware's zero-weight skip), flushed into `i64` every
///   [`GEMM_I32_CHUNK_ROWS`] rows so no `i32` lane can overflow.
///
/// Integer accumulation is order-independent, so all tiers are
/// bit-identical (pinned by property test).
pub fn conv2d_gemm_quant_tier(
    input: &Tensor<Sm8>,
    weights: &QuantConvWeights,
    stride: usize,
    pad: usize,
    tier: KernelTier,
) -> Tensor<Sm8> {
    conv2d_gemm_quant_tier_impl(input, weights, stride, pad, tier, false)
}

/// [`conv2d_gemm_quant_tier`] with the pointwise fast path disabled: the
/// im2col matrix is always materialized, even for geometries where
/// [`pointwise_is_identity`] holds and the lowering is a pure copy. Kept
/// as the baseline `kernel_bench`'s `resnet_block` section measures the
/// 1x1 fast path against; results are bit-identical by construction.
pub fn conv2d_gemm_quant_tier_generic(
    input: &Tensor<Sm8>,
    weights: &QuantConvWeights,
    stride: usize,
    pad: usize,
    tier: KernelTier,
) -> Tensor<Sm8> {
    conv2d_gemm_quant_tier_impl(input, weights, stride, pad, tier, true)
}

fn conv2d_gemm_quant_tier_impl(
    input: &Tensor<Sm8>,
    weights: &QuantConvWeights,
    stride: usize,
    pad: usize,
    tier: KernelTier,
    force_im2col: bool,
) -> Tensor<Sm8> {
    if tier == KernelTier::Scalar {
        return conv2d_gemm_quant_blocked(input, weights, stride, pad, force_im2col);
    }
    let (m, mshape) = lower_patches(input, weights.k, stride, pad, force_im2col);
    let cols = mshape.h * mshape.w;
    let rows = mshape.c;
    let mut out = Tensor::zeros(weights.out_c, mshape.h, mshape.w);
    let out_slice = out.as_mut_slice();
    let mut acc64 = vec![0i64; cols];
    let mut acc32 = vec![0i32; cols];
    for o in 0..weights.out_c {
        let plane = &mut out_slice[o * cols..(o + 1) * cols];
        gemm_quant_channel(&m[..], cols, rows, weights, o, tier, &mut acc64, &mut acc32, plane);
    }
    out
}

/// One output channel of the SIMD row-panel quantized GEMM: the shared
/// body of [`conv2d_gemm_quant_tier`] and [`conv2d_gemm_quant_pool`]. Each
/// channel owns its accumulator panel and walks the reduction rows in
/// ascending order, so the channel's result is independent of which thread
/// (or how many) computes the other channels.
#[allow(clippy::too_many_arguments)]
fn gemm_quant_channel(
    m: &[Sm8],
    cols: usize,
    rows: usize,
    weights: &QuantConvWeights,
    o: usize,
    tier: KernelTier,
    acc64: &mut [i64],
    acc32: &mut [i32],
    out_plane: &mut [Sm8],
) {
    let wrow = &weights.w[o * rows..(o + 1) * rows];
    acc64.fill(weights.bias_acc[o]);
    acc32.fill(0);
    let mut pending = 0usize;
    for (r, &wv) in wrow.iter().enumerate() {
        let wv = wv.to_i32();
        if wv == 0 {
            continue;
        }
        simd::axpy_i32(tier, acc32, &m[r * cols..(r + 1) * cols], wv);
        pending += 1;
        if pending == GEMM_I32_CHUNK_ROWS {
            for (a64, a32) in acc64.iter_mut().zip(acc32.iter_mut()) {
                *a64 += *a32 as i64;
                *a32 = 0;
            }
            pending = 0;
        }
    }
    if pending > 0 {
        for (a64, a32) in acc64.iter_mut().zip(acc32.iter()) {
            *a64 += *a32 as i64;
        }
    }
    for (dst, &a) in out_plane.iter_mut().zip(acc64.iter()) {
        *dst = if weights.relu { weights.requant.apply_relu(a) } else { weights.requant.apply(a) };
    }
}

/// [`conv2d_gemm_quant_tier`] with the output channels chunked across an
/// intra-image worker pool: each participant takes a contiguous channel
/// range and runs `gemm_quant_channel` per channel with its own
/// accumulator panels. Bit-identical to the single-threaded row-panel
/// kernel at any worker count (channels are computed by the same body in
/// the same reduction order — only the executing thread varies). The
/// scalar tier uses the row-panel body too (not the blocked micro-kernel);
/// integer accumulation keeps that bit-exact as well.
pub fn conv2d_gemm_quant_pool(
    input: &Tensor<Sm8>,
    weights: &QuantConvWeights,
    stride: usize,
    pad: usize,
    tier: KernelTier,
    pool: &ConvPool,
) -> Tensor<Sm8> {
    let (m, mshape) = lower_patches(input, weights.k, stride, pad, false);
    let cols = mshape.h * mshape.w;
    let rows = mshape.c;
    let mut out = Tensor::zeros(weights.out_c, mshape.h, mshape.w);
    let out_ptr = SendPtr::new(out.as_mut_slice().as_mut_ptr());
    let panels = pool.threads().min(weights.out_c.max(1));
    let per = weights.out_c.div_ceil(panels);
    let m = &m[..];
    pool.run(panels, &|_, panel| {
        let o_lo = panel * per;
        let o_hi = ((panel + 1) * per).min(weights.out_c);
        // The GEMM path allocates per call anyway (im2col); per-panel
        // accumulators keep it simple. The allocation-free path is the
        // direct conv in `crate::conv`.
        let mut acc64 = vec![0i64; cols];
        let mut acc32 = vec![0i32; cols];
        for o in o_lo..o_hi {
            // SAFETY: panels own disjoint channel ranges, so plane `o` has
            // a single writer; `o < out_c` keeps it in bounds.
            let plane =
                unsafe { std::slice::from_raw_parts_mut(out_ptr.add(o * cols), cols) };
            gemm_quant_channel(m, cols, rows, weights, o, tier, &mut acc64, &mut acc32, plane);
        }
    });
    out
}

/// The register-tiled scalar GEMM (the [`KernelTier::Scalar`] body).
fn conv2d_gemm_quant_blocked(
    input: &Tensor<Sm8>,
    weights: &QuantConvWeights,
    stride: usize,
    pad: usize,
    force_im2col: bool,
) -> Tensor<Sm8> {
    let (m, mshape) = lower_patches(input, weights.k, stride, pad, force_im2col);
    let cols = mshape.h * mshape.w;
    let rows = mshape.c;
    let mut out = Tensor::zeros(weights.out_c, mshape.h, mshape.w);
    let out_slice = out.as_mut_slice();
    let w = &weights.w[..];
    let epilogue = |acc: i64| {
        if weights.relu {
            weights.requant.apply_relu(acc)
        } else {
            weights.requant.apply(acc)
        }
    };

    let mut ob = 0;
    while ob < weights.out_c {
        if weights.out_c - ob >= MR {
            let w0 = &w[ob * rows..(ob + 1) * rows];
            let w1 = &w[(ob + 1) * rows..(ob + 2) * rows];
            let w2 = &w[(ob + 2) * rows..(ob + 3) * rows];
            let w3 = &w[(ob + 3) * rows..(ob + 4) * rows];
            let bias = [
                weights.bias_acc[ob],
                weights.bias_acc[ob + 1],
                weights.bias_acc[ob + 2],
                weights.bias_acc[ob + 3],
            ];
            let mut jb = 0;
            while jb + NR <= cols {
                let mut acc = [[0i64; NR]; MR];
                for (mi, a) in acc.iter_mut().enumerate() {
                    *a = [bias[mi]; NR];
                }
                for r in 0..rows {
                    let mbase = r * cols + jb;
                    let mr: [Sm8; NR] = m[mbase..mbase + NR].try_into().expect("NR window");
                    let wv = [w0[r], w1[r], w2[r], w3[r]];
                    for (acc_row, &wvm) in acc.iter_mut().zip(&wv) {
                        for (a, &mv) in acc_row.iter_mut().zip(&mr) {
                            *a += wvm.mul_exact(mv) as i64;
                        }
                    }
                }
                for (mi, acc_row) in acc.iter().enumerate() {
                    let obase = (ob + mi) * cols + jb;
                    for (ni, &v) in acc_row.iter().enumerate() {
                        out_slice[obase + ni] = epilogue(v);
                    }
                }
                jb += NR;
            }
            for o in ob..ob + MR {
                let wrow = &w[o * rows..(o + 1) * rows];
                for j in jb..cols {
                    let mut acc: i64 = weights.bias_acc[o];
                    for (r, &wv) in wrow.iter().enumerate() {
                        acc += wv.mul_exact(m[r * cols + j]) as i64;
                    }
                    out_slice[o * cols + j] = epilogue(acc);
                }
            }
            ob += MR;
        } else {
            let wrow = &w[ob * rows..(ob + 1) * rows];
            for j in 0..cols {
                let mut acc: i64 = weights.bias_acc[ob];
                for (r, &wv) in wrow.iter().enumerate() {
                    acc += wv.mul_exact(m[r * cols + j]) as i64;
                }
                out_slice[ob * cols + j] = epilogue(acc);
            }
            ob += 1;
        }
    }
    out
}

/// The original naive quantized GEMM, kept as the property-test baseline.
pub fn conv2d_gemm_quant_naive(
    input: &Tensor<Sm8>,
    weights: &QuantConvWeights,
    stride: usize,
    pad: usize,
) -> Tensor<Sm8> {
    let (m, mshape) = im2col(input, weights.k, stride, pad, Sm8::ZERO);
    let cols = mshape.h * mshape.w;
    let rows = mshape.c;
    let mut out = Tensor::zeros(weights.out_c, mshape.h, mshape.w);
    for o in 0..weights.out_c {
        let wrow = &weights.w[o * rows..(o + 1) * rows];
        for j in 0..cols {
            let mut acc: i64 = weights.bias_acc[o];
            for (r, &wv) in wrow.iter().enumerate() {
                acc += wv.mul_exact(m[r * cols + j]) as i64;
            }
            out.as_mut_slice()[o * cols + j] =
                if weights.relu { weights.requant.apply_relu(acc) } else { weights.requant.apply(acc) };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{conv2d_f32, conv2d_quant};
    use proptest::prelude::*;
    use zskip_quant::Requantizer;

    fn float_weights(out_c: usize, in_c: usize, k: usize, seed: u64) -> ConvWeights {
        let mut w = ConvWeights::zeros(out_c, in_c, k);
        for (i, v) in w.w.iter_mut().enumerate() {
            *v = (((i as u64).wrapping_mul(seed | 1) >> 7) % 200) as f32 / 100.0 - 1.0;
        }
        for (i, b) in w.bias.iter_mut().enumerate() {
            *b = i as f32 * 0.1 - 0.2;
        }
        w
    }

    fn quant_weights(out_c: usize, in_c: usize, k: usize, seed: u64) -> QuantConvWeights {
        QuantConvWeights::new(
            out_c,
            in_c,
            k,
            (0..out_c * in_c * k * k)
                .map(|i| {
                    let v = ((i as u64).wrapping_mul(seed.wrapping_mul(2654435761) | 1) >> 9) % 255;
                    Sm8::from_i32_saturating(v as i32 - 127)
                })
                .collect(),
            (0..out_c as i64).map(|o| o * 7 - 11).collect(),
            Requantizer::from_ratio(1.0 / 16.0),
            seed.is_multiple_of(2),
        )
    }

    #[test]
    fn gemm_matches_direct_float() {
        let w = float_weights(4, 3, 3, 17);
        let input = Tensor::from_fn(3, 7, 9, |c, y, x| ((c * 63 + y * 9 + x) as f32 * 0.11).sin());
        for (stride, pad, relu) in [(1, 1, true), (1, 0, false), (2, 1, false)] {
            let a = conv2d_f32(&input, &w, stride, pad, relu);
            let b = conv2d_gemm_f32(&input, &w, stride, pad, relu);
            assert_eq!(a.shape(), b.shape());
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y} (stride {stride} pad {pad})");
            }
        }
    }

    #[test]
    fn im2col_shape_and_patch_content() {
        let input = Tensor::from_fn(2, 4, 4, |c, y, x| (c * 16 + y * 4 + x) as f32);
        let (m, shape) = im2col_f32(&input, 3, 1, 1);
        assert_eq!(shape, Shape::new(2 * 9, 4, 4));
        let cols = 16;
        // Center kernel tap of channel 0 at output (1,1) is input (1,1).
        let row = 4; // (c=0, ky=1, kx=1)
        assert_eq!(m[row * cols + 5], input[(0, 1, 1)]);
        // Top-left tap at output (0,0) is padding.
        assert_eq!(m[0], 0.0);
    }

    #[test]
    fn generic_im2col_matches_float_path() {
        let input = Tensor::from_fn(2, 5, 6, |c, y, x| (c * 30 + y * 6 + x) as f32 * 0.5 - 7.0);
        let (a, ashape) = im2col_f32(&input, 3, 2, 1);
        let (b, bshape) = im2col(&input, 3, 2, 1, 0.0f32);
        assert_eq!(ashape, bshape);
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn quant_gemm_is_bit_exact_vs_direct(
            out_c in 1usize..5,
            in_c in 1usize..4,
            h in 3usize..9,
            w in 3usize..9,
            k in 1usize..4,
            pad in 0usize..2,
            seed in 0u64..500,
        ) {
            prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
            let qw = quant_weights(out_c, in_c, k, seed);
            let input = Tensor::from_fn(in_c, h, w, |c, y, x| {
                Sm8::from_i32_saturating((((c * 131 + y * 17 + x * 3) as u64 ^ seed) % 255) as i32 - 127)
            });
            let direct = conv2d_quant(&input, &qw, 1, pad);
            let gemm = conv2d_gemm_quant(&input, &qw, 1, pad);
            prop_assert_eq!(direct, gemm);
        }

        // Blocked vs. naive, FLOAT: exact f32 equality. The blocked kernel
        // must preserve the naive accumulation order per output element.
        #[test]
        fn blocked_f32_gemm_is_bit_exact_vs_naive(
            out_c in 1usize..10, // crosses the MR=4 boundary and remainders
            in_c in 1usize..4,
            h in 3usize..10,
            w in 3usize..10,
            k in 1usize..4,
            pad in 0usize..2,
            stride in 1usize..3,
            seed in 0u64..500,
        ) {
            prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
            let cw = float_weights(out_c, in_c, k, seed | 1);
            let input = Tensor::from_fn(in_c, h, w, |c, y, x| {
                (((c * 67 + y * 13 + x * 5) as u64 ^ seed) % 199) as f32 * 0.013 - 1.2
            });
            let relu = seed % 2 == 0;
            let naive = conv2d_gemm_f32_naive(&input, &cw, stride, pad, relu);
            let blocked = conv2d_gemm_f32(&input, &cw, stride, pad, relu);
            prop_assert_eq!(naive.shape(), blocked.shape());
            // Bit-exact: compare raw bits, not approximate equality.
            for (a, b) in naive.as_slice().iter().zip(blocked.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        // Every reachable SIMD tier vs. the scalar blocked kernel: exact.
        #[test]
        fn simd_quant_gemm_is_bit_exact_vs_scalar(
            out_c in 1usize..8,
            in_c in 1usize..4,
            hw in 3usize..10,
            k in 1usize..4,
            pad in 0usize..2,
            stride in 1usize..3,
            seed in 0u64..500,
        ) {
            prop_assume!(hw + 2 * pad >= k);
            let qw = quant_weights(out_c, in_c, k, seed);
            let input = Tensor::from_fn(in_c, hw, hw, |c, y, x| {
                Sm8::from_i32_saturating((((c * 53 + y * 19 + x * 5) as u64 ^ seed) % 255) as i32 - 127)
            });
            let scalar = conv2d_gemm_quant_tier(&input, &qw, stride, pad, crate::simd::KernelTier::Scalar);
            for tier in crate::simd::KernelTier::supported() {
                let got = conv2d_gemm_quant_tier(&input, &qw, stride, pad, tier);
                prop_assert_eq!(&scalar, &got, "tier {}", tier);
            }
        }

        // Blocked vs. naive, QUANT: i64 accumulation is order-exact.
        #[test]
        fn blocked_quant_gemm_is_bit_exact_vs_naive(
            out_c in 1usize..10,
            in_c in 1usize..4,
            hw in 3usize..10,
            k in 1usize..4,
            pad in 0usize..2,
            stride in 1usize..3,
            seed in 0u64..500,
        ) {
            prop_assume!(hw + 2 * pad >= k);
            let qw = quant_weights(out_c, in_c, k, seed);
            let input = Tensor::from_fn(in_c, hw, hw, |c, y, x| {
                Sm8::from_i32_saturating((((c * 37 + y * 11 + x * 7) as u64 ^ seed) % 255) as i32 - 127)
            });
            let naive = conv2d_gemm_quant_naive(&input, &qw, stride, pad);
            let blocked = conv2d_gemm_quant(&input, &qw, stride, pad);
            prop_assert_eq!(naive, blocked);
        }

        // The 1x1 fast path (borrowed input as the patch matrix) vs. the
        // forced-im2col generic path vs. naive: all bit-identical.
        #[test]
        fn pointwise_fast_path_is_bit_exact(
            out_c in 1usize..8,
            in_c in 1usize..5,
            hw in 2usize..12,
            seed in 0u64..500,
        ) {
            let qw = quant_weights(out_c, in_c, 1, seed);
            let input = Tensor::from_fn(in_c, hw, hw, |c, y, x| {
                Sm8::from_i32_saturating((((c * 97 + y * 23 + x * 3) as u64 ^ seed) % 255) as i32 - 127)
            });
            let naive = conv2d_gemm_quant_naive(&input, &qw, 1, 0);
            for tier in crate::simd::KernelTier::supported() {
                let fast = conv2d_gemm_quant_tier(&input, &qw, 1, 0, tier);
                let generic = conv2d_gemm_quant_tier_generic(&input, &qw, 1, 0, tier);
                prop_assert_eq!(&naive, &fast, "fast path, tier {}", tier);
                prop_assert_eq!(&naive, &generic, "generic path, tier {}", tier);
            }
        }
    }

    #[test]
    fn pointwise_lowering_borrows_the_input() {
        let input = Tensor::from_fn(3, 4, 5, |c, y, x| {
            Sm8::from_i32_saturating((c * 20 + y * 5 + x) as i32 - 30)
        });
        assert!(pointwise_is_identity(1, 1, 0));
        assert!(!pointwise_is_identity(1, 2, 0));
        assert!(!pointwise_is_identity(1, 1, 1));
        assert!(!pointwise_is_identity(3, 1, 0));
        let (m, shape) = lower_patches(&input, 1, 1, 0, false);
        assert!(matches!(m, std::borrow::Cow::Borrowed(_)), "1x1 must not copy");
        assert_eq!(shape, Shape::new(3, 4, 5));
        assert_eq!(&m[..], input.as_slice());
        let (forced, fshape) = lower_patches(&input, 1, 1, 0, true);
        assert!(matches!(forced, std::borrow::Cow::Owned(_)));
        assert_eq!(fshape, shape);
        assert_eq!(&forced[..], input.as_slice());
    }
}
