//! Elementwise and reduction operators for residual networks: skip-join
//! addition, global average pooling, and the float batch-norm reference
//! (at inference BN folds into the preceding conv's weights, so only the
//! float oracle and the fold itself live here — there is no quantized BN).
//!
//! The quantized add runs in two phases so the scratch arena can lend the
//! slots out pairwise: phase 1 rescales operand A into the shared `i64`
//! accumulator plane, phase 2 rescales operand B, sums, and saturates
//! once. Both operands are brought to the *output* scale with
//! [`Requantizer::apply_raw`] before the single Sm8 saturation — the same
//! order the accelerator's host-side join uses, so oracle and driver are
//! bit-identical.

use zskip_quant::{Requantizer, Sm8};
use zskip_tensor::Tensor;

/// Per-channel batch-normalization weights (inference statistics).
#[derive(Debug, Clone, PartialEq)]
pub struct BnWeights {
    /// Learned scale, per channel.
    pub gamma: Vec<f32>,
    /// Learned shift, per channel.
    pub beta: Vec<f32>,
    /// Running mean, per channel.
    pub mean: Vec<f32>,
    /// Running variance, per channel (non-negative).
    pub var: Vec<f32>,
    /// Numerical-stability epsilon added to the variance.
    pub eps: f32,
}

impl BnWeights {
    /// Identity batch-norm over `c` channels.
    pub fn identity(c: usize) -> BnWeights {
        BnWeights {
            gamma: vec![1.0; c],
            beta: vec![0.0; c],
            mean: vec![0.0; c],
            var: vec![1.0; c],
            eps: 1e-5,
        }
    }

    /// The per-channel affine form: `y = a * x + b` with
    /// `a = gamma / sqrt(var + eps)` and `b = beta - a * mean`. Folding
    /// into a conv multiplies output-channel `o`'s weights by `a[o]` and
    /// maps its bias through the same affine.
    pub fn affine(&self) -> Vec<(f32, f32)> {
        self.gamma
            .iter()
            .zip(&self.beta)
            .zip(&self.mean)
            .zip(&self.var)
            .map(|(((&g, &b), &m), &v)| {
                let a = g / (v + self.eps).sqrt();
                (a, b - a * m)
            })
            .collect()
    }
}

/// Float batch normalization with optional fused ReLU (the oracle the
/// fold is verified against).
pub fn batchnorm_f32(input: &Tensor<f32>, bn: &BnWeights, relu: bool) -> Tensor<f32> {
    let affine = bn.affine();
    assert_eq!(affine.len(), input.shape().c, "one (gamma, beta, mean, var) set per channel");
    Tensor::from_fn(input.shape().c, input.shape().h, input.shape().w, |c, y, x| {
        let (a, b) = affine[c];
        let v = a * input[(c, y, x)] + b;
        if relu {
            v.max(0.0)
        } else {
            v
        }
    })
}

/// Float elementwise addition with optional fused ReLU (residual join).
///
/// # Panics
/// Panics on shape mismatch.
pub fn add_f32(a: &Tensor<f32>, b: &Tensor<f32>, relu: bool) -> Tensor<f32> {
    assert_eq!(a.shape(), b.shape(), "add operands must agree");
    let mut out = a.clone();
    for (o, &v) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o += v;
        if relu {
            *o = o.max(0.0);
        }
    }
    out
}

/// Quantized add, phase 1: rescales operand A to the output scale into
/// the accumulator plane (`acc[i] = ra.apply_raw(a[i])`).
pub fn add_quant_phase1(a: &Tensor<Sm8>, ra: Requantizer, acc: &mut Vec<i64>) {
    acc.clear();
    acc.extend(a.as_slice().iter().map(|&v| ra.apply_raw(v.to_i32() as i64) as i64));
}

/// Quantized add, phase 2: rescales operand B, sums with the phase-1
/// accumulator, applies optional ReLU, and saturates once to Sm8.
///
/// # Panics
/// Panics if `acc` does not match `b`'s element count (phases must run
/// over equal-shaped operands).
pub fn add_quant_phase2(
    b: &Tensor<Sm8>,
    rb: Requantizer,
    relu: bool,
    acc: &[i64],
    out: &mut Tensor<Sm8>,
) {
    let s = b.shape();
    assert_eq!(acc.len(), s.len(), "phase-1 accumulator must cover the operand");
    out.reset(s.c, s.h, s.w);
    for ((o, &bv), &av) in out.as_mut_slice().iter_mut().zip(b.as_slice()).zip(acc) {
        let sum = av + rb.apply_raw(bv.to_i32() as i64) as i64;
        let sum = if relu { sum.max(0) } else { sum };
        *o = Sm8::from_i32_saturating(sum.clamp(i32::MIN as i64, i32::MAX as i64) as i32);
    }
}

/// Allocating quantized add (tests and one-shot callers).
pub fn add_quant(a: &Tensor<Sm8>, b: &Tensor<Sm8>, ra: Requantizer, rb: Requantizer, relu: bool) -> Tensor<Sm8> {
    assert_eq!(a.shape(), b.shape(), "add operands must agree");
    let mut acc = Vec::new();
    add_quant_phase1(a, ra, &mut acc);
    let mut out = Tensor::zeros(1, 1, 1);
    add_quant_phase2(b, rb, relu, &acc, &mut out);
    out
}

/// Float global average pooling: each channel collapses to its spatial
/// mean (`c x h x w` → `c x 1 x 1`).
pub fn global_avgpool_f32(input: &Tensor<f32>) -> Tensor<f32> {
    let s = input.shape();
    let n = (s.h * s.w) as f32;
    Tensor::from_fn(s.c, 1, 1, |c, _, _| input.channel(c).iter().sum::<f32>() / n)
}

/// Quantized global average pooling: exact `i64` spatial sum per channel,
/// then one requantization. The requantizer must fold the `1/(h*w)` mean
/// divisor into its ratio (`s_in / (s_out * h * w)`) — see
/// [`crate::model::QuantizedNetwork::gap_requantizer`].
pub fn global_avgpool_quant_into(input: &Tensor<Sm8>, requant: Requantizer, out: &mut Tensor<Sm8>) {
    let s = input.shape();
    out.reset(s.c, 1, 1);
    for c in 0..s.c {
        let sum: i64 = input.channel(c).iter().map(|v| v.to_i32() as i64).sum();
        out[(c, 0, 0)] = requant.apply(sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zskip_tensor::Shape;

    fn sm8(v: i32) -> Sm8 {
        Sm8::from_i32_saturating(v)
    }

    #[test]
    fn add_f32_matches_elementwise_sum() {
        let a = Tensor::from_fn(2, 2, 2, |c, y, x| (c + y + x) as f32);
        let b = Tensor::from_fn(2, 2, 2, |c, y, x| (c as f32) - (y + x) as f32);
        let out = add_f32(&a, &b, false);
        assert_eq!(out[(1, 1, 1)], 3.0 + (1.0 - 2.0));
        let relued = add_f32(&a, &b.map(|v| -v - 10.0), true);
        assert!(relued.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn quant_add_identity_scales_is_saturating_sum() {
        let a = Tensor::from_fn(1, 2, 2, |_, y, x| sm8(60 * (y as i32 + 1) * (x as i32 + 1)));
        let b = a.clone();
        let out = add_quant(&a, &b, Requantizer::IDENTITY, Requantizer::IDENTITY, false);
        assert_eq!(out[(0, 0, 0)].to_i32(), 120);
        assert_eq!(out[(0, 1, 1)].to_i32(), 127, "saturates, does not wrap");
    }

    #[test]
    fn quant_add_relu_clamps_negative_sums() {
        let a = Tensor::from_fn(1, 1, 2, |_, _, x| sm8(if x == 0 { -50 } else { 20 }));
        let b = Tensor::from_fn(1, 1, 2, |_, _, _| sm8(10));
        let out = add_quant(&a, &b, Requantizer::IDENTITY, Requantizer::IDENTITY, true);
        assert_eq!(out[(0, 0, 0)].to_i32(), 0);
        assert_eq!(out[(0, 0, 1)].to_i32(), 30);
    }

    #[test]
    fn quant_add_rescales_each_operand() {
        // Operand scales 2x and 0.5x the output scale.
        let a = Tensor::from_fn(1, 1, 1, |_, _, _| sm8(30));
        let b = Tensor::from_fn(1, 1, 1, |_, _, _| sm8(40));
        let out = add_quant(&a, &b, Requantizer::from_ratio(2.0), Requantizer::from_ratio(0.5), false);
        assert_eq!(out[(0, 0, 0)].to_i32(), 60 + 20);
    }

    #[test]
    fn gap_float_and_quant_agree_on_exact_means() {
        let f = Tensor::from_fn(2, 2, 2, |c, y, x| ((c * 4 + y * 2 + x) * 4) as f32);
        let q = f.map(|v| sm8(v as i32));
        let gf = global_avgpool_f32(&f);
        assert_eq!(gf.shape(), Shape::new(2, 1, 1));
        let mut gq = Tensor::zeros(1, 1, 1);
        // Identity activation scales: ratio = 1 / (h*w) = 0.25.
        global_avgpool_quant_into(&q, Requantizer::from_ratio(0.25), &mut gq);
        assert_eq!(gq.shape(), Shape::new(2, 1, 1));
        for c in 0..2 {
            assert_eq!(gq[(c, 0, 0)].to_i32(), gf[(c, 0, 0)] as i32);
        }
    }

    #[test]
    fn batchnorm_identity_is_identity() {
        let x = Tensor::from_fn(3, 2, 2, |c, y, x| (c as f32) - (y * 2 + x) as f32);
        let out = batchnorm_f32(&x, &BnWeights::identity(3), false);
        for (a, b) in out.as_slice().iter().zip(x.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn batchnorm_normalizes_per_channel() {
        let x = Tensor::from_fn(1, 1, 2, |_, _, x| 10.0 + x as f32);
        let bn = BnWeights {
            gamma: vec![2.0],
            beta: vec![1.0],
            mean: vec![10.0],
            var: vec![4.0],
            eps: 0.0,
        };
        let out = batchnorm_f32(&x, &bn, false);
        // a = 2/2 = 1, b = 1 - 10 => y = x - 9.
        assert!((out[(0, 0, 0)] - 1.0).abs() < 1e-5);
        assert!((out[(0, 0, 1)] - 2.0).abs() < 1e-5);
        let relued = batchnorm_f32(&x.map(|v| -v), &bn, true);
        assert!(relued.as_slice().iter().all(|&v| v >= 0.0));
    }
}
