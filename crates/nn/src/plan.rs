//! Topologically-ordered execution plan with activation liveness.
//!
//! A [`NetworkSpec`] is already in topological order (references point
//! strictly backwards), so planning is not about ordering — it is about
//! *liveness*: deciding how long each activation must stay resident and
//! packing activations into a minimal set of reusable slots. The plan is
//! shared by the software golden model ([`crate::model::QuantizedNetwork`]'s
//! scratch forward pass) and the accelerator driver, which maps each slot
//! to a fixed DDR feature-map region — both walk the identical step
//! sequence, which is what makes residual execution bit-identical across
//! backends by construction.
//!
//! Slot allocation is a linear scan: each produced value takes the
//! lowest-numbered free slot, and a value's slot frees only *after* its
//! last consumer executes (an operator may never write over an input it
//! is still reading). On a linear chain this degenerates to the two-slot
//! ping-pong the VGG path has always used; a residual block briefly holds
//! a third slot for the skip operand.

use crate::layer::{LayerRef, LayerSpec, NetworkSpec, ShapeError};
use zskip_tensor::Shape;

/// One planned layer execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStep {
    /// Index of the layer in the spec.
    pub layer: usize,
    /// Slot holding the step's primary input (for [`LayerSpec::Ref`],
    /// the referenced activation). `None` once execution has entered the
    /// flat fully-connected head, where activations live in flat vectors
    /// outside the slot pool.
    pub src: Option<usize>,
    /// Layer index whose output is the primary input (`None` = the
    /// network input). Scale lookups key off this boundary.
    pub src_layer: Option<usize>,
    /// Slot holding [`LayerSpec::Add`]'s second operand.
    pub operand: Option<usize>,
    /// Layer index producing the second operand (`None` = network input).
    pub operand_layer: Option<usize>,
    /// Slot receiving the output. Equal to `src` for [`LayerSpec::Ref`]
    /// (a pure alias — no data moves); `None` in the flat head.
    pub dst: Option<usize>,
    /// Slots whose contents die after this step executes.
    pub frees: Vec<usize>,
}

/// The execution plan of one network: steps in topological order plus the
/// slot pool and liveness summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecPlan {
    /// One step per spec layer, in execution order.
    pub steps: Vec<PlanStep>,
    /// Number of activation slots the plan needs concurrently.
    pub slots: usize,
    /// Largest activation (in elements) each slot ever holds.
    pub slot_elems: Vec<usize>,
    /// Peak bytes of simultaneously-live activations (one byte per
    /// quantized element) — what must stay resident in DDR.
    pub peak_resident_bytes: usize,
    /// Slot holding the final feature-map activation (`None` when the
    /// network ends in the flat head or has no layers).
    pub output_slot: Option<usize>,
}

impl ExecPlan {
    /// Builds the plan for `spec`, validating the DAG along the way.
    ///
    /// # Errors
    /// Returns the first [`ShapeError`] (the same validation as
    /// [`NetworkSpec::shapes`]).
    pub fn build(spec: &NetworkSpec) -> Result<ExecPlan, ShapeError> {
        let shapes = spec.shapes()?;
        let n = spec.layers.len();

        // Value numbering: the network input is value 0; each layer
        // produces a fresh value except `Ref`, which aliases its source
        // (all consumers of the alias share the source's liveness).
        let mut value_of_layer = vec![usize::MAX; n];
        let mut value_shape: Vec<Shape> = vec![shapes[0]];
        let value_of = |value_of_layer: &[usize], r: LayerRef| match r {
            LayerRef::Input => 0,
            LayerRef::Layer(j) => value_of_layer[j],
        };
        // Values in the flat FC head get no slot; usize::MAX marks them.
        const FLAT: usize = usize::MAX - 1;
        let mut flat = false;
        for (i, layer) in spec.layers.iter().enumerate() {
            value_of_layer[i] = match layer {
                LayerSpec::Ref { from, .. } => value_of(&value_of_layer, *from),
                LayerSpec::Fc { .. } | LayerSpec::Softmax => {
                    flat = true;
                    FLAT
                }
                _ => {
                    debug_assert!(!flat, "validated by shapes()");
                    value_shape.push(shapes[i + 1]);
                    value_shape.len() - 1
                }
            };
        }

        // Liveness: a value's last use is the last step consuming it; the
        // final network output (or the value feeding the flat head) stays
        // live through the end.
        let mut last_use = vec![0usize; value_shape.len()];
        let prev_value = |value_of_layer: &[usize], i: usize| {
            if i == 0 {
                0
            } else {
                value_of_layer[i - 1]
            }
        };
        for (i, layer) in spec.layers.iter().enumerate() {
            let mut consume = |v: usize| {
                if v != FLAT {
                    last_use[v] = i;
                }
            };
            match layer {
                LayerSpec::Ref { from, .. } => consume(value_of(&value_of_layer, *from)),
                LayerSpec::Add { from, .. } => {
                    consume(prev_value(&value_of_layer, i));
                    consume(value_of(&value_of_layer, *from));
                }
                _ => consume(prev_value(&value_of_layer, i)),
            }
        }
        // Keep the final value alive past every step.
        let final_value = prev_value(&value_of_layer, n);
        if final_value != FLAT {
            last_use[final_value] = n;
        }

        // Linear-scan slot assignment. A slot frees strictly *after* the
        // last consumer runs, so a step's output can never land in a slot
        // any of its inputs occupy.
        let mut slot_of_value = vec![usize::MAX; value_shape.len()];
        let mut free: Vec<usize> = Vec::new();
        let mut allocated = 0usize;
        let mut slot_elems: Vec<usize> = Vec::new();
        let mut live_bytes = 0usize;
        let mut peak_resident_bytes = value_shape[0].len();
        let mut alloc = |free: &mut Vec<usize>,
                         slot_elems: &mut Vec<usize>,
                         live_bytes: &mut usize,
                         v: usize| {
            let slot = match free.pop() {
                Some(s) => s,
                None => {
                    allocated += 1;
                    slot_elems.push(0);
                    allocated - 1
                }
            };
            slot_elems[slot] = slot_elems[slot].max(value_shape[v].len());
            *live_bytes += value_shape[v].len();
            slot
        };
        slot_of_value[0] = alloc(&mut free, &mut slot_elems, &mut live_bytes, 0);

        let mut steps = Vec::with_capacity(n);
        for (i, layer) in spec.layers.iter().enumerate() {
            let src_layer = match layer {
                LayerSpec::Ref { from, .. } => match from {
                    LayerRef::Input => None,
                    LayerRef::Layer(j) => Some(*j),
                },
                _ if i == 0 => None,
                _ => Some(i - 1),
            };
            let in_value = match layer {
                LayerSpec::Ref { from, .. } => value_of(&value_of_layer, *from),
                _ => prev_value(&value_of_layer, i),
            };
            let src = (in_value != FLAT).then(|| slot_of_value[in_value]);
            let (operand, operand_layer) = match layer {
                LayerSpec::Add { from, .. } => {
                    let v = value_of(&value_of_layer, *from);
                    let l = match from {
                        LayerRef::Input => None,
                        LayerRef::Layer(j) => Some(*j),
                    };
                    (Some(slot_of_value[v]), l)
                }
                _ => (None, None),
            };
            let out_value = value_of_layer[i];
            let dst = if out_value == FLAT {
                None
            } else if matches!(layer, LayerSpec::Ref { .. }) {
                src
            } else {
                Some(alloc(&mut free, &mut slot_elems, &mut live_bytes, out_value))
            };
            if let Some(d) = dst {
                slot_of_value[out_value] = d;
            }
            peak_resident_bytes = peak_resident_bytes.max(live_bytes);
            // Retire values whose last use was this step.
            let mut frees = Vec::new();
            let mut retire = |v: usize, frees: &mut Vec<usize>| {
                if v != FLAT && last_use[v] == i && slot_of_value[v] != usize::MAX {
                    frees.push(slot_of_value[v]);
                    free.push(slot_of_value[v]);
                    free.sort_unstable_by(|a, b| b.cmp(a));
                    live_bytes -= value_shape[v].len();
                    slot_of_value[v] = usize::MAX;
                }
            };
            retire(in_value, &mut frees);
            if let LayerSpec::Add { from, .. } = layer {
                retire(value_of(&value_of_layer, *from), &mut frees);
            }
            steps.push(PlanStep { layer: i, src, src_layer, operand, operand_layer, dst, frees });
        }

        let output_slot = if final_value == FLAT {
            None
        } else {
            Some(slot_of_value[final_value]).filter(|&s| s != usize::MAX)
        };
        Ok(ExecPlan { steps, slots: allocated, slot_elems, peak_resident_bytes, output_slot })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{conv3x3, maxpool2x2};

    fn linear_spec() -> NetworkSpec {
        NetworkSpec {
            name: "lin".into(),
            input: Shape::new(3, 8, 8),
            layers: vec![
                conv3x3("c1", 3, 4),
                conv3x3("c2", 4, 4),
                maxpool2x2("p"),
                conv3x3("c3", 4, 6),
            ],
        }
    }

    #[test]
    fn linear_chain_degenerates_to_two_slot_ping_pong() {
        let plan = ExecPlan::build(&linear_spec()).unwrap();
        assert_eq!(plan.slots, 2, "a chain needs exactly in+out");
        let dsts: Vec<usize> = plan.steps.iter().map(|s| s.dst.unwrap()).collect();
        assert_eq!(dsts, vec![1, 0, 1, 0], "ping-pong between the two slots");
        for s in &plan.steps {
            assert_ne!(s.src, s.dst, "never write over the input being read");
        }
        assert_eq!(plan.output_slot, Some(0));
    }

    #[test]
    fn residual_block_takes_a_third_slot() {
        let spec = NetworkSpec {
            name: "res".into(),
            input: Shape::new(4, 8, 8),
            layers: vec![
                conv3x3("c1", 4, 4),
                conv3x3("c2", 4, 4),
                LayerSpec::Add { name: "join".into(), from: LayerRef::Input, relu: true },
            ],
        };
        let plan = ExecPlan::build(&spec).unwrap();
        assert_eq!(plan.slots, 3, "input stays live across the branch body");
        let add = plan.steps.last().unwrap();
        assert_eq!(add.operand, Some(0), "skip operand is the original input slot");
        assert_eq!(add.operand_layer, None);
        // After the join both operands die.
        assert_eq!(add.frees.len(), 2);
        // Peak residency: input + c1 out + c2 out live at once.
        assert_eq!(plan.peak_resident_bytes, 3 * 4 * 8 * 8);
    }

    #[test]
    fn ref_is_a_pure_alias() {
        let spec = NetworkSpec {
            name: "branch".into(),
            input: Shape::new(2, 8, 8),
            layers: vec![
                conv3x3("c1", 2, 2),
                LayerSpec::Ref { name: "skip".into(), from: LayerRef::Input },
                conv3x3("c2", 2, 2),
                LayerSpec::Add { name: "join".into(), from: LayerRef::Layer(0), relu: false },
            ],
        };
        let plan = ExecPlan::build(&spec).unwrap();
        let r = &plan.steps[1];
        assert_eq!(r.src, r.dst, "ref re-emits its source slot");
        assert_eq!(r.src_layer, None, "ref reads the network input");
        assert!(r.frees.is_empty(), "the aliased input is consumed again by c2");
        // c2 reads the alias (the input's slot), not c1's output.
        assert_eq!(plan.steps[2].src, r.dst);
        assert_eq!(plan.steps[3].operand_layer, Some(0));
    }

    #[test]
    fn flat_head_leaves_the_slot_pool() {
        let mut spec = linear_spec();
        spec.layers.push(LayerSpec::Fc { name: "fc".into(), in_features: 6 * 4 * 4, out_features: 5, relu: false });
        spec.layers.push(LayerSpec::Softmax);
        let plan = ExecPlan::build(&spec).unwrap();
        let fc = &plan.steps[4];
        assert_eq!(fc.src, Some(0), "fc reads the last feature map");
        assert_eq!(fc.dst, None, "fc output lives in the flat domain");
        assert_eq!(plan.steps[5].src, None, "softmax consumes the flat vector");
        assert_eq!(plan.output_slot, None);
    }

    #[test]
    fn slot_elems_cover_every_resident_shape() {
        let plan = ExecPlan::build(&linear_spec()).unwrap();
        // Slot 0 holds the 3x8x8 input and later the 4x4x4 pool output and
        // 4x8x8 c2 output; slot 1 holds the 4x8x8 conv outputs and the
        // final 6x4x4.
        assert_eq!(plan.slot_elems.len(), 2);
        assert!(plan.slot_elems[0] >= 4 * 8 * 8);
        assert!(plan.slot_elems[1] >= 4 * 8 * 8);
    }

    #[test]
    fn empty_network_is_just_the_input() {
        let spec = NetworkSpec { name: "id".into(), input: Shape::new(1, 4, 4), layers: vec![] };
        let plan = ExecPlan::build(&spec).unwrap();
        assert!(plan.steps.is_empty());
        assert_eq!(plan.slots, 1);
        assert_eq!(plan.output_slot, Some(0));
        assert_eq!(plan.peak_resident_bytes, 16);
    }
}
