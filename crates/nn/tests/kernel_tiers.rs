//! Cross-tier bit-exactness: every SIMD kernel tier reachable on the host
//! must reproduce the scalar dense oracle exactly, over random shapes
//! (including non-multiple-of-4 spatial dims that exercise the vector
//! tails), kernel sizes 1/3/5/7, strides 1/2, and densities 0.0–1.0.
//! The pooled (intra-image multithreaded) kernels must match the same
//! oracle at every worker count — panel decomposition never reorders the
//! integer accumulation within an output channel.

use proptest::prelude::*;
use zskip_nn::conv::{conv2d_quant_dense, conv2d_quant_into, conv2d_quant_into_pool, QuantConvWeights};
use zskip_nn::gemm::{conv2d_gemm_quant_pool, conv2d_gemm_quant_tier};
use zskip_nn::par::ConvPool;
use zskip_nn::simd::KernelTier;
use zskip_quant::{Requantizer, Sm8};
use zskip_tensor::Tensor;

/// Seeded weights with a target fraction of nonzero taps, drawn from the
/// workspace-wide `SplitMix64` stream.
fn synthetic_qw(out_c: usize, in_c: usize, k: usize, density: f64, seed: u64, relu: bool) -> QuantConvWeights {
    let mut rng = zskip_fault::SplitMix64::new(seed);
    QuantConvWeights::new(
        out_c,
        in_c,
        k,
        (0..out_c * in_c * k * k)
            .map(|_| {
                let h = rng.next_u64();
                if ((h >> 16) % 1000) as f64 >= density * 1000.0 {
                    Sm8::ZERO
                } else {
                    Sm8::from_i32_saturating(((h >> 40) % 255) as i32 - 127)
                }
            })
            .collect(),
        (0..out_c as i64).map(|o| o * 17 - 40).collect(),
        Requantizer::from_ratio(1.0 / 8.0),
        relu,
    )
}

fn synthetic_input(in_c: usize, h: usize, w: usize, seed: u64) -> Tensor<Sm8> {
    Tensor::from_fn(in_c, h, w, |c, y, x| {
        Sm8::from_i32_saturating((((c * 131 + y * 17 + x * 3) as u64 ^ seed) % 255) as i32 - 127)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn conv_tiers_are_bit_exact_vs_dense_oracle(
        out_c in 1usize..4,
        in_c in 1usize..4,
        h in 3usize..13, // deliberately crosses non-multiple-of-4 sizes
        w in 3usize..19, // and non-multiple-of-8/16 rows (SIMD tails)
        k_idx in 0usize..4,
        stride in 1usize..3,
        pad in 0usize..3,
        density_ppt in 0u64..=1000, // permille: spans 0.0..=1.0 density
        seed in 0u64..1000,
    ) {
        let k = [1usize, 3, 5, 7][k_idx];
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let qw = synthetic_qw(out_c, in_c, k, density_ppt as f64 / 1000.0, seed, seed % 2 == 0);
        let input = synthetic_input(in_c, h, w, seed);
        let oracle = conv2d_quant_dense(&input, &qw, stride, pad);
        for tier in KernelTier::supported() {
            let mut acc = Vec::new();
            let mut out = Tensor::zeros(1, 1, 1);
            conv2d_quant_into(&input, &qw, stride, pad, tier, &mut acc, &mut out);
            prop_assert_eq!(&oracle, &out, "tier {} diverged from dense oracle", tier);
        }
    }

    #[test]
    fn pooled_kernels_are_bit_exact_at_every_worker_count(
        out_c in 1usize..6,
        in_c in 1usize..4,
        h in 3usize..11,
        w in 3usize..15,
        k_idx in 0usize..3,
        workers in 1usize..8,
        density_ppt in 0u64..=1000,
        seed in 0u64..1000,
    ) {
        let k = [1usize, 3, 5][k_idx];
        let pad = k / 2;
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let qw = synthetic_qw(out_c, in_c, k, density_ppt as f64 / 1000.0, seed, seed % 2 == 0);
        let input = synthetic_input(in_c, h, w, seed);
        let oracle = conv2d_quant_dense(&input, &qw, 1, pad);
        let pool = ConvPool::new(workers);
        for tier in KernelTier::supported() {
            let mut acc = Vec::new();
            let mut out = Tensor::zeros(1, 1, 1);
            conv2d_quant_into_pool(&input, &qw, 1, pad, tier, &pool, &mut acc, &mut out);
            prop_assert_eq!(&oracle, &out, "pooled packed kernel, tier {}, {} workers", tier, workers);
            let gemm = conv2d_gemm_quant_pool(&input, &qw, 1, pad, tier, &pool);
            prop_assert_eq!(&oracle, &gemm, "pooled gemm kernel, tier {}, {} workers", tier, workers);
            let single = conv2d_gemm_quant_tier(&input, &qw, 1, pad, tier);
            prop_assert_eq!(&oracle, &single, "row-panel gemm kernel, tier {}", tier);
        }
    }
}

#[test]
fn all_zero_weights_yield_bias_only_output_on_every_tier() {
    // Regression: a layer whose filters are entirely zero has empty packed
    // tap lists; every tier must still emit the requantized bias (and the
    // accumulator plane must be reset between output channels).
    let qw = QuantConvWeights::new(
        3,
        2,
        3,
        vec![Sm8::ZERO; 3 * 2 * 3 * 3],
        vec![5, -9, 127],
        Requantizer::IDENTITY,
        false,
    );
    let input = synthetic_input(2, 6, 7, 99);
    for tier in KernelTier::supported() {
        let mut acc = Vec::new();
        let mut out = Tensor::zeros(1, 1, 1);
        conv2d_quant_into(&input, &qw, 1, 1, tier, &mut acc, &mut out);
        for o in 0..3usize {
            let want = qw.requant.apply(qw.bias_acc[o]).to_i32();
            for &v in out.channel(o) {
                assert_eq!(v.to_i32(), want, "tier {tier}, channel {o}");
            }
        }
    }
}

#[test]
fn reused_scratch_buffers_do_not_leak_between_layers() {
    // The same (acc, out) pair driven through two layers of different
    // geometry must give the same answers as fresh buffers — guards the
    // reset/reshape discipline the arena relies on.
    let qw_a = synthetic_qw(4, 2, 3, 0.6, 7, true);
    let qw_b = synthetic_qw(2, 4, 1, 0.9, 8, false);
    let input_a = synthetic_input(2, 9, 9, 1);
    for tier in KernelTier::supported() {
        let mut acc = Vec::new();
        let mut out = Tensor::zeros(1, 1, 1);
        conv2d_quant_into(&input_a, &qw_a, 1, 1, tier, &mut acc, &mut out);
        let mid = out.clone();
        assert_eq!(mid, conv2d_quant_dense(&input_a, &qw_a, 1, 1), "tier {tier} layer A");
        // Feed layer A's output into layer B using the same buffers.
        let mut out_b = Tensor::zeros(1, 1, 1);
        conv2d_quant_into(&mid, &qw_b, 2, 0, tier, &mut acc, &mut out_b);
        assert_eq!(out_b, conv2d_quant_dense(&mid, &qw_b, 2, 0), "tier {tier} layer B");
    }
}
