//! Counting-allocator proof of the scratch arena's zero-allocation
//! contract: after a warm-up image, a whole quantized forward pass through
//! [`zskip_nn::Scratch`] performs **zero** heap allocations.
//!
//! This lives in its own integration-test binary (single `#[test]`) so no
//! concurrent test thread can allocate while the steady-state window is
//! being measured.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use zskip_nn::{LayerSpec, Network, NetworkSpec, Scratch, SyntheticModelConfig};
use zskip_tensor::{Shape, Tensor};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; only adds a counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn spec() -> NetworkSpec {
    NetworkSpec {
        name: "alloc-probe".into(),
        input: Shape::new(3, 12, 12),
        layers: vec![
            LayerSpec::Conv { name: "c1".into(), in_c: 3, out_c: 8, k: 3, stride: 1, pad: 1, relu: true },
            LayerSpec::MaxPool { name: "p1".into(), k: 2, stride: 2 },
            LayerSpec::Conv { name: "c2".into(), in_c: 8, out_c: 12, k: 3, stride: 1, pad: 1, relu: true },
            LayerSpec::Fc { name: "fc1".into(), in_features: 12 * 6 * 6, out_features: 16, relu: true },
            LayerSpec::Fc { name: "fc2".into(), in_features: 16, out_features: 10, relu: false },
            LayerSpec::Softmax,
        ],
    }
}

#[test]
fn steady_state_forward_pass_allocates_nothing() {
    let net = Network::synthetic(spec(), &SyntheticModelConfig::default());
    let inputs: Vec<Tensor<f32>> = (0..3)
        .map(|i| Tensor::from_fn(3, 12, 12, |c, y, x| ((c * 144 + y * 12 + x + i * 7) as f32 * 0.23).sin()))
        .collect();
    let qnet = net.quantize(&inputs[..1]);

    let mut scratch = Scratch::new();
    // Warm-up: grows the arena and fills the lazy weight caches (nnz,
    // packed taps) — allowed to allocate.
    let warm = qnet.forward_quant_scratch(&inputs[0], &mut scratch).to_vec();
    assert_eq!(scratch.grow_events(), 1);

    // Steady state: two more images, zero allocations each.
    for input in &inputs[1..] {
        let before = ALLOCS.load(Ordering::Relaxed);
        let out = qnet.forward_quant_scratch(input, &mut scratch);
        let len = out.len();
        let after = ALLOCS.load(Ordering::Relaxed);
        assert_eq!(len, warm.len());
        assert_eq!(
            after - before,
            0,
            "steady-state forward pass must not touch the heap"
        );
    }
    assert_eq!(scratch.grow_events(), 1, "arena grew after warm-up");

    // Multithreaded single-image path: attaching a 3-worker ConvPool and
    // re-warming (thread spawn + wider accumulator arena may allocate)
    // must restore a zero-allocation steady state — pooled dispatch uses
    // pre-sized per-worker accumulator slices and a lock/condvar protocol
    // that never touches the heap.
    scratch.set_threads(3);
    let mt_warm = qnet.forward_quant_scratch(&inputs[0], &mut scratch).to_vec();
    assert_eq!(mt_warm, warm, "pooled forward pass stays bit-identical");
    for input in &inputs[1..] {
        let before = ALLOCS.load(Ordering::Relaxed);
        let out = qnet.forward_quant_scratch(input, &mut scratch);
        let len = out.len();
        let after = ALLOCS.load(Ordering::Relaxed);
        assert_eq!(len, warm.len());
        assert_eq!(
            after - before,
            0,
            "steady-state multithreaded forward pass must not touch the heap"
        );
    }
}
