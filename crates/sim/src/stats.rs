//! Simulation statistics: kernel activity, FIFO occupancy, user counters,
//! scheduler accounting.

use std::collections::BTreeMap;

/// Per-kernel cycle accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Cycles in which the kernel performed work.
    pub busy: u64,
    /// Cycles in which the kernel wanted to work but a FIFO blocked it.
    pub blocked: u64,
    /// Cycles with nothing to do.
    pub idle: u64,
    /// Cycles after the kernel reported done.
    pub done: u64,
}

impl KernelStats {
    /// Total observed cycles.
    pub fn total(&self) -> u64 {
        self.busy + self.blocked + self.idle + self.done
    }

    /// Busy fraction of pre-completion cycles (0.0 when never active).
    pub fn utilization(&self) -> f64 {
        let alive = self.busy + self.blocked + self.idle;
        if alive == 0 {
            0.0
        } else {
            self.busy as f64 / alive as f64
        }
    }
}

/// Per-FIFO transfer and stall statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FifoStats {
    /// Successful pushes.
    pub pushes: u64,
    /// Successful pops.
    pub pops: u64,
    /// Pushes refused because the FIFO was full.
    pub push_stalls: u64,
    /// Pops that found the FIFO empty.
    pub pop_stalls: u64,
    /// Pushes refused because the write port was already used this cycle.
    pub push_port_conflicts: u64,
    /// Pops refused because the read port was already used this cycle.
    pub pop_port_conflicts: u64,
    /// Maximum occupancy ever observed at a cycle boundary.
    pub high_water: usize,
    /// Sum of per-cycle occupancies (for the mean).
    pub occupancy_sum: u64,
    /// Cycles observed.
    pub cycles: u64,
}

impl FifoStats {
    /// Mean occupancy over the run.
    pub fn mean_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.cycles as f64
        }
    }
}

/// Scheduler accounting for the event-driven engine. All counters stay
/// zero under the dense stepper. These are *diagnostics about how the
/// simulation was computed*, not architectural state: two bit-identical
/// runs may legitimately differ here (e.g. dense vs. event-driven), so
/// [`crate::RunReport`]'s equality ignores this block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Kernels parked on a FIFO wait list (or a sleep timer).
    pub parks: u64,
    /// Kernels re-enqueued by a FIFO occupancy edge, stall expiry or
    /// sleep timer (spurious wakes included).
    pub wakes: u64,
    /// Executed cycles in which at least one kernel did not tick
    /// (runnable set smaller than the kernel count).
    pub lean_cycles: u64,
    /// Cycles jumped over entirely because the runnable set was empty.
    pub idle_jumped: u64,
    /// Cycles in which at least one kernel actually ticked.
    pub executed_cycles: u64,
}

/// Handle to an interned counter name, for string-free hot-path updates
/// via [`Counters::add_id`]. Obtained from [`Counters::intern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Named activity counters recorded by kernels (e.g. `"macs"`,
/// `"bank_reads"`). The power model converts these into toggle activity.
///
/// Names are interned: [`intern`](Counters::intern) maps a name to a
/// [`CounterId`] once, and [`add_id`](Counters::add_id) is then a plain
/// indexed add — kernels that fire every cycle should intern their
/// counter names at construction instead of paying a map lookup per tick.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    index: BTreeMap<&'static str, u32>,
    values: Vec<u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Interns `name`, creating a zero-valued counter if new, and returns
    /// its stable id.
    pub fn intern(&mut self, name: &'static str) -> CounterId {
        if let Some(&id) = self.index.get(name) {
            return CounterId(id);
        }
        let id = u32::try_from(self.values.len()).expect("counter count fits u32");
        self.index.insert(name, id);
        self.values.push(0);
        CounterId(id)
    }

    /// Adds `n` to the interned counter — O(1), no string comparison.
    #[inline]
    pub fn add_id(&mut self, id: CounterId, n: u64) {
        self.values[id.0 as usize] += n;
    }

    /// Adds `n` to counter `name` (interning it on first use). Convenient
    /// off the hot path; per-cycle updates should use
    /// [`add_id`](Counters::add_id).
    pub fn add(&mut self, name: &'static str, n: u64) {
        let id = self.intern(name);
        self.add_id(id, n);
    }

    /// Reads counter `name` (0 when never recorded).
    pub fn get(&self, name: &str) -> u64 {
        self.index.get(name).map_or(0, |&id| self.values[id as usize])
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.index.iter().map(|(&k, &id)| (k, self.values[id as usize]))
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

impl PartialEq for Counters {
    /// Name/value equality, independent of interning order.
    fn eq(&self, other: &Self) -> bool {
        self.iter().eq(other.iter())
    }
}

impl Eq for Counters {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_stats_utilization() {
        let s = KernelStats { busy: 75, blocked: 20, idle: 5, done: 100 };
        assert_eq!(s.total(), 200);
        assert!((s.utilization() - 0.75).abs() < 1e-12);
        assert_eq!(KernelStats::default().utilization(), 0.0);
    }

    #[test]
    fn fifo_stats_mean_occupancy() {
        let s = FifoStats { occupancy_sum: 30, cycles: 10, ..Default::default() };
        assert_eq!(s.mean_occupancy(), 3.0);
        assert_eq!(FifoStats::default().mean_occupancy(), 0.0);
    }

    #[test]
    fn counters_accumulate_and_merge() {
        let mut a = Counters::new();
        a.add("macs", 10);
        a.add("macs", 5);
        a.add("bank_reads", 2);
        assert_eq!(a.get("macs"), 15);
        assert_eq!(a.get("missing"), 0);

        let mut b = Counters::new();
        b.add("macs", 1);
        b.merge(&a);
        assert_eq!(b.get("macs"), 16);
        assert_eq!(b.get("bank_reads"), 2);
        assert_eq!(b.iter().count(), 2);
    }

    #[test]
    fn interned_ids_bypass_the_name_lookup() {
        let mut c = Counters::new();
        let macs = c.intern("macs");
        let reads = c.intern("bank_reads");
        assert_eq!(c.intern("macs"), macs, "interning is idempotent");
        c.add_id(macs, 64);
        c.add_id(macs, 64);
        c.add_id(reads, 1);
        c.add("macs", 2);
        assert_eq!(c.get("macs"), 130);
        assert_eq!(c.get("bank_reads"), 1);
    }

    #[test]
    fn equality_ignores_interning_order() {
        let mut a = Counters::new();
        a.intern("x");
        a.intern("y");
        a.add("y", 3);
        let mut b = Counters::new();
        let y = b.intern("y");
        b.add_id(y, 3);
        b.intern("x");
        assert_eq!(a, b);
        b.add("x", 1);
        assert_ne!(a, b);
    }
}
