//! Simulation statistics: kernel activity, FIFO occupancy, user counters.

use std::collections::BTreeMap;

/// Per-kernel cycle accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Cycles in which the kernel performed work.
    pub busy: u64,
    /// Cycles in which the kernel wanted to work but a FIFO blocked it.
    pub blocked: u64,
    /// Cycles with nothing to do.
    pub idle: u64,
    /// Cycles after the kernel reported done.
    pub done: u64,
}

impl KernelStats {
    /// Total observed cycles.
    pub fn total(&self) -> u64 {
        self.busy + self.blocked + self.idle + self.done
    }

    /// Busy fraction of pre-completion cycles (0.0 when never active).
    pub fn utilization(&self) -> f64 {
        let alive = self.busy + self.blocked + self.idle;
        if alive == 0 {
            0.0
        } else {
            self.busy as f64 / alive as f64
        }
    }
}

/// Per-FIFO transfer and stall statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FifoStats {
    /// Successful pushes.
    pub pushes: u64,
    /// Successful pops.
    pub pops: u64,
    /// Pushes refused because the FIFO was full.
    pub push_stalls: u64,
    /// Pops that found the FIFO empty.
    pub pop_stalls: u64,
    /// Pushes refused because the write port was already used this cycle.
    pub push_port_conflicts: u64,
    /// Pops refused because the read port was already used this cycle.
    pub pop_port_conflicts: u64,
    /// Maximum occupancy ever observed at a cycle boundary.
    pub high_water: usize,
    /// Sum of per-cycle occupancies (for the mean).
    pub occupancy_sum: u64,
    /// Cycles observed.
    pub cycles: u64,
}

impl FifoStats {
    /// Mean occupancy over the run.
    pub fn mean_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.cycles as f64
        }
    }
}

/// Named activity counters recorded by kernels (e.g. `"macs"`,
/// `"bank_reads"`). The power model converts these into toggle activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    values: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `n` to counter `name`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.values.entry(name).or_insert(0) += n;
    }

    /// Reads counter `name` (0 when never recorded).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.values.iter().map(|(&k, &v)| (k, v))
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_stats_utilization() {
        let s = KernelStats { busy: 75, blocked: 20, idle: 5, done: 100 };
        assert_eq!(s.total(), 200);
        assert!((s.utilization() - 0.75).abs() < 1e-12);
        assert_eq!(KernelStats::default().utilization(), 0.0);
    }

    #[test]
    fn fifo_stats_mean_occupancy() {
        let s = FifoStats { occupancy_sum: 30, cycles: 10, ..Default::default() };
        assert_eq!(s.mean_occupancy(), 3.0);
        assert_eq!(FifoStats::default().mean_occupancy(), 0.0);
    }

    #[test]
    fn counters_accumulate_and_merge() {
        let mut a = Counters::new();
        a.add("macs", 10);
        a.add("macs", 5);
        a.add("bank_reads", 2);
        assert_eq!(a.get("macs"), 15);
        assert_eq!(a.get("missing"), 0);

        let mut b = Counters::new();
        b.add("macs", 1);
        b.merge(&a);
        assert_eq!(b.get("macs"), 16);
        assert_eq!(b.get("bank_reads"), 2);
        assert_eq!(b.iter().count(), 2);
    }
}
