//! Cycle traces: ASCII waveforms of kernel activity.
//!
//! HLS debugging lives and dies by visibility into stalls. The trace
//! recorder captures each kernel's per-cycle [`Progress`] and renders a
//! waveform — which kernel was busy (`#`), blocked on a FIFO (`x`), idle
//! (`.`), or finished (` `) — so pipeline bubbles, backpressure chains
//! and barrier convoys are visible at a glance.
//!
//! ```text
//! cycle     0        10        20        30
//! staging0  ####x####x####x####x####
//! conv0     .####x####x####x####x###
//! accum0    ..#####xx.#####xx.######
//! ```

use crate::engine::Progress;

/// Per-kernel, per-cycle activity recorder with a bounded window.
#[derive(Debug, Clone)]
pub struct Trace {
    names: Vec<String>,
    /// `rows[k][t]` = symbol of kernel `k` at window cycle `t`.
    rows: Vec<Vec<u8>>,
    /// First recorded cycle.
    start_cycle: u64,
    /// Maximum cycles retained.
    capacity: usize,
    truncated: bool,
}

impl Trace {
    /// Creates a recorder retaining at most `capacity` cycles.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Trace {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace { names: Vec::new(), rows: Vec::new(), start_cycle: 0, capacity, truncated: false }
    }

    /// Registers kernel `name`, returning its row index. Called by the
    /// engine for each kernel in registration order.
    pub fn add_kernel(&mut self, name: &str) -> usize {
        self.names.push(name.to_string());
        self.rows.push(Vec::new());
        self.rows.len() - 1
    }

    /// Records kernel `k`'s progress for the current cycle.
    pub fn record(&mut self, k: usize, cycle: u64, progress: Progress) {
        let row = &mut self.rows[k];
        if row.is_empty() && k == 0 {
            self.start_cycle = cycle;
        }
        if row.len() >= self.capacity {
            self.truncated = true;
            return;
        }
        row.push(match progress {
            Progress::Busy => b'#',
            Progress::Blocked => b'x',
            Progress::Idle => b'.',
            Progress::Done => b' ',
        });
    }

    /// Records kernel `k`'s progress for `n` consecutive cycles starting
    /// at `cycle` — equivalent to `n` [`record`](Trace::record) calls,
    /// but O(min(n, capacity)). Used by the engine when fast-forwarding
    /// quiescent stretches.
    pub fn record_span(&mut self, k: usize, cycle: u64, n: u64, progress: Progress) {
        let row_len = self.rows[k].len();
        if row_len == 0 && k == 0 {
            self.start_cycle = cycle;
        }
        let room = self.capacity - row_len.min(self.capacity);
        let take = usize::try_from(n).unwrap_or(usize::MAX).min(room);
        let sym = match progress {
            Progress::Busy => b'#',
            Progress::Blocked => b'x',
            Progress::Idle => b'.',
            Progress::Done => b' ',
        };
        self.rows[k].extend(std::iter::repeat_n(sym, take));
        if n > take as u64 {
            self.truncated = true;
        }
    }

    /// Cycles recorded (bounded by capacity).
    pub fn len(&self) -> usize {
        self.rows.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the window filled up and later cycles were dropped.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Busy fraction of kernel `k` within the window.
    pub fn utilization(&self, k: usize) -> f64 {
        let row = &self.rows[k];
        if row.is_empty() {
            return 0.0;
        }
        row.iter().filter(|&&c| c == b'#').count() as f64 / row.len() as f64
    }

    /// Renders the waveform, `width` cycles per line block.
    pub fn render(&self, width: usize) -> String {
        let width = width.max(10);
        let len = self.len();
        let name_w = self.names.iter().map(String::len).max().unwrap_or(5).max(5);
        let mut out = String::new();
        let mut t0 = 0;
        while t0 < len {
            let t1 = (t0 + width).min(len);
            // Cycle ruler with ticks every 10.
            out.push_str(&format!("{:<name_w$}  ", "cycle"));
            let mut ruler = String::new();
            let mut t = t0;
            while t < t1 {
                if t % 10 == 0 {
                    let label = (self.start_cycle + t as u64).to_string();
                    ruler.push_str(&label);
                    t += label.len();
                } else {
                    ruler.push(' ');
                    t += 1;
                }
            }
            ruler.truncate(t1 - t0);
            out.push_str(&ruler);
            out.push('\n');
            for (k, name) in self.names.iter().enumerate() {
                out.push_str(&format!("{name:<name_w$}  "));
                let row = &self.rows[k];
                for t in t0..t1 {
                    out.push(*row.get(t).unwrap_or(&b' ') as char);
                }
                out.push('\n');
            }
            out.push('\n');
            t0 = t1;
        }
        if self.truncated {
            out.push_str("(trace window full; later cycles dropped)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_symbols_in_order() {
        let mut t = Trace::new(16);
        let a = t.add_kernel("a");
        let b = t.add_kernel("bkern");
        for cy in 0..4 {
            t.record(a, cy, if cy % 2 == 0 { Progress::Busy } else { Progress::Blocked });
            t.record(b, cy, Progress::Idle);
        }
        let text = t.render(80);
        assert!(text.contains("a      #x#x"), "{text}");
        assert!(text.contains("bkern  ...."), "{text}");
        assert_eq!(t.len(), 4);
        assert!((t.utilization(a) - 0.5).abs() < 1e-12);
        assert_eq!(t.utilization(b), 0.0);
    }

    #[test]
    fn capacity_bounds_memory() {
        let mut t = Trace::new(8);
        let k = t.add_kernel("k");
        for cy in 0..100 {
            t.record(k, cy, Progress::Busy);
        }
        assert_eq!(t.len(), 8);
        assert!(t.is_truncated());
        assert!(t.render(40).contains("window full"));
    }

    #[test]
    fn render_wraps_blocks() {
        let mut t = Trace::new(64);
        let k = t.add_kernel("k");
        for cy in 0..25 {
            t.record(k, cy, Progress::Busy);
        }
        let text = t.render(10);
        // 25 cycles at width 10: three blocks.
        assert_eq!(text.matches("cycle").count(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Trace::new(0);
    }
}
