//! Polling barrier: the hardware analogue of the Pthreads barrier that
//! synchronizes the four accumulator units at each OFM tile position
//! ("The completion of all four OFM tiles at a given x/y tile position is
//! synchronized using a Pthreads barrier", paper §III-B1).

/// A generation-counting barrier polled once per cycle by each party.
///
/// Each party calls [`Barrier::arrive_and_poll`] every cycle once it
/// reaches the synchronization point; the call returns `true` exactly once
/// per generation, when all parties have arrived.
#[derive(Debug, Clone)]
pub struct Barrier {
    phase: Vec<Phase>,
    arrivals: usize,
    generations: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Waiting,
    Released,
}

impl Barrier {
    /// Creates a barrier for `parties` participants.
    ///
    /// # Panics
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Barrier {
        assert!(parties > 0, "barrier needs at least one party");
        Barrier { phase: vec![Phase::Idle; parties], arrivals: 0, generations: 0 }
    }

    /// Number of participants.
    pub fn parties(&self) -> usize {
        self.phase.len()
    }

    /// Completed generations (number of times all parties synchronized).
    pub fn generations(&self) -> u64 {
        self.generations
    }

    /// Party `p` arrives (idempotent while waiting) and polls for release.
    /// Returns `true` when the barrier opens for this party.
    ///
    /// # Panics
    /// Panics if `p` is out of range.
    pub fn arrive_and_poll(&mut self, p: usize) -> bool {
        match self.phase[p] {
            Phase::Released => {
                self.phase[p] = Phase::Idle;
                true
            }
            Phase::Waiting => false,
            Phase::Idle => {
                self.phase[p] = Phase::Waiting;
                self.arrivals += 1;
                if self.arrivals == self.phase.len() {
                    // Last arriver releases everyone and passes immediately.
                    for q in self.phase.iter_mut() {
                        *q = Phase::Released;
                    }
                    self.phase[p] = Phase::Idle;
                    self.arrivals = 0;
                    self.generations += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Whether party `p` is currently waiting at the barrier.
    pub fn is_waiting(&self, p: usize) -> bool {
        self.phase[p] == Phase::Waiting
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_party_passes_immediately() {
        let mut b = Barrier::new(1);
        assert!(b.arrive_and_poll(0));
        assert!(b.arrive_and_poll(0));
        assert_eq!(b.generations(), 2);
    }

    #[test]
    fn all_parties_pass_exactly_once_per_generation() {
        let mut b = Barrier::new(4);
        // Parties 0..3 arrive over several cycles.
        assert!(!b.arrive_and_poll(0));
        assert!(!b.arrive_and_poll(1));
        assert!(!b.arrive_and_poll(0), "re-poll while waiting stays blocked");
        assert!(!b.arrive_and_poll(2));
        assert!(b.arrive_and_poll(3), "last arriver passes immediately");
        // Remaining parties pass on their next poll.
        assert!(b.arrive_and_poll(0));
        assert!(b.arrive_and_poll(1));
        assert!(b.arrive_and_poll(2));
        assert_eq!(b.generations(), 1);
    }

    #[test]
    fn generations_chain_correctly() {
        let mut b = Barrier::new(2);
        for generation in 1..=10 {
            assert!(!b.arrive_and_poll(0));
            assert!(b.arrive_and_poll(1));
            assert!(b.arrive_and_poll(0));
            assert_eq!(b.generations(), generation);
        }
    }

    #[test]
    fn fast_party_cannot_lap_slow_party() {
        let mut b = Barrier::new(2);
        assert!(!b.arrive_and_poll(0));
        // Party 0 polls many times; generation cannot complete without 1.
        for _ in 0..100 {
            assert!(!b.arrive_and_poll(0));
        }
        assert!(b.arrive_and_poll(1));
        assert!(b.arrive_and_poll(0));
        // Party 0 immediately re-arrives into the next generation.
        assert!(!b.arrive_and_poll(0));
        assert!(b.is_waiting(0));
        assert!(!b.is_waiting(1));
        assert_eq!(b.generations(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_rejected() {
        let _ = Barrier::new(0);
    }
}
