//! Hardware FIFO queues with registered-output, single-port semantics.

use crate::stats::FifoStats;
use std::collections::VecDeque;

/// Handle to a FIFO registered with an [`crate::Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FifoId(pub(crate) usize);

impl FifoId {
    /// The raw index (useful for table-driven kernel wiring).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Why a push was refused this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The FIFO is at capacity (counting this cycle's staged push).
    Full,
    /// The single write port was already used this cycle.
    PortBusy,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full => write!(f, "fifo full"),
            PushError::PortBusy => write!(f, "fifo write port already used this cycle"),
        }
    }
}

impl std::error::Error for PushError {}

/// A bounded hardware FIFO.
///
/// Port semantics per cycle (matching a registered FPGA FIFO):
/// * at most one push — a second push the same cycle gets
///   [`PushError::PortBusy`];
/// * at most one pop — a second pop the same cycle returns `None`;
/// * a pushed value becomes poppable the *next* cycle (one cycle of
///   latency through the output register);
/// * capacity counts stored plus staged elements.
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    name: String,
    capacity: usize,
    queue: VecDeque<T>,
    staged: Option<T>,
    pushed_this_cycle: bool,
    popped_this_cycle: bool,
    stats: FifoStats,
    /// Injected-fault stall counters: while non-zero, the corresponding
    /// port refuses transfers (modeling a wedged upstream/downstream
    /// handshake). Decremented each cycle.
    forced_push_stall: u64,
    forced_pop_stall: u64,
    /// Stall attempts observed this cycle, committed into the `last_*`
    /// pair at [`end_cycle`](Fifo::end_cycle). The committed pair survives
    /// fast-forwarding (skipped cycles repeat the last executed one
    /// verbatim), so deadlock snapshots are identical with and without
    /// skipping.
    push_stalled_this_cycle: bool,
    pop_stalled_this_cycle: bool,
    last_push_stalled: bool,
    last_pop_stalled: bool,
}

/// Which FIFO port an injected stall wedges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallPort {
    /// The write port: pushes fail with [`PushError::Full`].
    Push,
    /// The read port: pops return `None`.
    Pop,
}

impl<T> Fifo<T> {
    /// Creates a FIFO with the given display name and capacity.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — a zero-depth FIFO can never transfer
    /// data under registered-output semantics.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be at least 1");
        Fifo {
            name: name.into(),
            capacity,
            queue: VecDeque::new(),
            staged: None,
            pushed_this_cycle: false,
            popped_this_cycle: false,
            stats: FifoStats::default(),
            forced_push_stall: 0,
            forced_pop_stall: 0,
            push_stalled_this_cycle: false,
            pop_stalled_this_cycle: false,
            last_push_stalled: false,
            last_pop_stalled: false,
        }
    }

    /// The FIFO's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Elements currently visible to pops (excludes the staged element).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no elements are poppable this cycle.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total occupancy including the staged element.
    pub fn occupancy(&self) -> usize {
        self.queue.len() + usize::from(self.staged.is_some())
    }

    /// Attempts to push a value this cycle.
    ///
    /// # Errors
    /// [`PushError::PortBusy`] if already pushed this cycle,
    /// [`PushError::Full`] if at capacity.
    pub fn try_push(&mut self, value: T) -> Result<(), PushError> {
        if self.pushed_this_cycle {
            self.stats.push_port_conflicts += 1;
            return Err(PushError::PortBusy);
        }
        if self.forced_push_stall > 0 {
            // Injected fault: the port looks full to the producer.
            self.stats.push_stalls += 1;
            self.push_stalled_this_cycle = true;
            return Err(PushError::Full);
        }
        if self.occupancy() >= self.capacity {
            self.stats.push_stalls += 1;
            self.push_stalled_this_cycle = true;
            return Err(PushError::Full);
        }
        debug_assert!(self.staged.is_none());
        self.staged = Some(value);
        self.pushed_this_cycle = true;
        self.stats.pushes += 1;
        Ok(())
    }

    /// Attempts to pop a value this cycle. Returns `None` when empty or the
    /// read port was already used.
    pub fn try_pop(&mut self) -> Option<T> {
        if self.popped_this_cycle {
            self.stats.pop_port_conflicts += 1;
            return None;
        }
        if self.forced_pop_stall > 0 {
            // Injected fault: the port looks empty to the consumer.
            self.stats.pop_stalls += 1;
            self.pop_stalled_this_cycle = true;
            return None;
        }
        match self.queue.pop_front() {
            Some(v) => {
                self.popped_this_cycle = true;
                self.stats.pops += 1;
                Some(v)
            }
            None => {
                self.stats.pop_stalls += 1;
                self.pop_stalled_this_cycle = true;
                None
            }
        }
    }

    /// Peeks at the head without consuming it (combinational read of the
    /// output register).
    pub fn peek(&self) -> Option<&T> {
        self.queue.front()
    }

    /// Commits the cycle: staged pushes become visible, ports free up,
    /// occupancy statistics update. Called by the engine once per cycle.
    pub fn end_cycle(&mut self) {
        if let Some(v) = self.staged.take() {
            self.queue.push_back(v);
        }
        self.pushed_this_cycle = false;
        self.popped_this_cycle = false;
        self.last_push_stalled = self.push_stalled_this_cycle;
        self.last_pop_stalled = self.pop_stalled_this_cycle;
        self.push_stalled_this_cycle = false;
        self.pop_stalled_this_cycle = false;
        self.forced_push_stall = self.forced_push_stall.saturating_sub(1);
        self.forced_pop_stall = self.forced_pop_stall.saturating_sub(1);
        self.stats.high_water = self.stats.high_water.max(self.queue.len());
        self.stats.occupancy_sum += self.queue.len() as u64;
        self.stats.cycles += 1;
    }

    /// Injects a `cycles`-long stall on one port (fault injection):
    /// `u64::MAX` wedges the port permanently. The stall begins with the
    /// current cycle and decays in [`end_cycle`](Fifo::end_cycle).
    pub fn inject_stall(&mut self, port: StallPort, cycles: u64) {
        match port {
            StallPort::Push => self.forced_push_stall = self.forced_push_stall.max(cycles),
            StallPort::Pop => self.forced_pop_stall = self.forced_pop_stall.max(cycles),
        }
    }

    /// Remaining injected-stall cycles across both ports (0 when healthy).
    /// The engine treats stall expiry as a wake event for fast-forwarding.
    pub fn forced_stall_remaining(&self) -> u64 {
        self.forced_push_stall.max(self.forced_pop_stall)
    }

    /// Whether a producer failed to push during the most recently committed
    /// cycle. Stable across fast-forwarding (skipped cycles replay the last
    /// executed one), so deadlock snapshots agree with cycle-exact runs.
    pub fn last_push_stalled(&self) -> bool {
        self.last_push_stalled
    }

    /// Whether a consumer failed to pop during the most recently committed
    /// cycle (see [`last_push_stalled`](Fifo::last_push_stalled)).
    pub fn last_pop_stalled(&self) -> bool {
        self.last_pop_stalled
    }

    /// Replays `n` quiescent [`end_cycle`](Fifo::end_cycle)s in O(1):
    /// no ports were used and nothing is staged, so only the occupancy
    /// statistics advance. Called by the engine when fast-forwarding.
    pub(crate) fn fast_forward(&mut self, n: u64) {
        debug_assert!(self.staged.is_none() && !self.pushed_this_cycle && !self.popped_this_cycle);
        self.forced_push_stall = self.forced_push_stall.saturating_sub(n);
        self.forced_pop_stall = self.forced_pop_stall.saturating_sub(n);
        self.stats.high_water = self.stats.high_water.max(self.queue.len());
        self.stats.occupancy_sum += self.queue.len() as u64 * n;
        self.stats.cycles += n;
    }

    /// Activity/stall statistics.
    pub fn stats(&self) -> &FifoStats {
        &self.stats
    }

    /// Whether any transfer happened this cycle (used for deadlock
    /// detection).
    pub(crate) fn active_this_cycle(&self) -> bool {
        self.pushed_this_cycle || self.popped_this_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_is_visible_next_cycle_only() {
        let mut f = Fifo::new("q", 4);
        f.try_push(1).unwrap();
        assert_eq!(f.try_pop(), None, "same-cycle pop must miss");
        f.end_cycle();
        assert_eq!(f.try_pop(), Some(1));
    }

    #[test]
    fn one_push_per_cycle() {
        let mut f = Fifo::new("q", 4);
        f.try_push(1).unwrap();
        assert_eq!(f.try_push(2).unwrap_err(), PushError::PortBusy);
        f.end_cycle();
        f.try_push(2).unwrap();
    }

    #[test]
    fn one_pop_per_cycle() {
        let mut f = Fifo::new("q", 4);
        f.try_push(1).unwrap();
        f.end_cycle();
        f.try_push(2).unwrap();
        f.end_cycle();
        assert_eq!(f.try_pop(), Some(1));
        assert_eq!(f.try_pop(), None, "read port busy");
        f.end_cycle();
        assert_eq!(f.try_pop(), Some(2));
    }

    #[test]
    fn capacity_counts_staged_element() {
        let mut f = Fifo::new("q", 1);
        f.try_push(1).unwrap();
        f.end_cycle();
        assert_eq!(f.try_push(2).unwrap_err(), PushError::Full);
        assert_eq!(f.occupancy(), 1);
        // Draining frees space, but only within the same cycle's pop.
        assert_eq!(f.try_pop(), Some(1));
        f.try_push(2).unwrap();
        f.end_cycle();
        assert_eq!(f.try_pop(), Some(2));
    }

    #[test]
    fn depth_one_fifo_sustains_alternating_transfers() {
        // A depth-1 registered FIFO transfers at best every cycle when
        // producer and consumer alternate push/pop within each cycle.
        let mut f = Fifo::new("q", 1);
        let mut received = Vec::new();
        let mut next = 0;
        for _ in 0..10 {
            if let Some(v) = f.try_pop() {
                received.push(v);
            }
            if f.try_push(next).is_ok() {
                next += 1;
            }
            f.end_cycle();
        }
        assert_eq!(received, vec![0, 1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn stats_track_stalls_and_high_water() {
        let mut f = Fifo::new("q", 2);
        assert!(f.try_pop().is_none()); // pop stall
        f.try_push(1).unwrap();
        f.end_cycle();
        f.try_push(2).unwrap();
        f.end_cycle();
        assert_eq!(f.try_push(3).unwrap_err(), PushError::Full); // push stall
        f.end_cycle();
        let s = f.stats();
        assert_eq!(s.pushes, 2);
        assert_eq!(s.pop_stalls, 1);
        assert_eq!(s.push_stalls, 1);
        assert_eq!(s.high_water, 2);
        assert!(s.mean_occupancy() > 0.0);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut f = Fifo::new("q", 2);
        f.try_push(7).unwrap();
        f.end_cycle();
        assert_eq!(f.peek(), Some(&7));
        assert_eq!(f.try_pop(), Some(7));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Fifo::<u8>::new("q", 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    /// Random push/pop schedules against a reference queue: the FIFO is a
    /// VecDeque with port limits and one cycle of push latency.
    #[derive(Debug, Clone)]
    enum Action {
        Push(u16),
        Pop,
        EndCycle,
    }

    fn action_strategy() -> impl Strategy<Value = Action> {
        prop_oneof![
            (0u16..1000).prop_map(Action::Push),
            Just(Action::Pop),
            Just(Action::EndCycle),
        ]
    }

    proptest! {
        #[test]
        fn fifo_matches_reference_model(
            capacity in 1usize..8,
            actions in proptest::collection::vec(action_strategy(), 1..200),
        ) {
            let mut fifo = Fifo::new("f", capacity);
            let mut reference: VecDeque<u16> = VecDeque::new();
            let mut staged: Option<u16> = None;
            let mut pushed = false;
            let mut popped = false;
            for a in actions {
                match a {
                    Action::Push(v) => {
                        let expect_ok = !pushed && reference.len() + usize::from(staged.is_some()) < capacity;
                        let got = fifo.try_push(v);
                        prop_assert_eq!(got.is_ok(), expect_ok, "push state");
                        if expect_ok {
                            staged = Some(v);
                            pushed = true;
                        }
                    }
                    Action::Pop => {
                        let expect = if popped { None } else { reference.front().copied() };
                        let got = fifo.try_pop();
                        prop_assert_eq!(got, expect, "pop value");
                        if expect.is_some() {
                            reference.pop_front();
                            popped = true;
                        }
                    }
                    Action::EndCycle => {
                        fifo.end_cycle();
                        if let Some(v) = staged.take() {
                            reference.push_back(v);
                        }
                        pushed = false;
                        popped = false;
                    }
                }
                prop_assert_eq!(fifo.len(), reference.len(), "visible length");
            }
        }
    }
}
