//! Hardware FIFO queues with registered-output, single-port semantics.
//!
//! Storage is a fixed-capacity power-of-two ring buffer with an inline
//! staging slot (the output register), so pushes, pops and cycle commits
//! are branch-light O(1) operations with no heap traffic after
//! construction. Occupancy statistics accrue lazily against an internal
//! cycle counter: the engine only commits the FIFOs that were actually
//! touched in a cycle, and `Fifo::sync` settles the untouched stretch
//! in O(1) when the FIFO is next used (the occupancy is constant while
//! nobody touches it, so the accrual is exact).

use crate::stats::FifoStats;

/// Handle to a FIFO registered with an [`crate::Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FifoId(pub(crate) usize);

impl FifoId {
    /// The raw index (useful for table-driven kernel wiring).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Why a push was refused this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The FIFO is at capacity (counting this cycle's staged push).
    Full,
    /// The single write port was already used this cycle.
    PortBusy,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full => write!(f, "fifo full"),
            PushError::PortBusy => write!(f, "fifo write port already used this cycle"),
        }
    }
}

impl std::error::Error for PushError {}

/// A bounded hardware FIFO.
///
/// Port semantics per cycle (matching a registered FPGA FIFO):
/// * at most one push — a second push the same cycle gets
///   [`PushError::PortBusy`];
/// * at most one pop — a second pop the same cycle returns `None`;
/// * a pushed value becomes poppable the *next* cycle (one cycle of
///   latency through the output register);
/// * capacity counts stored plus staged elements.
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    name: String,
    capacity: usize,
    /// Ring storage, `capacity.next_power_of_two()` slots.
    buf: Box<[Option<T>]>,
    /// Index mask (`buf.len() - 1`).
    mask: usize,
    /// Ring read position.
    head: usize,
    /// Elements visible to pops (excludes the staged element).
    len: usize,
    /// The output register: this cycle's push, visible next cycle.
    staged: Option<T>,
    /// Cycles committed so far (the next cycle to account). Advanced by
    /// [`end_cycle`](Fifo::end_cycle) and [`sync`](Fifo::sync).
    now: u64,
    pushed_this_cycle: bool,
    popped_this_cycle: bool,
    stats: FifoStats,
    /// Injected-fault stall expiry (absolute cycle against `now`): while
    /// `now < until`, the corresponding port refuses transfers (modeling a
    /// wedged upstream/downstream handshake). `u64::MAX` wedges the port
    /// permanently. Absolute expiries are invariant under both
    /// fast-forwarding and event-driven cycle jumps.
    push_stall_until: u64,
    pop_stall_until: u64,
    /// Stall attempts observed this cycle, committed into the `last_*`
    /// pair at [`end_cycle`](Fifo::end_cycle). The committed pair survives
    /// fast-forwarding and parked-kernel stretches (skipped cycles repeat
    /// the last executed one verbatim), so deadlock snapshots are
    /// identical with and without skipping.
    push_stalled_this_cycle: bool,
    pop_stalled_this_cycle: bool,
    last_push_stalled: bool,
    last_pop_stalled: bool,
}

/// Which FIFO port an injected stall wedges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallPort {
    /// The write port: pushes fail with [`PushError::Full`].
    Push,
    /// The read port: pops return `None`.
    Pop,
}

impl<T> Fifo<T> {
    /// Creates a FIFO with the given display name and capacity.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — a zero-depth FIFO can never transfer
    /// data under registered-output semantics.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be at least 1");
        let slots = capacity.next_power_of_two();
        Fifo {
            name: name.into(),
            capacity,
            buf: (0..slots).map(|_| None).collect(),
            mask: slots - 1,
            head: 0,
            len: 0,
            staged: None,
            now: 0,
            pushed_this_cycle: false,
            popped_this_cycle: false,
            stats: FifoStats::default(),
            push_stall_until: 0,
            pop_stall_until: 0,
            push_stalled_this_cycle: false,
            pop_stalled_this_cycle: false,
            last_push_stalled: false,
            last_pop_stalled: false,
        }
    }

    /// The FIFO's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Elements currently visible to pops (excludes the staged element).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no elements are poppable this cycle.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total occupancy including the staged element.
    pub fn occupancy(&self) -> usize {
        self.len + usize::from(self.staged.is_some())
    }

    /// Attempts to push a value this cycle.
    ///
    /// # Errors
    /// [`PushError::PortBusy`] if already pushed this cycle,
    /// [`PushError::Full`] if at capacity.
    pub fn try_push(&mut self, value: T) -> Result<(), PushError> {
        if self.pushed_this_cycle {
            self.stats.push_port_conflicts += 1;
            return Err(PushError::PortBusy);
        }
        if self.now < self.push_stall_until {
            // Injected fault: the port looks full to the producer.
            self.stats.push_stalls += 1;
            self.push_stalled_this_cycle = true;
            return Err(PushError::Full);
        }
        if self.occupancy() >= self.capacity {
            self.stats.push_stalls += 1;
            self.push_stalled_this_cycle = true;
            return Err(PushError::Full);
        }
        debug_assert!(self.staged.is_none());
        self.staged = Some(value);
        self.pushed_this_cycle = true;
        self.stats.pushes += 1;
        Ok(())
    }

    /// Attempts to pop a value this cycle. Returns `None` when empty or the
    /// read port was already used.
    pub fn try_pop(&mut self) -> Option<T> {
        if self.popped_this_cycle {
            self.stats.pop_port_conflicts += 1;
            return None;
        }
        if self.now < self.pop_stall_until {
            // Injected fault: the port looks empty to the consumer.
            self.stats.pop_stalls += 1;
            self.pop_stalled_this_cycle = true;
            return None;
        }
        if self.len == 0 {
            self.stats.pop_stalls += 1;
            self.pop_stalled_this_cycle = true;
            return None;
        }
        let v = self.buf[self.head].take();
        debug_assert!(v.is_some());
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
        self.popped_this_cycle = true;
        self.stats.pops += 1;
        v
    }

    /// Peeks at the head without consuming it (combinational read of the
    /// output register).
    pub fn peek(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            self.buf[self.head].as_ref()
        }
    }

    /// Settles occupancy statistics for the untouched stretch up to
    /// `cycle`: while nobody pushed or popped, the visible length was
    /// constant, so the accrual is exact and O(1). Called by the engine
    /// before the first port operation of a cycle and before snapshots.
    #[inline]
    pub(crate) fn sync(&mut self, cycle: u64) {
        if cycle > self.now {
            debug_assert!(self.staged.is_none() && !self.pushed_this_cycle && !self.popped_this_cycle);
            let n = cycle - self.now;
            self.stats.high_water = self.stats.high_water.max(self.len);
            self.stats.occupancy_sum += self.len as u64 * n;
            self.stats.cycles += n;
            self.now = cycle;
        }
    }

    /// Commits the cycle: staged pushes become visible, ports free up,
    /// occupancy statistics update. Called by the engine once per cycle in
    /// which the FIFO was touched (every cycle under the dense stepper).
    pub fn end_cycle(&mut self) {
        if let Some(v) = self.staged.take() {
            let tail = (self.head + self.len) & self.mask;
            debug_assert!(self.buf[tail].is_none());
            self.buf[tail] = Some(v);
            self.len += 1;
        }
        self.pushed_this_cycle = false;
        self.popped_this_cycle = false;
        self.last_push_stalled = self.push_stalled_this_cycle;
        self.last_pop_stalled = self.pop_stalled_this_cycle;
        self.push_stalled_this_cycle = false;
        self.pop_stalled_this_cycle = false;
        self.stats.high_water = self.stats.high_water.max(self.len);
        self.stats.occupancy_sum += self.len as u64;
        self.stats.cycles += 1;
        self.now += 1;
    }

    /// Injects a `cycles`-long stall on one port (fault injection):
    /// `u64::MAX` wedges the port permanently. The stall begins with the
    /// current cycle and expires on its own once `cycles` have elapsed.
    pub fn inject_stall(&mut self, port: StallPort, cycles: u64) {
        let until = if cycles == u64::MAX { u64::MAX } else { self.now.saturating_add(cycles) };
        match port {
            StallPort::Push => self.push_stall_until = self.push_stall_until.max(until),
            StallPort::Pop => self.pop_stall_until = self.pop_stall_until.max(until),
        }
    }

    /// Remaining injected-stall cycles across both ports (0 when healthy).
    /// The engine treats stall expiry as a wake event for fast-forwarding
    /// and for re-running parked kernels.
    pub fn forced_stall_remaining(&self) -> u64 {
        let port = |until: u64, now: u64| {
            if until == u64::MAX {
                u64::MAX
            } else {
                until.saturating_sub(now)
            }
        };
        port(self.push_stall_until, self.now).max(port(self.pop_stall_until, self.now))
    }

    /// Whether a producer failed to push during the most recently committed
    /// cycle. Stable across fast-forwarding and parked stretches (skipped
    /// cycles replay the last executed one), so deadlock snapshots agree
    /// with cycle-exact runs.
    pub fn last_push_stalled(&self) -> bool {
        self.last_push_stalled
    }

    /// Whether a consumer failed to pop during the most recently committed
    /// cycle (see [`last_push_stalled`](Fifo::last_push_stalled)).
    pub fn last_pop_stalled(&self) -> bool {
        self.last_pop_stalled
    }

    /// Replays `n` quiescent [`end_cycle`](Fifo::end_cycle)s in O(1):
    /// no ports were used and nothing is staged, so only the occupancy
    /// statistics advance. Called by the engine when fast-forwarding.
    pub(crate) fn fast_forward(&mut self, n: u64) {
        let target = self.now.saturating_add(n);
        self.sync(target);
    }

    /// Activity/stall statistics.
    pub fn stats(&self) -> &FifoStats {
        &self.stats
    }

    /// Whether any transfer happened this cycle (used for deadlock
    /// detection).
    pub(crate) fn active_this_cycle(&self) -> bool {
        self.pushed_this_cycle || self.popped_this_cycle
    }

    /// Whether the read port was already used this cycle (so a failed pop
    /// is a port conflict, not an empty/stall condition).
    pub(crate) fn pop_port_used(&self) -> bool {
        self.popped_this_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_is_visible_next_cycle_only() {
        let mut f = Fifo::new("q", 4);
        f.try_push(1).unwrap();
        assert_eq!(f.try_pop(), None, "same-cycle pop must miss");
        f.end_cycle();
        assert_eq!(f.try_pop(), Some(1));
    }

    #[test]
    fn one_push_per_cycle() {
        let mut f = Fifo::new("q", 4);
        f.try_push(1).unwrap();
        assert_eq!(f.try_push(2).unwrap_err(), PushError::PortBusy);
        f.end_cycle();
        f.try_push(2).unwrap();
    }

    #[test]
    fn one_pop_per_cycle() {
        let mut f = Fifo::new("q", 4);
        f.try_push(1).unwrap();
        f.end_cycle();
        f.try_push(2).unwrap();
        f.end_cycle();
        assert_eq!(f.try_pop(), Some(1));
        assert_eq!(f.try_pop(), None, "read port busy");
        f.end_cycle();
        assert_eq!(f.try_pop(), Some(2));
    }

    #[test]
    fn capacity_counts_staged_element() {
        let mut f = Fifo::new("q", 1);
        f.try_push(1).unwrap();
        f.end_cycle();
        assert_eq!(f.try_push(2).unwrap_err(), PushError::Full);
        assert_eq!(f.occupancy(), 1);
        // Draining frees space, but only within the same cycle's pop.
        assert_eq!(f.try_pop(), Some(1));
        f.try_push(2).unwrap();
        f.end_cycle();
        assert_eq!(f.try_pop(), Some(2));
    }

    #[test]
    fn depth_one_fifo_sustains_alternating_transfers() {
        // A depth-1 registered FIFO transfers at best every cycle when
        // producer and consumer alternate push/pop within each cycle.
        let mut f = Fifo::new("q", 1);
        let mut received = Vec::new();
        let mut next = 0;
        for _ in 0..10 {
            if let Some(v) = f.try_pop() {
                received.push(v);
            }
            if f.try_push(next).is_ok() {
                next += 1;
            }
            f.end_cycle();
        }
        assert_eq!(received, vec![0, 1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn stats_track_stalls_and_high_water() {
        let mut f = Fifo::new("q", 2);
        assert!(f.try_pop().is_none()); // pop stall
        f.try_push(1).unwrap();
        f.end_cycle();
        f.try_push(2).unwrap();
        f.end_cycle();
        assert_eq!(f.try_push(3).unwrap_err(), PushError::Full); // push stall
        f.end_cycle();
        let s = f.stats();
        assert_eq!(s.pushes, 2);
        assert_eq!(s.pop_stalls, 1);
        assert_eq!(s.push_stalls, 1);
        assert_eq!(s.high_water, 2);
        assert!(s.mean_occupancy() > 0.0);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut f = Fifo::new("q", 2);
        f.try_push(7).unwrap();
        f.end_cycle();
        assert_eq!(f.peek(), Some(&7));
        assert_eq!(f.try_pop(), Some(7));
    }

    #[test]
    fn ring_wraps_across_many_cycles() {
        // Non-power-of-two capacity exercises the mask/rounding path; the
        // ring must wrap head/tail indefinitely without reordering.
        let mut f = Fifo::new("q", 3);
        let mut next = 0u32;
        let mut expect = 0u32;
        for _ in 0..1000 {
            if let Some(v) = f.try_pop() {
                assert_eq!(v, expect);
                expect += 1;
            }
            if f.try_push(next).is_ok() {
                next += 1;
            }
            f.end_cycle();
            assert!(f.occupancy() <= f.capacity());
        }
        assert!(expect > 900, "sustained transfers: {expect}");
    }

    #[test]
    fn lazy_sync_accrues_untouched_cycles_exactly() {
        let mut f = Fifo::new("q", 4);
        f.try_push(1).unwrap();
        f.end_cycle(); // cycle 0 accounted, len 1 afterwards
        // Nothing touches the FIFO for cycles 1..=9.
        f.sync(10);
        let s = f.stats();
        assert_eq!(s.cycles, 10);
        assert_eq!(s.occupancy_sum, 1 + 9, "cycle 0 at len 1 post-commit, then 9 at len 1");
        assert_eq!(s.high_water, 1);
        // Synced to cycle 10: operations and commits continue from there.
        assert_eq!(f.try_pop(), Some(1));
        f.end_cycle();
        assert_eq!(f.stats().cycles, 11);
    }

    #[test]
    fn injected_stall_expiry_is_absolute() {
        let mut f = Fifo::new("q", 4);
        f.try_push(1).unwrap();
        f.end_cycle(); // now = 1
        f.inject_stall(StallPort::Pop, 3); // wedged for cycles 1, 2, 3
        assert_eq!(f.forced_stall_remaining(), 3);
        assert_eq!(f.try_pop(), None, "stalled");
        f.end_cycle(); // now = 2
        // Skipping ahead must expire the stall at the same cycle as
        // stepping through it.
        f.sync(4);
        assert_eq!(f.forced_stall_remaining(), 0);
        assert_eq!(f.try_pop(), Some(1));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Fifo::<u8>::new("q", 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    /// Random push/pop schedules against a reference queue: the FIFO is a
    /// VecDeque with port limits and one cycle of push latency.
    #[derive(Debug, Clone)]
    enum Action {
        Push(u16),
        Pop,
        EndCycle,
    }

    fn action_strategy() -> impl Strategy<Value = Action> {
        prop_oneof![
            (0u16..1000).prop_map(Action::Push),
            Just(Action::Pop),
            Just(Action::EndCycle),
        ]
    }

    proptest! {
        #[test]
        fn fifo_matches_reference_model(
            capacity in 1usize..8,
            actions in proptest::collection::vec(action_strategy(), 1..200),
        ) {
            let mut fifo = Fifo::new("f", capacity);
            let mut reference: VecDeque<u16> = VecDeque::new();
            let mut staged: Option<u16> = None;
            let mut pushed = false;
            let mut popped = false;
            for a in actions {
                match a {
                    Action::Push(v) => {
                        let expect_ok = !pushed && reference.len() + usize::from(staged.is_some()) < capacity;
                        let got = fifo.try_push(v);
                        prop_assert_eq!(got.is_ok(), expect_ok, "push state");
                        if expect_ok {
                            staged = Some(v);
                            pushed = true;
                        }
                    }
                    Action::Pop => {
                        let expect = if popped { None } else { reference.front().copied() };
                        let got = fifo.try_pop();
                        prop_assert_eq!(got, expect, "pop value");
                        if expect.is_some() {
                            reference.pop_front();
                            popped = true;
                        }
                    }
                    Action::EndCycle => {
                        fifo.end_cycle();
                        if let Some(v) = staged.take() {
                            reference.push_back(v);
                        }
                        pushed = false;
                        popped = false;
                    }
                }
                prop_assert_eq!(fifo.len(), reference.len(), "visible length");
                prop_assert_eq!(fifo.peek(), reference.front(), "head element");
            }
        }
    }
}
