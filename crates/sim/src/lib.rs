//! Cycle-level simulation of streaming hardware kernels connected by FIFOs.
//!
//! LegUp HLS synthesizes Pthreads producer/consumer software into spatial
//! hardware: each thread becomes a pipelined streaming kernel, and the
//! `LEGUP_PTHREAD_FIFO` queues become hardware FIFOs (paper §II-A). This
//! crate models that execution substrate at cycle granularity:
//!
//! * [`Fifo`] — a bounded queue with hardware port semantics: one push and
//!   one pop per cycle, pushes visible the *next* cycle (registered
//!   output), stall accounting;
//! * [`Kernel`] — a streaming kernel ticked once per cycle, reporting
//!   whether it did work, was blocked on a queue, idled, or finished;
//! * [`Engine`] — owns kernels and FIFOs, advances cycles, detects
//!   deadlock, and aggregates statistics (busy/stall cycles, FIFO
//!   high-water marks, user activity counters for the power model);
//! * [`Barrier`] — the Pthreads-barrier analogue used to synchronize the
//!   four accumulator units at each OFM tile position (paper §III-B1).
//!
//! # Example
//!
//! ```
//! use zskip_sim::{Engine, Fifo, FifoId, Kernel, Ctx, Progress};
//!
//! struct Producer { out: FifoId, left: u32 }
//! impl Kernel<u32> for Producer {
//!     fn name(&self) -> &str { "producer" }
//!     fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
//!         if self.left == 0 { return Progress::Done; }
//!         if ctx.fifos.try_push(self.out, self.left).is_ok() {
//!             self.left -= 1;
//!             Progress::Busy
//!         } else {
//!             Progress::Blocked
//!         }
//!     }
//! }
//!
//! struct Consumer { inp: FifoId, sum: u32, expect: u32 }
//! impl Kernel<u32> for Consumer {
//!     fn name(&self) -> &str { "consumer" }
//!     fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
//!         match ctx.fifos.try_pop(self.inp) {
//!             Some(v) => { self.sum += v; self.expect -= 1;
//!                          if self.expect == 0 { Progress::Done } else { Progress::Busy } }
//!             None => Progress::Blocked,
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! let q = engine.add_fifo(Fifo::new("q", 2));
//! engine.add_kernel(Box::new(Producer { out: q, left: 10 }));
//! engine.add_kernel(Box::new(Consumer { inp: q, sum: 0, expect: 10 }));
//! let report = engine.run(1_000).unwrap();
//! assert!(report.cycles > 10); // FIFO latency + backpressure
//! ```

pub mod barrier;
pub mod engine;
pub mod fifo;
pub mod stats;
pub mod trace;

pub use barrier::Barrier;
pub use engine::{
    ConfigError, Ctx, Engine, EngineBuilder, FifoSet, FifoSnapshot, Horizon, Kernel, NullObserver,
    Observer, Progress, RunReport, SchedMode, SimError, TraceObserver, DEFAULT_PARK_HYSTERESIS,
};
pub use fifo::{Fifo, FifoId, PushError, StallPort};
pub use stats::{CounterId, Counters, FifoStats, KernelStats, SchedStats};
pub use trace::Trace;
