//! The cycle-stepped simulation engine.

use crate::fifo::{Fifo, FifoId, PushError, StallPort};
use crate::stats::{Counters, KernelStats};
use crate::trace::Trace;
use std::fmt;
use zskip_fault::{FaultKind, SharedFaultPlan};

/// What a kernel accomplished in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// Performed work this cycle.
    Busy,
    /// Wanted to work but a FIFO was full/empty.
    Blocked,
    /// Nothing to do this cycle.
    Idle,
    /// Finished all work; will not be ticked again.
    Done,
}

/// How far ahead a kernel's behavior is predictable while the design is
/// quiescent (no kernel busy, no FIFO transfer). Drives idle-cycle
/// fast-forwarding: when every unfinished kernel is non-[`Opaque`], the
/// engine can jump the cycle counter over the stretch instead of ticking
/// through it.
///
/// [`Opaque`]: Horizon::Opaque
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Horizon {
    /// The engine cannot predict this kernel: tick it every cycle. The
    /// default — always safe.
    Opaque,
    /// The kernel only reacts to FIFO state: while its FIFOs are
    /// unchanged, its tick returns the same [`Progress`], mutates no
    /// kernel state, touches no [`Ctx::counters`].
    Reactive,
    /// As [`Reactive`](Horizon::Reactive) until the given absolute cycle,
    /// at which point the kernel may act on its own (e.g. a modeled
    /// host-polling interval or DMA completion latency).
    Sleep(u64),
}

/// A streaming hardware kernel (one synthesized Pthread).
///
/// `M` is the message type carried by the design's FIFOs; a design defines
/// one enum covering all its queue payloads, mirroring how each hardware
/// FIFO has a fixed bit-level payload format.
pub trait Kernel<M> {
    /// Display name for reports.
    fn name(&self) -> &str;

    /// Advances the kernel by one clock cycle.
    fn tick(&mut self, ctx: &mut Ctx<'_, M>) -> Progress;

    /// Declares how far the kernel is predictable during quiescence.
    /// Defaults to [`Horizon::Opaque`] (never fast-forwarded).
    fn horizon(&self) -> Horizon {
        Horizon::Opaque
    }

    /// Notifies the kernel that the engine skipped `_skipped` quiescent
    /// cycles without ticking it, so per-cycle side effects that are
    /// invariant under quiescence (e.g. committing a shared resource's
    /// port state) can be replayed in bulk. Default: nothing to replay.
    fn fast_forward(&mut self, _skipped: u64) {}
}

/// Access to the design's FIFOs during a tick, with port-semantics
/// enforcement delegated to each [`Fifo`].
pub struct FifoSet<'a, M> {
    fifos: &'a mut [Fifo<M>],
}

impl<'a, M> FifoSet<'a, M> {
    /// Attempts to push onto FIFO `id` this cycle.
    ///
    /// # Errors
    /// Propagates the FIFO's [`PushError`].
    pub fn try_push(&mut self, id: FifoId, value: M) -> Result<(), PushError> {
        self.fifos[id.0].try_push(value)
    }

    /// Attempts to pop from FIFO `id` this cycle.
    pub fn try_pop(&mut self, id: FifoId) -> Option<M> {
        self.fifos[id.0].try_pop()
    }

    /// Peeks at FIFO `id` without consuming.
    pub fn peek(&self, id: FifoId) -> Option<&M> {
        self.fifos[id.0].peek()
    }

    /// Number of poppable elements in FIFO `id`.
    pub fn len(&self, id: FifoId) -> usize {
        self.fifos[id.0].len()
    }

    /// Whether FIFO `id` has no poppable elements.
    pub fn is_empty(&self, id: FifoId) -> bool {
        self.fifos[id.0].is_empty()
    }

    /// Whether FIFO `id` has room for a push this cycle.
    pub fn has_room(&self, id: FifoId) -> bool {
        self.fifos[id.0].occupancy() < self.fifos[id.0].capacity()
    }
}

/// Per-tick context handed to kernels.
pub struct Ctx<'a, M> {
    /// Current cycle number.
    pub cycle: u64,
    /// The design's FIFOs.
    pub fifos: FifoSet<'a, M>,
    /// Shared activity counters (MACs, bank reads, ...) for the power model.
    pub counters: &'a mut Counters,
}

/// The simulation engine: owns kernels and FIFOs, steps cycles.
pub struct Engine<M> {
    fifos: Vec<Fifo<M>>,
    kernels: Vec<KernelSlot<M>>,
    counters: Counters,
    cycle: u64,
    deadlock_window: u64,
    trace: Option<Trace>,
    fast_forward: bool,
    skipped: u64,
    fault_plan: Option<SharedFaultPlan>,
    /// `fifo:` injections resolved to indices at run start, pending
    /// application at their trigger cycle.
    armed: Vec<ArmedStall>,
}

/// A resolved `fifo:<name>:push|pop` injection awaiting its trigger cycle.
#[derive(Clone)]
struct ArmedStall {
    site: String,
    at: u64,
    fifo: usize,
    port: StallPort,
    cycles: u64,
}

struct KernelSlot<M> {
    kernel: Box<dyn Kernel<M>>,
    stats: KernelStats,
    done: bool,
    /// Progress of the most recent tick, replayed over skipped cycles.
    last: Progress,
}

/// Outcome of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Per-kernel statistics, in registration order, `(name, stats)`.
    pub kernels: Vec<(String, KernelStats)>,
    /// Aggregated activity counters.
    pub counters: Counters,
}

impl RunReport {
    /// Stats for the kernel with the given name, if present.
    pub fn kernel(&self, name: &str) -> Option<&KernelStats> {
        self.kernels.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Renders a per-kernel utilization table (busy/blocked/idle shares of
    /// pre-completion cycles), sorted as registered.
    pub fn render_utilization(&self) -> String {
        let name_w = self.kernels.iter().map(|(n, _)| n.len()).max().unwrap_or(6).max(6);
        let mut out = format!("{:<name_w$} {:>7} {:>9} {:>7} {:>7}\n", "kernel", "busy%", "blocked%", "idle%", "cycles");
        for (name, s) in &self.kernels {
            let alive = (s.busy + s.blocked + s.idle).max(1) as f64;
            out.push_str(&format!(
                "{:<name_w$} {:>6.1}% {:>8.1}% {:>6.1}% {:>7}\n",
                name,
                s.busy as f64 / alive * 100.0,
                s.blocked as f64 / alive * 100.0,
                s.idle as f64 / alive * 100.0,
                s.total(),
            ));
        }
        out
    }
}

/// State of one FIFO at the moment a deadlock was declared, captured so
/// the error can name *which* queue wedged the design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FifoSnapshot {
    /// FIFO display name.
    pub name: String,
    /// Occupancy (stored + staged elements) at deadlock time.
    pub occupancy: usize,
    /// Configured capacity.
    pub capacity: usize,
    /// Whether an injected fault stall was still pinning a port.
    pub stalled: bool,
    /// Whether a producer failed a push in the last executed cycle.
    pub push_waiting: bool,
    /// Whether a consumer failed a pop in the last executed cycle.
    pub pop_waiting: bool,
}

impl fmt::Display for FifoSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}/{} occupied", self.name, self.occupancy, self.capacity)?;
        if self.stalled {
            write!(f, ", fault-stalled")?;
        }
        if self.push_waiting {
            write!(f, ", producer waiting")?;
        }
        if self.pop_waiting {
            write!(f, ", consumer waiting")?;
        }
        write!(f, ")")
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No kernel made progress and no FIFO moved data for the deadlock
    /// window; lists kernels still blocked.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
        /// Names of kernels blocked on FIFOs.
        blocked: Vec<String>,
        /// Per-FIFO occupancy snapshot at declaration time; see
        /// [`SimError::wedged`] for the prime suspect.
        fifos: Vec<FifoSnapshot>,
    },
    /// The cycle limit elapsed before all kernels finished.
    CycleLimit {
        /// The limit that was hit.
        limit: u64,
        /// Names of kernels not yet done.
        unfinished: Vec<String>,
    },
}

impl SimError {
    /// For a deadlock, the FIFO most likely responsible for the wedge:
    /// an injected stall with a waiting peer beats any other stalled FIFO,
    /// then a full FIFO whose producer is waiting (back-pressure source),
    /// then an empty FIFO whose consumer is waiting (starvation point),
    /// then any FIFO with a waiting peer.
    pub fn wedged(&self) -> Option<&FifoSnapshot> {
        let SimError::Deadlock { fifos, .. } = self else {
            return None;
        };
        fifos
            .iter()
            .find(|s| s.stalled && (s.push_waiting || s.pop_waiting))
            .or_else(|| fifos.iter().find(|s| s.stalled))
            .or_else(|| fifos.iter().find(|s| s.push_waiting && s.occupancy == s.capacity))
            .or_else(|| fifos.iter().find(|s| s.pop_waiting && s.occupancy == 0))
            .or_else(|| fifos.iter().find(|s| s.push_waiting || s.pop_waiting))
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, blocked, .. } => {
                write!(f, "deadlock at cycle {cycle}; blocked kernels: {}", blocked.join(", "))?;
                if let Some(w) = self.wedged() {
                    write!(f, "; wedged fifo: {w}")?;
                }
                Ok(())
            }
            SimError::CycleLimit { limit, unfinished } => {
                write!(f, "cycle limit {limit} reached; unfinished kernels: {}", unfinished.join(", "))
            }
        }
    }
}

impl std::error::Error for SimError {}

impl<M> Default for Engine<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// Validated construction parameters for an [`Engine`]. Obtained via
/// [`Engine::builder`]; [`build`](EngineBuilder::build) checks the
/// configuration instead of panicking or silently clamping.
#[derive(Debug, Default)]
pub struct EngineBuilder {
    trace_capacity: Option<usize>,
    fast_forward: bool,
    deadlock_window: Option<u64>,
    fault_plan: Option<SharedFaultPlan>,
}

/// Invalid engine configuration reported by [`EngineBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A trace window of zero cycles records nothing.
    ZeroTraceCapacity,
    /// A zero-cycle deadlock window would flag every idle cycle.
    ZeroDeadlockWindow,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroTraceCapacity => write!(f, "trace capacity must be at least 1 cycle"),
            ConfigError::ZeroDeadlockWindow => {
                write!(f, "deadlock window must be at least 1 cycle")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl EngineBuilder {
    /// Starts from the defaults (`Engine::new()` semantics: no trace, no
    /// fast-forward, 10 000-cycle deadlock window, no fault plan).
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// Records a waveform trace with a window of `capacity` cycles.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Enables idle-cycle fast-forwarding (see
    /// [`Engine::enable_fast_forward`] for the exact semantics).
    pub fn fast_forward(mut self, enabled: bool) -> Self {
        self.fast_forward = enabled;
        self
    }

    /// Sets the deadlock-detection window in cycles.
    pub fn deadlock_window(mut self, cycles: u64) -> Self {
        self.deadlock_window = Some(cycles);
        self
    }

    /// Attaches a fault plan; its `fifo:` injections are armed when
    /// [`Engine::run`] starts.
    pub fn fault_plan(mut self, plan: SharedFaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Validates the configuration and builds an empty engine.
    ///
    /// # Errors
    /// [`ConfigError`] when the trace capacity or deadlock window is zero.
    pub fn build<M>(self) -> Result<Engine<M>, ConfigError> {
        if self.trace_capacity == Some(0) {
            return Err(ConfigError::ZeroTraceCapacity);
        }
        if self.deadlock_window == Some(0) {
            return Err(ConfigError::ZeroDeadlockWindow);
        }
        let mut engine = Engine::new();
        if let Some(capacity) = self.trace_capacity {
            engine.trace = Some(Trace::new(capacity));
        }
        engine.fast_forward = self.fast_forward;
        if let Some(window) = self.deadlock_window {
            engine.deadlock_window = window;
        }
        engine.fault_plan = self.fault_plan;
        Ok(engine)
    }
}

impl<M> Engine<M> {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Engine {
            fifos: Vec::new(),
            kernels: Vec::new(),
            counters: Counters::new(),
            cycle: 0,
            deadlock_window: 10_000,
            trace: None,
            fast_forward: false,
            skipped: 0,
            fault_plan: None,
            armed: Vec::new(),
        }
    }

    /// Starts a validated builder — the preferred way to configure an
    /// engine. The setter methods ([`enable_trace`](Engine::enable_trace),
    /// [`enable_fast_forward`](Engine::enable_fast_forward),
    /// [`set_deadlock_window`](Engine::set_deadlock_window)) remain as
    /// compatibility shims.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Attaches a fault plan after construction (equivalent to
    /// [`EngineBuilder::fault_plan`]).
    pub fn set_fault_plan(&mut self, plan: SharedFaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Enables idle-cycle fast-forwarding: when a cycle ends with no
    /// kernel busy and no FIFO transfer, and every unfinished kernel
    /// declares a non-[`Horizon::Opaque`] horizon, the engine jumps the
    /// cycle counter to the next possible event (earliest
    /// [`Horizon::Sleep`] wake-up, deadlock declaration, or cycle limit)
    /// and replays the skipped cycles into [`KernelStats`], FIFO
    /// occupancy statistics and the [`Trace`] — the resulting
    /// [`RunReport`] is identical to ticking cycle by cycle. Per-FIFO
    /// *port-poll* counts (push/pop stall attempts) are not accrued over
    /// skipped cycles, since no tick executes to make the attempt.
    pub fn enable_fast_forward(&mut self) {
        self.fast_forward = true;
    }

    /// Cycles elided by fast-forwarding so far (0 unless enabled).
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped
    }

    /// Enables waveform tracing with a window of `capacity` cycles.
    /// Must be called before kernels are registered.
    ///
    /// Deprecated in favor of [`Engine::builder`] +
    /// [`EngineBuilder::trace`], which validates instead of panicking;
    /// kept as a compatibility shim.
    ///
    /// # Panics
    /// Panics if kernels are already registered.
    pub fn enable_trace(&mut self, capacity: usize) {
        assert!(self.kernels.is_empty(), "enable tracing before registering kernels");
        self.trace = Some(Trace::new(capacity));
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Overrides the deadlock-detection window (cycles of global inactivity
    /// before declaring deadlock). Default 10 000. A zero window is
    /// silently clamped to 1; prefer [`Engine::builder`] +
    /// [`EngineBuilder::deadlock_window`], which rejects it instead.
    /// Kept as a compatibility shim.
    pub fn set_deadlock_window(&mut self, cycles: u64) {
        self.deadlock_window = cycles.max(1);
    }

    /// Registers a FIFO, returning its handle.
    pub fn add_fifo(&mut self, fifo: Fifo<M>) -> FifoId {
        self.fifos.push(fifo);
        FifoId(self.fifos.len() - 1)
    }

    /// Registers a kernel. Kernels tick in registration order within a
    /// cycle; combined with registered-FIFO semantics, results do not
    /// depend on that order across cycles.
    pub fn add_kernel(&mut self, kernel: Box<dyn Kernel<M>>) {
        if let Some(t) = &mut self.trace {
            t.add_kernel(kernel.name());
        }
        self.kernels.push(KernelSlot { kernel, stats: KernelStats::default(), done: false, last: Progress::Idle });
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Immutable access to a FIFO (for wiring assertions in tests).
    pub fn fifo(&self, id: FifoId) -> &Fifo<M> {
        &self.fifos[id.0]
    }

    /// Runs until every kernel reports [`Progress::Done`].
    ///
    /// # Errors
    /// [`SimError::Deadlock`] when nothing moves for the deadlock window;
    /// [`SimError::CycleLimit`] when `max_cycles` elapses first.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunReport, SimError> {
        self.arm_fifo_faults();
        let mut last_activity = self.cycle;
        while self.kernels.iter().any(|k| !k.done) {
            if self.cycle >= max_cycles {
                return Err(SimError::CycleLimit {
                    limit: max_cycles,
                    unfinished: self
                        .kernels
                        .iter()
                        .filter(|k| !k.done)
                        .map(|k| k.kernel.name().to_string())
                        .collect(),
                });
            }
            self.apply_armed_faults();
            let any_busy = self.step();
            let fifo_activity = self.fifos.iter().any(Fifo::active_this_cycle);
            self.end_cycle();
            if any_busy || fifo_activity {
                last_activity = self.cycle;
            } else {
                if self.fast_forward {
                    self.try_skip(last_activity, max_cycles);
                }
                if self.cycle - last_activity > self.deadlock_window {
                    return Err(SimError::Deadlock {
                        cycle: self.cycle,
                        blocked: self
                            .kernels
                            .iter()
                            .filter(|k| !k.done)
                            .map(|k| k.kernel.name().to_string())
                            .collect(),
                        fifos: self.fifo_snapshots(),
                    });
                }
            }
        }
        Ok(self.report())
    }

    /// Captures every FIFO's state for a deadlock report.
    fn fifo_snapshots(&self) -> Vec<FifoSnapshot> {
        self.fifos
            .iter()
            .map(|f| FifoSnapshot {
                name: f.name().to_string(),
                occupancy: f.occupancy(),
                capacity: f.capacity(),
                stalled: f.forced_stall_remaining() > 0,
                push_waiting: f.last_push_stalled(),
                pop_waiting: f.last_pop_stalled(),
            })
            .collect()
    }

    /// Pulls `fifo:<name>:push|pop` injections out of the fault plan and
    /// resolves the names against the registered FIFOs. Injections naming
    /// an unknown FIFO or carrying a non-stall kind are dropped (they show
    /// up as never-fired in the plan's log, which is what a campaign
    /// reports).
    fn arm_fifo_faults(&mut self) {
        let Some(plan) = &self.fault_plan else {
            return;
        };
        let drained = plan.lock().unwrap_or_else(|e| e.into_inner()).drain_prefix("fifo:");
        for inj in drained {
            let rest = &inj.site["fifo:".len()..];
            let (name, port) = match rest.rsplit_once(':') {
                Some((n, "push")) => (n, StallPort::Push),
                Some((n, "pop")) => (n, StallPort::Pop),
                _ => continue,
            };
            let FaultKind::FifoStall { cycles } = inj.kind else {
                continue;
            };
            if let Some(idx) = self.fifos.iter().position(|f| f.name() == name) {
                self.armed.push(ArmedStall { site: inj.site.clone(), at: inj.at, fifo: idx, port, cycles });
            }
        }
    }

    /// Applies every armed stall whose trigger cycle has arrived, logging
    /// it as fired in the shared plan.
    fn apply_armed_faults(&mut self) {
        if self.armed.is_empty() {
            return;
        }
        let cycle = self.cycle;
        let mut due = Vec::new();
        self.armed.retain(|a| {
            if a.at <= cycle {
                due.push(a.clone());
                false
            } else {
                true
            }
        });
        for a in due {
            self.fifos[a.fifo].inject_stall(a.port, a.cycles);
            if let Some(plan) = &self.fault_plan {
                plan.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .log_fired(a.site, cycle, FaultKind::FifoStall { cycles: a.cycles });
            }
        }
    }

    /// Ticks every unfinished kernel once. Returns whether any was busy.
    fn step(&mut self) -> bool {
        let mut any_busy = false;
        for (k, slot) in self.kernels.iter_mut().enumerate() {
            if slot.done {
                slot.stats.done += 1;
                if let Some(t) = &mut self.trace {
                    t.record(k, self.cycle, Progress::Done);
                }
                continue;
            }
            let mut ctx = Ctx { cycle: self.cycle, fifos: FifoSet { fifos: &mut self.fifos }, counters: &mut self.counters };
            let progress = slot.kernel.tick(&mut ctx);
            if let Some(t) = &mut self.trace {
                t.record(k, self.cycle, progress);
            }
            slot.last = progress;
            match progress {
                Progress::Busy => {
                    slot.stats.busy += 1;
                    any_busy = true;
                }
                Progress::Blocked => slot.stats.blocked += 1,
                Progress::Idle => slot.stats.idle += 1,
                Progress::Done => {
                    slot.done = true;
                    any_busy = true; // state change counts as progress
                }
            }
        }
        any_busy
    }

    /// Attempts to jump over a quiescent stretch. Called after a cycle in
    /// which nothing was busy and no FIFO moved data, so the cycle just
    /// observed would repeat verbatim until the next event: the earliest
    /// [`Horizon::Sleep`] wake-up, the deadlock declaration, or the cycle
    /// limit. Replays the observed per-kernel [`Progress`] and FIFO
    /// occupancies over the skipped span so the final report is identical
    /// to ticking through it.
    fn try_skip(&mut self, last_activity: u64, max_cycles: u64) {
        let mut wake = u64::MAX;
        for slot in &self.kernels {
            if slot.done {
                continue;
            }
            match slot.kernel.horizon() {
                Horizon::Opaque => return,
                Horizon::Reactive => {}
                Horizon::Sleep(cycle) => wake = wake.min(cycle),
            }
        }
        // Pending fault injections and injected-stall expiries are wake
        // events too: an armed stall must land on its exact trigger cycle,
        // and a stalled port starts accepting transfers again the cycle
        // its counter reaches zero.
        for a in &self.armed {
            wake = wake.min(a.at);
        }
        for f in &self.fifos {
            let remaining = f.forced_stall_remaining();
            if remaining > 0 && remaining != u64::MAX {
                wake = wake.min(self.cycle.saturating_add(remaining));
            }
        }
        // The deadlock check fires at `last_activity + window + 1`; the
        // limit check fires at `max_cycles`. Skip to whichever event is
        // first, never backwards.
        let deadlock_at = last_activity.saturating_add(self.deadlock_window).saturating_add(1);
        let target = wake.min(deadlock_at).min(max_cycles).max(self.cycle);
        let n = target - self.cycle;
        if n == 0 {
            return;
        }
        for (k, slot) in self.kernels.iter_mut().enumerate() {
            let progress = if slot.done { Progress::Done } else { slot.last };
            match progress {
                Progress::Busy => unreachable!("skip only follows a cycle with no busy kernel"),
                Progress::Blocked => slot.stats.blocked += n,
                Progress::Idle => slot.stats.idle += n,
                Progress::Done => slot.stats.done += n,
            }
            if let Some(t) = &mut self.trace {
                t.record_span(k, self.cycle, n, progress);
            }
            if !slot.done {
                slot.kernel.fast_forward(n);
            }
        }
        for f in self.fifos.iter_mut() {
            f.fast_forward(n);
        }
        self.cycle += n;
        self.skipped += n;
    }

    /// Commits FIFO staging and advances the cycle counter.
    fn end_cycle(&mut self) {
        for f in self.fifos.iter_mut() {
            f.end_cycle();
        }
        self.cycle += 1;
    }

    /// Builds the final report.
    fn report(&self) -> RunReport {
        RunReport {
            cycles: self.cycle,
            kernels: self
                .kernels
                .iter()
                .map(|k| (k.kernel.name().to_string(), k.stats))
                .collect(),
            counters: self.counters.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Emits `count` values then finishes.
    struct Source {
        out: FifoId,
        next: u32,
        count: u32,
    }

    impl Kernel<u32> for Source {
        fn name(&self) -> &str {
            "source"
        }
        fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
            if self.next == self.count {
                return Progress::Done;
            }
            match ctx.fifos.try_push(self.out, self.next) {
                Ok(()) => {
                    self.next += 1;
                    ctx.counters.add("emitted", 1);
                    Progress::Busy
                }
                Err(_) => Progress::Blocked,
            }
        }
    }

    /// Collects `count` values (checking order) then finishes.
    struct Sink {
        inp: FifoId,
        expect_next: u32,
        count: u32,
    }

    impl Kernel<u32> for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
            if self.expect_next == self.count {
                return Progress::Done;
            }
            match ctx.fifos.try_pop(self.inp) {
                Some(v) => {
                    assert_eq!(v, self.expect_next, "values must arrive in order");
                    self.expect_next += 1;
                    Progress::Busy
                }
                None => Progress::Blocked,
            }
        }
    }

    /// Pass-through stage: pops from `inp`, pushes to `out` next cycle.
    struct Stage {
        inp: FifoId,
        out: FifoId,
        held: Option<u32>,
        forwarded: u32,
        count: u32,
    }

    impl Kernel<u32> for Stage {
        fn name(&self) -> &str {
            "stage"
        }
        fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
            if self.forwarded == self.count && self.held.is_none() {
                return Progress::Done;
            }
            let mut progress = Progress::Idle;
            if let Some(v) = self.held {
                match ctx.fifos.try_push(self.out, v) {
                    Ok(()) => {
                        self.held = None;
                        self.forwarded += 1;
                        progress = Progress::Busy;
                    }
                    Err(_) => return Progress::Blocked,
                }
            }
            if self.held.is_none() && self.forwarded + u32::from(self.held.is_some()) < self.count {
                if let Some(v) = ctx.fifos.try_pop(self.inp) {
                    self.held = Some(v);
                    progress = Progress::Busy;
                }
            }
            if progress == Progress::Idle && self.held.is_none() {
                Progress::Blocked
            } else {
                progress
            }
        }
    }

    #[test]
    fn producer_consumer_transfers_all_values_in_order() {
        let mut e = Engine::new();
        let q = e.add_fifo(Fifo::new("q", 4));
        e.add_kernel(Box::new(Source { out: q, next: 0, count: 100 }));
        e.add_kernel(Box::new(Sink { inp: q, expect_next: 0, count: 100 }));
        let r = e.run(10_000).unwrap();
        assert_eq!(r.counters.get("emitted"), 100);
        // 1 cycle FIFO latency: sink finishes shortly after source.
        assert!(r.cycles >= 101 && r.cycles < 120, "cycles {}", r.cycles);
        assert!(r.kernel("source").unwrap().busy == 100);
    }

    #[test]
    fn three_stage_pipeline_reaches_steady_state() {
        let mut e = Engine::new();
        let q1 = e.add_fifo(Fifo::new("q1", 2));
        let q2 = e.add_fifo(Fifo::new("q2", 2));
        e.add_kernel(Box::new(Source { out: q1, next: 0, count: 50 }));
        e.add_kernel(Box::new(Stage { inp: q1, out: q2, held: None, forwarded: 0, count: 50 }));
        e.add_kernel(Box::new(Sink { inp: q2, expect_next: 0, count: 50 }));
        let r = e.run(10_000).unwrap();
        // Pipeline adds a few cycles of latency but sustains ~1 value/cycle.
        assert!(r.cycles < 80, "cycles {}", r.cycles);
    }

    #[test]
    fn backpressure_throttles_producer() {
        let mut e = Engine::new();
        let q = e.add_fifo(Fifo::new("q", 1));
        e.add_kernel(Box::new(Source { out: q, next: 0, count: 20 }));
        e.add_kernel(Box::new(SlowSink { inp: q, received: 0, count: 20, phase: 0 }));
        let r = e.run(10_000).unwrap();
        let source = r.kernel("source").unwrap();
        assert!(source.blocked > 0, "producer must have stalled");
        // Sink pops every 3rd cycle: run length ~3x value count.
        assert!(r.cycles >= 60, "cycles {}", r.cycles);
    }

    /// Pops only every third cycle.
    struct SlowSink {
        inp: FifoId,
        received: u32,
        count: u32,
        phase: u8,
    }

    impl Kernel<u32> for SlowSink {
        fn name(&self) -> &str {
            "slow-sink"
        }
        fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
            if self.received == self.count {
                return Progress::Done;
            }
            self.phase = (self.phase + 1) % 3;
            if self.phase != 0 {
                return Progress::Idle;
            }
            match ctx.fifos.try_pop(self.inp) {
                Some(_) => {
                    self.received += 1;
                    Progress::Busy
                }
                None => Progress::Blocked,
            }
        }
    }

    #[test]
    fn deadlock_is_detected() {
        // A sink waiting on a FIFO nobody feeds.
        let mut e = Engine::new();
        let q = e.add_fifo(Fifo::new("q", 1));
        e.add_kernel(Box::new(Sink { inp: q, expect_next: 0, count: 1 }));
        e.set_deadlock_window(50);
        match e.run(100_000) {
            Err(SimError::Deadlock { blocked, .. }) => assert_eq!(blocked, vec!["sink".to_string()]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn cycle_limit_is_reported() {
        let mut e = Engine::new();
        let q = e.add_fifo(Fifo::new("q", 1));
        e.add_kernel(Box::new(Source { out: q, next: 0, count: 1000 }));
        e.add_kernel(Box::new(SlowSink { inp: q, received: 0, count: 1000, phase: 0 }));
        match e.run(10) {
            Err(SimError::CycleLimit { limit: 10, unfinished }) => {
                assert_eq!(unfinished.len(), 2);
            }
            other => panic!("expected cycle limit, got {other:?}"),
        }
    }

    /// Emits one value every `period` cycles (a modeled host-polling or
    /// DMA-latency interval), declaring a [`Horizon::Sleep`] so the
    /// engine can jump the gaps.
    struct SlowSource {
        out: FifoId,
        period: u64,
        next_emit: u64,
        emitted: u32,
        count: u32,
    }

    impl Kernel<u32> for SlowSource {
        fn name(&self) -> &str {
            "slow-source"
        }
        fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
            if self.emitted == self.count {
                return Progress::Done;
            }
            if ctx.cycle < self.next_emit {
                return Progress::Idle;
            }
            match ctx.fifos.try_push(self.out, self.emitted) {
                Ok(()) => {
                    self.emitted += 1;
                    self.next_emit = ctx.cycle + self.period;
                    ctx.counters.add("emitted", 1);
                    Progress::Busy
                }
                Err(_) => Progress::Blocked,
            }
        }
        fn horizon(&self) -> Horizon {
            Horizon::Sleep(self.next_emit)
        }
    }

    /// A sink that is a pure function of its input FIFO.
    struct ReactiveSink {
        inp: FifoId,
        expect_next: u32,
        count: u32,
    }

    impl Kernel<u32> for ReactiveSink {
        fn name(&self) -> &str {
            "reactive-sink"
        }
        fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
            if self.expect_next == self.count {
                return Progress::Done;
            }
            match ctx.fifos.try_pop(self.inp) {
                Some(v) => {
                    assert_eq!(v, self.expect_next);
                    self.expect_next += 1;
                    Progress::Busy
                }
                None => Progress::Blocked,
            }
        }
        fn horizon(&self) -> Horizon {
            Horizon::Reactive
        }
    }

    fn sparse_design(fast: bool) -> Engine<u32> {
        let mut e = Engine::new();
        if fast {
            e.enable_fast_forward();
        }
        let q = e.add_fifo(Fifo::new("q", 2));
        e.add_kernel(Box::new(SlowSource { out: q, period: 5_000, next_emit: 0, emitted: 0, count: 10 }));
        e.add_kernel(Box::new(ReactiveSink { inp: q, expect_next: 0, count: 10 }));
        e
    }

    #[test]
    fn fast_forward_skips_idle_stretches_with_identical_report() {
        let mut slow = sparse_design(false);
        let mut fast = sparse_design(true);
        // Window must exceed the idle period or the slow run deadlocks.
        slow.set_deadlock_window(10_000);
        fast.set_deadlock_window(10_000);
        let a = slow.run(1_000_000).expect("completes");
        let b = fast.run(1_000_000).expect("completes");
        assert_eq!(a, b, "fast-forwarded report must be identical");
        assert!(a.cycles > 45_000, "ten 5000-cycle periods: {}", a.cycles);
        assert_eq!(slow.skipped_cycles(), 0);
        assert!(fast.skipped_cycles() > 40_000, "skipped {}", fast.skipped_cycles());
    }

    #[test]
    fn fast_forward_trace_matches_cycle_by_cycle() {
        let build = |fast: bool| {
            let mut e: Engine<u32> = Engine::new();
            e.enable_trace(64);
            if fast {
                e.enable_fast_forward();
            }
            let q = e.add_fifo(Fifo::new("q", 2));
            e.add_kernel(Box::new(SlowSource { out: q, period: 13, next_emit: 0, emitted: 0, count: 4 }));
            e.add_kernel(Box::new(ReactiveSink { inp: q, expect_next: 0, count: 4 }));
            e.set_deadlock_window(100);
            e.run(10_000).expect("completes");
            e.trace().expect("tracing on").render(80)
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn fast_forward_preserves_deadlock_cycle() {
        let run = |fast: bool| {
            let mut e: Engine<u32> = Engine::new();
            if fast {
                e.enable_fast_forward();
            }
            let q = e.add_fifo(Fifo::new("q", 1));
            e.add_kernel(Box::new(ReactiveSink { inp: q, expect_next: 0, count: 1 }));
            e.set_deadlock_window(5_000);
            e.run(1_000_000)
        };
        let (a, b) = (run(false), run(true));
        assert!(matches!(a, Err(SimError::Deadlock { .. })));
        assert_eq!(a, b, "deadlock must be declared at the same cycle");
    }

    #[test]
    fn fast_forward_preserves_cycle_limit() {
        let run = |fast: bool| {
            let mut e: Engine<u32> = Engine::new();
            if fast {
                e.enable_fast_forward();
            }
            let q = e.add_fifo(Fifo::new("q", 2));
            // Sleeps far past the limit: the limit must fire first.
            e.add_kernel(Box::new(SlowSource { out: q, period: 900_000, next_emit: 0, emitted: 0, count: 5 }));
            e.add_kernel(Box::new(ReactiveSink { inp: q, expect_next: 0, count: 5 }));
            e.set_deadlock_window(2_000_000);
            e.run(100_000)
        };
        let (a, b) = (run(false), run(true));
        assert!(matches!(a, Err(SimError::CycleLimit { limit: 100_000, .. })));
        assert_eq!(a, b);
    }

    #[test]
    fn opaque_kernels_suppress_fast_forward() {
        // Same sparse design, but the sink keeps the default Opaque
        // horizon: the engine must tick every cycle.
        struct OpaqueSink(ReactiveSink);
        impl Kernel<u32> for OpaqueSink {
            fn name(&self) -> &str {
                "opaque-sink"
            }
            fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
                self.0.tick(ctx)
            }
        }
        let mut e: Engine<u32> = Engine::new();
        e.enable_fast_forward();
        let q = e.add_fifo(Fifo::new("q", 2));
        e.add_kernel(Box::new(SlowSource { out: q, period: 500, next_emit: 0, emitted: 0, count: 3 }));
        e.add_kernel(Box::new(OpaqueSink(ReactiveSink { inp: q, expect_next: 0, count: 3 })));
        e.run(100_000).expect("completes");
        assert_eq!(e.skipped_cycles(), 0);
    }

    #[test]
    fn builder_validates_config() {
        let bad: Result<Engine<u32>, _> = Engine::<u32>::builder().trace(0).build();
        assert_eq!(bad.err(), Some(ConfigError::ZeroTraceCapacity));
        let bad: Result<Engine<u32>, _> = Engine::<u32>::builder().deadlock_window(0).build();
        assert_eq!(bad.err(), Some(ConfigError::ZeroDeadlockWindow));
        let ok: Result<Engine<u32>, _> =
            Engine::<u32>::builder().trace(16).fast_forward(true).deadlock_window(500).build();
        assert!(ok.is_ok());
    }

    #[test]
    fn injected_transient_stall_delays_but_completes() {
        use zskip_fault::{FaultKind, FaultPlan};
        let baseline = {
            let mut e = Engine::new();
            let q = e.add_fifo(Fifo::new("q", 4));
            e.add_kernel(Box::new(Source { out: q, next: 0, count: 100 }));
            e.add_kernel(Box::new(Sink { inp: q, expect_next: 0, count: 100 }));
            e.run(10_000).unwrap().cycles
        };
        let plan =
            FaultPlan::new().inject("fifo:q:push", 10, FaultKind::FifoStall { cycles: 50 }).shared();
        let mut e: Engine<u32> =
            Engine::<u32>::builder().fault_plan(plan.clone()).build().unwrap();
        let q = e.add_fifo(Fifo::new("q", 4));
        e.add_kernel(Box::new(Source { out: q, next: 0, count: 100 }));
        e.add_kernel(Box::new(Sink { inp: q, expect_next: 0, count: 100 }));
        let r = e.run(10_000).expect("transient stall must not be fatal");
        assert_eq!(r.counters.get("emitted"), 100, "all values still delivered");
        assert!(r.cycles >= baseline + 45, "stall visible: {} vs {baseline}", r.cycles);
        let p = plan.lock().unwrap();
        assert_eq!(p.fired().len(), 1, "injection must be logged as fired");
        assert_eq!(p.fired()[0].site, "fifo:q:push");
    }

    #[test]
    fn permanent_stall_deadlocks_and_names_wedged_fifo() {
        use zskip_fault::{FaultKind, FaultPlan};
        let plan = FaultPlan::new()
            .inject("fifo:q:pop", 5, FaultKind::FifoStall { cycles: u64::MAX })
            .shared();
        let mut e: Engine<u32> = Engine::<u32>::builder()
            .fault_plan(plan)
            .deadlock_window(100)
            .build()
            .unwrap();
        let q = e.add_fifo(Fifo::new("q", 4));
        e.add_kernel(Box::new(Source { out: q, next: 0, count: 100 }));
        e.add_kernel(Box::new(Sink { inp: q, expect_next: 0, count: 100 }));
        let err = e.run(100_000).unwrap_err();
        let wedged = err.wedged().expect("deadlock must name a fifo");
        assert_eq!(wedged.name, "q");
        assert!(wedged.stalled, "the injected stall is the suspect");
        assert!(err.to_string().contains("wedged fifo: q"), "{err}");
    }

    #[test]
    fn fast_forward_with_injected_stall_matches_cycle_by_cycle() {
        use zskip_fault::{FaultKind, FaultPlan};
        let run = |fast: bool| {
            let plan = FaultPlan::new()
                .inject("fifo:q:pop", 4_900, FaultKind::FifoStall { cycles: 300 })
                .shared();
            let mut e: Engine<u32> =
                Engine::<u32>::builder().fast_forward(fast).fault_plan(plan).build().unwrap();
            let q = e.add_fifo(Fifo::new("q", 2));
            e.add_kernel(Box::new(SlowSource {
                out: q,
                period: 5_000,
                next_emit: 0,
                emitted: 0,
                count: 4,
            }));
            e.add_kernel(Box::new(ReactiveSink { inp: q, expect_next: 0, count: 4 }));
            (e.run(1_000_000).expect("completes"), e.skipped_cycles())
        };
        let (a, skipped_slow) = run(false);
        let (b, skipped_fast) = run(true);
        assert_eq!(a, b, "stall-aware fast-forward must be exact");
        assert_eq!(skipped_slow, 0);
        assert!(skipped_fast > 10_000, "skipped {skipped_fast}");
    }

    #[test]
    fn report_tracks_done_cycles() {
        let mut e = Engine::new();
        let q = e.add_fifo(Fifo::new("q", 8));
        e.add_kernel(Box::new(Source { out: q, next: 0, count: 5 }));
        e.add_kernel(Box::new(SlowSink { inp: q, received: 0, count: 5, phase: 0 }));
        let r = e.run(1_000).unwrap();
        let source = r.kernel("source").unwrap();
        assert!(source.done > 0, "source finishes before sink and accrues done cycles");
    }
}

#[cfg(test)]
mod report_tests {
    use super::*;

    #[test]
    fn utilization_table_renders_shares() {
        let report = RunReport {
            cycles: 100,
            kernels: vec![
                ("alpha".into(), KernelStats { busy: 75, blocked: 20, idle: 5, done: 0 }),
                ("b".into(), KernelStats { busy: 0, blocked: 0, idle: 0, done: 100 }),
            ],
            counters: Counters::new(),
        };
        let t = report.render_utilization();
        assert!(t.contains("alpha"), "{t}");
        assert!(t.contains("75.0%"), "{t}");
        assert!(t.contains("20.0%"), "{t}");
        // The all-done kernel renders without dividing by zero.
        assert!(t.lines().count() == 3, "{t}");
    }
}
