//! The cycle-stepped simulation engine.

use crate::fifo::{Fifo, FifoId, PushError};
use crate::stats::{Counters, KernelStats};
use crate::trace::Trace;
use std::fmt;

/// What a kernel accomplished in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// Performed work this cycle.
    Busy,
    /// Wanted to work but a FIFO was full/empty.
    Blocked,
    /// Nothing to do this cycle.
    Idle,
    /// Finished all work; will not be ticked again.
    Done,
}

/// A streaming hardware kernel (one synthesized Pthread).
///
/// `M` is the message type carried by the design's FIFOs; a design defines
/// one enum covering all its queue payloads, mirroring how each hardware
/// FIFO has a fixed bit-level payload format.
pub trait Kernel<M> {
    /// Display name for reports.
    fn name(&self) -> &str;

    /// Advances the kernel by one clock cycle.
    fn tick(&mut self, ctx: &mut Ctx<'_, M>) -> Progress;
}

/// Access to the design's FIFOs during a tick, with port-semantics
/// enforcement delegated to each [`Fifo`].
pub struct FifoSet<'a, M> {
    fifos: &'a mut [Fifo<M>],
}

impl<'a, M> FifoSet<'a, M> {
    /// Attempts to push onto FIFO `id` this cycle.
    ///
    /// # Errors
    /// Propagates the FIFO's [`PushError`].
    pub fn try_push(&mut self, id: FifoId, value: M) -> Result<(), PushError> {
        self.fifos[id.0].try_push(value)
    }

    /// Attempts to pop from FIFO `id` this cycle.
    pub fn try_pop(&mut self, id: FifoId) -> Option<M> {
        self.fifos[id.0].try_pop()
    }

    /// Peeks at FIFO `id` without consuming.
    pub fn peek(&self, id: FifoId) -> Option<&M> {
        self.fifos[id.0].peek()
    }

    /// Number of poppable elements in FIFO `id`.
    pub fn len(&self, id: FifoId) -> usize {
        self.fifos[id.0].len()
    }

    /// Whether FIFO `id` has no poppable elements.
    pub fn is_empty(&self, id: FifoId) -> bool {
        self.fifos[id.0].is_empty()
    }

    /// Whether FIFO `id` has room for a push this cycle.
    pub fn has_room(&self, id: FifoId) -> bool {
        self.fifos[id.0].occupancy() < self.fifos[id.0].capacity()
    }
}

/// Per-tick context handed to kernels.
pub struct Ctx<'a, M> {
    /// Current cycle number.
    pub cycle: u64,
    /// The design's FIFOs.
    pub fifos: FifoSet<'a, M>,
    /// Shared activity counters (MACs, bank reads, ...) for the power model.
    pub counters: &'a mut Counters,
}

/// The simulation engine: owns kernels and FIFOs, steps cycles.
pub struct Engine<M> {
    fifos: Vec<Fifo<M>>,
    kernels: Vec<KernelSlot<M>>,
    counters: Counters,
    cycle: u64,
    deadlock_window: u64,
    trace: Option<Trace>,
}

struct KernelSlot<M> {
    kernel: Box<dyn Kernel<M>>,
    stats: KernelStats,
    done: bool,
}

/// Outcome of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Per-kernel statistics, in registration order, `(name, stats)`.
    pub kernels: Vec<(String, KernelStats)>,
    /// Aggregated activity counters.
    pub counters: Counters,
}

impl RunReport {
    /// Stats for the kernel with the given name, if present.
    pub fn kernel(&self, name: &str) -> Option<&KernelStats> {
        self.kernels.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Renders a per-kernel utilization table (busy/blocked/idle shares of
    /// pre-completion cycles), sorted as registered.
    pub fn render_utilization(&self) -> String {
        let name_w = self.kernels.iter().map(|(n, _)| n.len()).max().unwrap_or(6).max(6);
        let mut out = format!("{:<name_w$} {:>7} {:>9} {:>7} {:>7}\n", "kernel", "busy%", "blocked%", "idle%", "cycles");
        for (name, s) in &self.kernels {
            let alive = (s.busy + s.blocked + s.idle).max(1) as f64;
            out.push_str(&format!(
                "{:<name_w$} {:>6.1}% {:>8.1}% {:>6.1}% {:>7}\n",
                name,
                s.busy as f64 / alive * 100.0,
                s.blocked as f64 / alive * 100.0,
                s.idle as f64 / alive * 100.0,
                s.total(),
            ));
        }
        out
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No kernel made progress and no FIFO moved data for the deadlock
    /// window; lists kernels still blocked.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
        /// Names of kernels blocked on FIFOs.
        blocked: Vec<String>,
    },
    /// The cycle limit elapsed before all kernels finished.
    CycleLimit {
        /// The limit that was hit.
        limit: u64,
        /// Names of kernels not yet done.
        unfinished: Vec<String>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, blocked } => {
                write!(f, "deadlock at cycle {cycle}; blocked kernels: {}", blocked.join(", "))
            }
            SimError::CycleLimit { limit, unfinished } => {
                write!(f, "cycle limit {limit} reached; unfinished kernels: {}", unfinished.join(", "))
            }
        }
    }
}

impl std::error::Error for SimError {}

impl<M> Default for Engine<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Engine<M> {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Engine {
            fifos: Vec::new(),
            kernels: Vec::new(),
            counters: Counters::new(),
            cycle: 0,
            deadlock_window: 10_000,
            trace: None,
        }
    }

    /// Enables waveform tracing with a window of `capacity` cycles.
    /// Must be called before kernels are registered.
    ///
    /// # Panics
    /// Panics if kernels are already registered.
    pub fn enable_trace(&mut self, capacity: usize) {
        assert!(self.kernels.is_empty(), "enable tracing before registering kernels");
        self.trace = Some(Trace::new(capacity));
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Overrides the deadlock-detection window (cycles of global inactivity
    /// before declaring deadlock). Default 10 000.
    pub fn set_deadlock_window(&mut self, cycles: u64) {
        self.deadlock_window = cycles.max(1);
    }

    /// Registers a FIFO, returning its handle.
    pub fn add_fifo(&mut self, fifo: Fifo<M>) -> FifoId {
        self.fifos.push(fifo);
        FifoId(self.fifos.len() - 1)
    }

    /// Registers a kernel. Kernels tick in registration order within a
    /// cycle; combined with registered-FIFO semantics, results do not
    /// depend on that order across cycles.
    pub fn add_kernel(&mut self, kernel: Box<dyn Kernel<M>>) {
        if let Some(t) = &mut self.trace {
            t.add_kernel(kernel.name());
        }
        self.kernels.push(KernelSlot { kernel, stats: KernelStats::default(), done: false });
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Immutable access to a FIFO (for wiring assertions in tests).
    pub fn fifo(&self, id: FifoId) -> &Fifo<M> {
        &self.fifos[id.0]
    }

    /// Runs until every kernel reports [`Progress::Done`].
    ///
    /// # Errors
    /// [`SimError::Deadlock`] when nothing moves for the deadlock window;
    /// [`SimError::CycleLimit`] when `max_cycles` elapses first.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunReport, SimError> {
        let mut last_activity = self.cycle;
        while self.kernels.iter().any(|k| !k.done) {
            if self.cycle >= max_cycles {
                return Err(SimError::CycleLimit {
                    limit: max_cycles,
                    unfinished: self
                        .kernels
                        .iter()
                        .filter(|k| !k.done)
                        .map(|k| k.kernel.name().to_string())
                        .collect(),
                });
            }
            let any_busy = self.step();
            let fifo_activity = self.fifos.iter().any(Fifo::active_this_cycle);
            self.end_cycle();
            if any_busy || fifo_activity {
                last_activity = self.cycle;
            } else if self.cycle - last_activity > self.deadlock_window {
                return Err(SimError::Deadlock {
                    cycle: self.cycle,
                    blocked: self
                        .kernels
                        .iter()
                        .filter(|k| !k.done)
                        .map(|k| k.kernel.name().to_string())
                        .collect(),
                });
            }
        }
        Ok(self.report())
    }

    /// Ticks every unfinished kernel once. Returns whether any was busy.
    fn step(&mut self) -> bool {
        let mut any_busy = false;
        for (k, slot) in self.kernels.iter_mut().enumerate() {
            if slot.done {
                slot.stats.done += 1;
                if let Some(t) = &mut self.trace {
                    t.record(k, self.cycle, Progress::Done);
                }
                continue;
            }
            let mut ctx = Ctx { cycle: self.cycle, fifos: FifoSet { fifos: &mut self.fifos }, counters: &mut self.counters };
            let progress = slot.kernel.tick(&mut ctx);
            if let Some(t) = &mut self.trace {
                t.record(k, self.cycle, progress);
            }
            match progress {
                Progress::Busy => {
                    slot.stats.busy += 1;
                    any_busy = true;
                }
                Progress::Blocked => slot.stats.blocked += 1,
                Progress::Idle => slot.stats.idle += 1,
                Progress::Done => {
                    slot.done = true;
                    any_busy = true; // state change counts as progress
                }
            }
        }
        any_busy
    }

    /// Commits FIFO staging and advances the cycle counter.
    fn end_cycle(&mut self) {
        for f in self.fifos.iter_mut() {
            f.end_cycle();
        }
        self.cycle += 1;
    }

    /// Builds the final report.
    fn report(&self) -> RunReport {
        RunReport {
            cycles: self.cycle,
            kernels: self
                .kernels
                .iter()
                .map(|k| (k.kernel.name().to_string(), k.stats))
                .collect(),
            counters: self.counters.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Emits `count` values then finishes.
    struct Source {
        out: FifoId,
        next: u32,
        count: u32,
    }

    impl Kernel<u32> for Source {
        fn name(&self) -> &str {
            "source"
        }
        fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
            if self.next == self.count {
                return Progress::Done;
            }
            match ctx.fifos.try_push(self.out, self.next) {
                Ok(()) => {
                    self.next += 1;
                    ctx.counters.add("emitted", 1);
                    Progress::Busy
                }
                Err(_) => Progress::Blocked,
            }
        }
    }

    /// Collects `count` values (checking order) then finishes.
    struct Sink {
        inp: FifoId,
        expect_next: u32,
        count: u32,
    }

    impl Kernel<u32> for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
            if self.expect_next == self.count {
                return Progress::Done;
            }
            match ctx.fifos.try_pop(self.inp) {
                Some(v) => {
                    assert_eq!(v, self.expect_next, "values must arrive in order");
                    self.expect_next += 1;
                    Progress::Busy
                }
                None => Progress::Blocked,
            }
        }
    }

    /// Pass-through stage: pops from `inp`, pushes to `out` next cycle.
    struct Stage {
        inp: FifoId,
        out: FifoId,
        held: Option<u32>,
        forwarded: u32,
        count: u32,
    }

    impl Kernel<u32> for Stage {
        fn name(&self) -> &str {
            "stage"
        }
        fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
            if self.forwarded == self.count && self.held.is_none() {
                return Progress::Done;
            }
            let mut progress = Progress::Idle;
            if let Some(v) = self.held {
                match ctx.fifos.try_push(self.out, v) {
                    Ok(()) => {
                        self.held = None;
                        self.forwarded += 1;
                        progress = Progress::Busy;
                    }
                    Err(_) => return Progress::Blocked,
                }
            }
            if self.held.is_none() && self.forwarded + u32::from(self.held.is_some()) < self.count {
                if let Some(v) = ctx.fifos.try_pop(self.inp) {
                    self.held = Some(v);
                    progress = Progress::Busy;
                }
            }
            if progress == Progress::Idle && self.held.is_none() {
                Progress::Blocked
            } else {
                progress
            }
        }
    }

    #[test]
    fn producer_consumer_transfers_all_values_in_order() {
        let mut e = Engine::new();
        let q = e.add_fifo(Fifo::new("q", 4));
        e.add_kernel(Box::new(Source { out: q, next: 0, count: 100 }));
        e.add_kernel(Box::new(Sink { inp: q, expect_next: 0, count: 100 }));
        let r = e.run(10_000).unwrap();
        assert_eq!(r.counters.get("emitted"), 100);
        // 1 cycle FIFO latency: sink finishes shortly after source.
        assert!(r.cycles >= 101 && r.cycles < 120, "cycles {}", r.cycles);
        assert!(r.kernel("source").unwrap().busy == 100);
    }

    #[test]
    fn three_stage_pipeline_reaches_steady_state() {
        let mut e = Engine::new();
        let q1 = e.add_fifo(Fifo::new("q1", 2));
        let q2 = e.add_fifo(Fifo::new("q2", 2));
        e.add_kernel(Box::new(Source { out: q1, next: 0, count: 50 }));
        e.add_kernel(Box::new(Stage { inp: q1, out: q2, held: None, forwarded: 0, count: 50 }));
        e.add_kernel(Box::new(Sink { inp: q2, expect_next: 0, count: 50 }));
        let r = e.run(10_000).unwrap();
        // Pipeline adds a few cycles of latency but sustains ~1 value/cycle.
        assert!(r.cycles < 80, "cycles {}", r.cycles);
    }

    #[test]
    fn backpressure_throttles_producer() {
        let mut e = Engine::new();
        let q = e.add_fifo(Fifo::new("q", 1));
        e.add_kernel(Box::new(Source { out: q, next: 0, count: 20 }));
        e.add_kernel(Box::new(SlowSink { inp: q, received: 0, count: 20, phase: 0 }));
        let r = e.run(10_000).unwrap();
        let source = r.kernel("source").unwrap();
        assert!(source.blocked > 0, "producer must have stalled");
        // Sink pops every 3rd cycle: run length ~3x value count.
        assert!(r.cycles >= 60, "cycles {}", r.cycles);
    }

    /// Pops only every third cycle.
    struct SlowSink {
        inp: FifoId,
        received: u32,
        count: u32,
        phase: u8,
    }

    impl Kernel<u32> for SlowSink {
        fn name(&self) -> &str {
            "slow-sink"
        }
        fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
            if self.received == self.count {
                return Progress::Done;
            }
            self.phase = (self.phase + 1) % 3;
            if self.phase != 0 {
                return Progress::Idle;
            }
            match ctx.fifos.try_pop(self.inp) {
                Some(_) => {
                    self.received += 1;
                    Progress::Busy
                }
                None => Progress::Blocked,
            }
        }
    }

    #[test]
    fn deadlock_is_detected() {
        // A sink waiting on a FIFO nobody feeds.
        let mut e = Engine::new();
        let q = e.add_fifo(Fifo::new("q", 1));
        e.add_kernel(Box::new(Sink { inp: q, expect_next: 0, count: 1 }));
        e.set_deadlock_window(50);
        match e.run(100_000) {
            Err(SimError::Deadlock { blocked, .. }) => assert_eq!(blocked, vec!["sink".to_string()]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn cycle_limit_is_reported() {
        let mut e = Engine::new();
        let q = e.add_fifo(Fifo::new("q", 1));
        e.add_kernel(Box::new(Source { out: q, next: 0, count: 1000 }));
        e.add_kernel(Box::new(SlowSink { inp: q, received: 0, count: 1000, phase: 0 }));
        match e.run(10) {
            Err(SimError::CycleLimit { limit: 10, unfinished }) => {
                assert_eq!(unfinished.len(), 2);
            }
            other => panic!("expected cycle limit, got {other:?}"),
        }
    }

    #[test]
    fn report_tracks_done_cycles() {
        let mut e = Engine::new();
        let q = e.add_fifo(Fifo::new("q", 8));
        e.add_kernel(Box::new(Source { out: q, next: 0, count: 5 }));
        e.add_kernel(Box::new(SlowSink { inp: q, received: 0, count: 5, phase: 0 }));
        let r = e.run(1_000).unwrap();
        let source = r.kernel("source").unwrap();
        assert!(source.done > 0, "source finishes before sink and accrues done cycles");
    }
}

#[cfg(test)]
mod report_tests {
    use super::*;

    #[test]
    fn utilization_table_renders_shares() {
        let report = RunReport {
            cycles: 100,
            kernels: vec![
                ("alpha".into(), KernelStats { busy: 75, blocked: 20, idle: 5, done: 0 }),
                ("b".into(), KernelStats { busy: 0, blocked: 0, idle: 0, done: 100 }),
            ],
            counters: Counters::new(),
        };
        let t = report.render_utilization();
        assert!(t.contains("alpha"), "{t}");
        assert!(t.contains("75.0%"), "{t}");
        assert!(t.contains("20.0%"), "{t}");
        // The all-done kernel renders without dividing by zero.
        assert!(t.lines().count() == 3, "{t}");
    }
}
