//! The cycle-stepped simulation engine.
//!
//! Two schedulers share one set of semantics (see `docs/SIMULATOR.md`):
//!
//! * the **dense stepper** ([`SchedMode::Dense`]) ticks every kernel every
//!   cycle — simple, obviously correct, kept as the oracle;
//! * the **event-driven scheduler** ([`SchedMode::EventDriven`]) parks
//!   kernels that are blocked on FIFO state on those FIFOs' wait lists and
//!   only re-enqueues them on an occupancy edge (a pop freeing room, a
//!   staged push committing, an injected stall expiring) or a
//!   [`Horizon::Sleep`] timer, so per-cycle work collapses to
//!   O(runnable kernels) and whole quiescent stretches are jumped over.
//!
//! Both produce bit-identical [`RunReport`]s, traces, deadlock attribution
//! and fault behavior (property-tested); only [`SchedStats`] — which
//! records *how* the run was computed — differs.

use crate::fifo::{Fifo, FifoId, PushError, StallPort};
use crate::stats::{CounterId, Counters, KernelStats, SchedStats};
use crate::trace::Trace;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use zskip_fault::{FaultKind, SharedFaultPlan};

/// What a kernel accomplished in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// Performed work this cycle.
    Busy,
    /// Wanted to work but a FIFO was full/empty.
    Blocked,
    /// Nothing to do this cycle.
    Idle,
    /// Finished all work; will not be ticked again.
    Done,
}

/// How far ahead a kernel's behavior is predictable while its inputs are
/// unchanged. Drives both idle-cycle fast-forwarding (dense mode) and
/// parking (event mode): only non-[`Opaque`] kernels may be skipped or
/// parked, because their contract guarantees the skipped ticks would have
/// been pure no-ops.
///
/// [`Opaque`]: Horizon::Opaque
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Horizon {
    /// The engine cannot predict this kernel: tick it every cycle. The
    /// default — always safe.
    Opaque,
    /// The kernel only reacts to FIFO state: while its FIFOs are
    /// unchanged, its tick returns the same [`Progress`], mutates no
    /// kernel state, touches no [`Ctx::counters`].
    Reactive,
    /// As [`Reactive`](Horizon::Reactive) until the given absolute cycle,
    /// at which point the kernel may act on its own (e.g. a modeled
    /// host-polling interval or DMA completion latency).
    Sleep(u64),
}

/// A streaming hardware kernel (one synthesized Pthread).
///
/// `M` is the message type carried by the design's FIFOs; a design defines
/// one enum covering all its queue payloads, mirroring how each hardware
/// FIFO has a fixed bit-level payload format.
pub trait Kernel<M> {
    /// Display name for reports.
    fn name(&self) -> &str;

    /// Advances the kernel by one clock cycle.
    fn tick(&mut self, ctx: &mut Ctx<'_, M>) -> Progress;

    /// Declares how far the kernel is predictable during quiescence.
    /// Defaults to [`Horizon::Opaque`] (never fast-forwarded or parked).
    fn horizon(&self) -> Horizon {
        Horizon::Opaque
    }

    /// Notifies the kernel that the engine skipped `_skipped` quiescent
    /// cycles without ticking it, so per-cycle side effects that are
    /// invariant under quiescence (e.g. committing a shared resource's
    /// port state) can be replayed in bulk. Default: nothing to replay.
    fn fast_forward(&mut self, _skipped: u64) {}
}

/// Receives per-cycle progress events. Monomorphized into the run loop so
/// the untraced configuration ([`NullObserver`]) compiles to straight-line
/// code with no per-tick branch on an `Option<Trace>`.
pub trait Observer {
    /// One kernel's progress for one cycle.
    fn record(&mut self, kernel: usize, cycle: u64, progress: Progress);
    /// One kernel's progress for `n` consecutive cycles starting at
    /// `cycle` (fast-forwarded or parked stretches).
    fn record_span(&mut self, kernel: usize, cycle: u64, n: u64, progress: Progress);
}

/// Observer for untraced runs: every hook is an empty inline body.
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline(always)]
    fn record(&mut self, _kernel: usize, _cycle: u64, _progress: Progress) {}
    #[inline(always)]
    fn record_span(&mut self, _kernel: usize, _cycle: u64, _n: u64, _progress: Progress) {}
}

/// Observer that records into a waveform [`Trace`].
pub struct TraceObserver<'a> {
    /// The trace being written.
    pub trace: &'a mut Trace,
}

impl Observer for TraceObserver<'_> {
    #[inline]
    fn record(&mut self, kernel: usize, cycle: u64, progress: Progress) {
        self.trace.record(kernel, cycle, progress);
    }
    #[inline]
    fn record_span(&mut self, kernel: usize, cycle: u64, n: u64, progress: Progress) {
        self.trace.record_span(kernel, cycle, n, progress);
    }
}

/// Per-tick / per-cycle FIFO access tracking, reused across cycles.
///
/// The event scheduler needs three things from a tick: the *watch set*
/// (every FIFO the kernel looked at — a parked kernel must wake when any
/// of them changes), the *success set* (FIFOs whose occupancy edge must
/// wake waiters), and the *touched set* (FIFOs needing an
/// [`Fifo::end_cycle`] commit this cycle). The success and touched sets
/// are stamp-deduped index lists (they are consumed every tick / cycle);
/// the watch set is stamps only — it is read at most once per tick, at
/// park time, which is rare enough that a scan over all FIFO stamps beats
/// maintaining a list on the hot path.
#[derive(Debug, Default)]
struct FifoScratch {
    /// Current tick stamp (bumped per kernel tick).
    tick: u64,
    /// Current cycle stamp (bumped per executed cycle).
    cstamp: u64,
    /// Tick stamp of each FIFO's last access (read or port op).
    accessed_stamp: Vec<u64>,
    /// FIFOs with a successful push/pop in the current tick.
    succeeded: Vec<u32>,
    succeeded_stamp: Vec<u64>,
    /// FIFOs with a port-op attempt this cycle (need `end_cycle`).
    touched: Vec<u32>,
    touched_stamp: Vec<u64>,
    /// Whether the current tick accessed any FIFO at all.
    any_access: bool,
    /// Whether the current tick performed any successful push/pop.
    any_success: bool,
    /// Whether any tick this cycle performed a successful push/pop.
    cycle_any_success: bool,
    /// Cycle stamp of the last successful push/pop per FIFO. The event
    /// scheduler refuses to park a kernel whose watch set includes a FIFO
    /// stamped this cycle: the success's waiter pass may already have run,
    /// so the park would miss its `t + 1` wake. The refused kernel stays
    /// runnable and re-ticks next cycle — exactly the wake it would have
    /// received.
    succ_cycle_stamp: Vec<u64>,
    /// Tick stamp of the last failed (Full / empty) push and pop per FIFO,
    /// for recording *why* a kernel parked.
    push_fail_stamp: Vec<u64>,
    pop_fail_stamp: Vec<u64>,
    /// Absolute cycle of the last actually-executed failed push/pop per
    /// FIFO, for deadlock snapshots (`u64::MAX` = never).
    push_fail_cycle: Vec<u64>,
    pop_fail_cycle: Vec<u64>,
}

impl FifoScratch {
    fn ensure(&mut self, nfifos: usize) {
        self.accessed_stamp.resize(nfifos, 0);
        self.succeeded_stamp.resize(nfifos, 0);
        self.succ_cycle_stamp.resize(nfifos, 0);
        self.touched_stamp.resize(nfifos, 0);
        self.push_fail_stamp.resize(nfifos, 0);
        self.pop_fail_stamp.resize(nfifos, 0);
        self.push_fail_cycle.resize(nfifos, u64::MAX);
        self.pop_fail_cycle.resize(nfifos, u64::MAX);
        if self.tick == 0 {
            self.tick = 1;
            self.cstamp = 1;
        }
    }

    #[inline]
    fn begin_cycle(&mut self) {
        self.cstamp += 1;
        self.touched.clear();
        self.cycle_any_success = false;
    }

    #[inline]
    fn begin_tick(&mut self) {
        self.tick += 1;
        self.succeeded.clear();
        self.any_access = false;
        self.any_success = false;
    }

    #[inline]
    fn mark_access(&mut self, f: usize) {
        self.any_access = true;
        self.accessed_stamp[f] = self.tick;
    }

    #[inline]
    fn mark_touched(&mut self, f: usize) {
        if self.touched_stamp[f] != self.cstamp {
            self.touched_stamp[f] = self.cstamp;
            self.touched.push(f as u32);
        }
    }

    #[inline]
    fn mark_success(&mut self, f: usize) {
        self.any_success = true;
        self.cycle_any_success = true;
        self.succ_cycle_stamp[f] = self.cstamp;
        if self.succeeded_stamp[f] != self.tick {
            self.succeeded_stamp[f] = self.tick;
            self.succeeded.push(f as u32);
        }
    }
}

/// Access to the design's FIFOs during a tick, with port-semantics
/// enforcement delegated to each [`Fifo`]. Every access — reads included —
/// is recorded in the engine's watch set so the event scheduler knows
/// which FIFOs a parked kernel depends on.
pub struct FifoSet<'a, M> {
    fifos: &'a mut [Fifo<M>],
    cycle: u64,
    scratch: &'a mut FifoScratch,
}

impl<'a, M> FifoSet<'a, M> {
    /// Attempts to push onto FIFO `id` this cycle.
    ///
    /// # Errors
    /// Propagates the FIFO's [`PushError`].
    pub fn try_push(&mut self, id: FifoId, value: M) -> Result<(), PushError> {
        let i = id.0;
        self.scratch.mark_access(i);
        self.scratch.mark_touched(i);
        let f = &mut self.fifos[i];
        f.sync(self.cycle);
        match f.try_push(value) {
            Ok(()) => {
                self.scratch.mark_success(i);
                Ok(())
            }
            Err(PushError::Full) => {
                self.scratch.push_fail_stamp[i] = self.scratch.tick;
                self.scratch.push_fail_cycle[i] = self.cycle;
                Err(PushError::Full)
            }
            Err(e) => Err(e),
        }
    }

    /// Attempts to pop from FIFO `id` this cycle.
    pub fn try_pop(&mut self, id: FifoId) -> Option<M> {
        let i = id.0;
        self.scratch.mark_access(i);
        self.scratch.mark_touched(i);
        let f = &mut self.fifos[i];
        f.sync(self.cycle);
        let port_was_used = f.pop_port_used();
        match f.try_pop() {
            Some(v) => {
                self.scratch.mark_success(i);
                Some(v)
            }
            None => {
                // A port conflict is not a stall: the earlier pop this
                // cycle already counts as the FIFO's activity.
                if !port_was_used {
                    self.scratch.pop_fail_stamp[i] = self.scratch.tick;
                    self.scratch.pop_fail_cycle[i] = self.cycle;
                }
                None
            }
        }
    }

    /// Peeks at FIFO `id` without consuming.
    pub fn peek(&mut self, id: FifoId) -> Option<&M> {
        self.scratch.mark_access(id.0);
        self.fifos[id.0].peek()
    }

    /// Number of poppable elements in FIFO `id`.
    pub fn len(&mut self, id: FifoId) -> usize {
        self.scratch.mark_access(id.0);
        self.fifos[id.0].len()
    }

    /// Whether FIFO `id` has no poppable elements.
    #[allow(clippy::wrong_self_convention)] // reads join the watch set
    pub fn is_empty(&mut self, id: FifoId) -> bool {
        self.scratch.mark_access(id.0);
        self.fifos[id.0].is_empty()
    }

    /// Whether FIFO `id` has room for a push this cycle.
    pub fn has_room(&mut self, id: FifoId) -> bool {
        self.scratch.mark_access(id.0);
        self.fifos[id.0].occupancy() < self.fifos[id.0].capacity()
    }
}

/// Per-tick context handed to kernels.
pub struct Ctx<'a, M> {
    /// Current cycle number.
    pub cycle: u64,
    /// The design's FIFOs.
    pub fifos: FifoSet<'a, M>,
    /// Shared activity counters (MACs, bank reads, ...) for the power model.
    pub counters: &'a mut Counters,
}

/// Which scheduler [`Engine::run`] uses. Both produce bit-identical
/// results; see the module docs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedMode {
    /// Tick every kernel every cycle (the oracle). The default.
    #[default]
    Dense,
    /// Park blocked kernels on FIFO wait lists; only tick the runnable
    /// set; jump over cycles where nothing is runnable.
    EventDriven,
}

/// The simulation engine: owns kernels and FIFOs, steps cycles.
pub struct Engine<M> {
    fifos: Vec<Fifo<M>>,
    kernels: Vec<KernelSlot<M>>,
    counters: Counters,
    cycle: u64,
    deadlock_window: u64,
    trace: Option<Trace>,
    fast_forward: bool,
    skipped: u64,
    fault_plan: Option<SharedFaultPlan>,
    /// `fifo:` injections resolved to indices at run start, pending
    /// application at their trigger cycle.
    armed: Vec<ArmedStall>,
    sched_mode: SchedMode,
    sched: SchedStats,
    scratch: FifoScratch,
    park_hysteresis: u32,
}

/// Default consecutive-quiescent-tick threshold before a
/// [`Horizon::Reactive`] kernel is parked. A park plus its wake costs more
/// than re-running a handful of pure FIFO probes, so kernels blocked in a
/// short rhythm (e.g. a consumer waiting out a multi-cycle producer loop)
/// are cheaper to keep ticking; only stretches that outlast this threshold
/// are worth the wait-list round trip. Sleep-horizon parks bypass the
/// threshold — their wake cycle is exact, so they never thrash.
pub const DEFAULT_PARK_HYSTERESIS: u32 = 8;

/// A resolved `fifo:<name>:push|pop` injection awaiting its trigger cycle.
#[derive(Clone)]
struct ArmedStall {
    site: String,
    at: u64,
    fifo: usize,
    port: StallPort,
    cycles: u64,
}

struct KernelSlot<M> {
    kernel: Box<dyn Kernel<M>>,
    stats: KernelStats,
    done: bool,
    /// Progress of the most recent tick, replayed over skipped cycles.
    last: Progress,
}

/// Outcome of a completed run.
///
/// Equality ignores [`sched`](RunReport::sched): scheduler statistics
/// describe how the run was computed, and two bit-identical simulations
/// (dense vs. event-driven) legitimately differ there.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Per-kernel statistics, in registration order, `(name, stats)`.
    pub kernels: Vec<(String, KernelStats)>,
    /// Aggregated activity counters.
    pub counters: Counters,
    /// Scheduler accounting (all zero under the dense stepper).
    pub sched: SchedStats,
}

impl PartialEq for RunReport {
    fn eq(&self, other: &Self) -> bool {
        self.cycles == other.cycles
            && self.kernels == other.kernels
            && self.counters == other.counters
    }
}

impl Eq for RunReport {}

impl RunReport {
    /// Stats for the kernel with the given name, if present.
    pub fn kernel(&self, name: &str) -> Option<&KernelStats> {
        self.kernels.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Renders a per-kernel utilization table (busy/blocked/idle shares of
    /// pre-completion cycles), sorted as registered.
    pub fn render_utilization(&self) -> String {
        let name_w = self.kernels.iter().map(|(n, _)| n.len()).max().unwrap_or(6).max(6);
        let mut out = format!("{:<name_w$} {:>7} {:>9} {:>7} {:>7}\n", "kernel", "busy%", "blocked%", "idle%", "cycles");
        for (name, s) in &self.kernels {
            let alive = (s.busy + s.blocked + s.idle).max(1) as f64;
            out.push_str(&format!(
                "{:<name_w$} {:>6.1}% {:>8.1}% {:>6.1}% {:>7}\n",
                name,
                s.busy as f64 / alive * 100.0,
                s.blocked as f64 / alive * 100.0,
                s.idle as f64 / alive * 100.0,
                s.total(),
            ));
        }
        out
    }
}

/// State of one FIFO at the moment a deadlock was declared, captured so
/// the error can name *which* queue wedged the design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FifoSnapshot {
    /// FIFO display name.
    pub name: String,
    /// Occupancy (stored + staged elements) at deadlock time.
    pub occupancy: usize,
    /// Configured capacity.
    pub capacity: usize,
    /// Whether an injected fault stall was still pinning a port.
    pub stalled: bool,
    /// Whether a producer failed a push in the last executed cycle.
    pub push_waiting: bool,
    /// Whether a consumer failed a pop in the last executed cycle.
    pub pop_waiting: bool,
}

impl fmt::Display for FifoSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}/{} occupied", self.name, self.occupancy, self.capacity)?;
        if self.stalled {
            write!(f, ", fault-stalled")?;
        }
        if self.push_waiting {
            write!(f, ", producer waiting")?;
        }
        if self.pop_waiting {
            write!(f, ", consumer waiting")?;
        }
        write!(f, ")")
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No kernel made progress and no FIFO moved data for the deadlock
    /// window; lists kernels still blocked.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
        /// Names of kernels blocked on FIFOs.
        blocked: Vec<String>,
        /// Per-FIFO occupancy snapshot at declaration time; see
        /// [`SimError::wedged`] for the prime suspect.
        fifos: Vec<FifoSnapshot>,
    },
    /// The cycle limit elapsed before all kernels finished.
    CycleLimit {
        /// The limit that was hit.
        limit: u64,
        /// Names of kernels not yet done.
        unfinished: Vec<String>,
    },
}

impl SimError {
    /// For a deadlock, the FIFO most likely responsible for the wedge:
    /// an injected stall with a waiting peer beats any other stalled FIFO,
    /// then a full FIFO whose producer is waiting (back-pressure source),
    /// then an empty FIFO whose consumer is waiting (starvation point),
    /// then any FIFO with a waiting peer.
    pub fn wedged(&self) -> Option<&FifoSnapshot> {
        let SimError::Deadlock { fifos, .. } = self else {
            return None;
        };
        fifos
            .iter()
            .find(|s| s.stalled && (s.push_waiting || s.pop_waiting))
            .or_else(|| fifos.iter().find(|s| s.stalled))
            .or_else(|| fifos.iter().find(|s| s.push_waiting && s.occupancy == s.capacity))
            .or_else(|| fifos.iter().find(|s| s.pop_waiting && s.occupancy == 0))
            .or_else(|| fifos.iter().find(|s| s.push_waiting || s.pop_waiting))
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, blocked, .. } => {
                write!(f, "deadlock at cycle {cycle}; blocked kernels: {}", blocked.join(", "))?;
                if let Some(w) = self.wedged() {
                    write!(f, "; wedged fifo: {w}")?;
                }
                Ok(())
            }
            SimError::CycleLimit { limit, unfinished } => {
                write!(f, "cycle limit {limit} reached; unfinished kernels: {}", unfinished.join(", "))
            }
        }
    }
}

impl std::error::Error for SimError {}

impl<M> Default for Engine<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// Validated construction parameters for an [`Engine`]. Obtained via
/// [`Engine::builder`]; [`build`](EngineBuilder::build) checks the
/// configuration instead of panicking or silently clamping.
#[derive(Debug, Default)]
pub struct EngineBuilder {
    trace_capacity: Option<usize>,
    fast_forward: bool,
    deadlock_window: Option<u64>,
    fault_plan: Option<SharedFaultPlan>,
    scheduler: SchedMode,
    park_hysteresis: Option<u32>,
}

/// Invalid engine configuration reported by [`EngineBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A trace window of zero cycles records nothing.
    ZeroTraceCapacity,
    /// A zero-cycle deadlock window would flag every idle cycle.
    ZeroDeadlockWindow,
    /// A zero park threshold would park kernels that never even ticked.
    ZeroParkHysteresis,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroTraceCapacity => write!(f, "trace capacity must be at least 1 cycle"),
            ConfigError::ZeroDeadlockWindow => {
                write!(f, "deadlock window must be at least 1 cycle")
            }
            ConfigError::ZeroParkHysteresis => {
                write!(f, "park hysteresis must be at least 1 quiescent tick")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl EngineBuilder {
    /// Starts from the defaults (`Engine::new()` semantics: no trace, no
    /// fast-forward, dense scheduler, 10 000-cycle deadlock window, no
    /// fault plan).
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// Records a waveform trace with a window of `capacity` cycles.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Enables idle-cycle fast-forwarding (see
    /// [`Engine::enable_fast_forward`] for the exact semantics).
    pub fn fast_forward(mut self, enabled: bool) -> Self {
        self.fast_forward = enabled;
        self
    }

    /// Selects the scheduler (dense oracle vs. event-driven).
    pub fn scheduler(mut self, mode: SchedMode) -> Self {
        self.scheduler = mode;
        self
    }

    /// Sets the deadlock-detection window in cycles.
    pub fn deadlock_window(mut self, cycles: u64) -> Self {
        self.deadlock_window = Some(cycles);
        self
    }

    /// Attaches a fault plan; its `fifo:` injections are armed when
    /// [`Engine::run`] starts.
    pub fn fault_plan(mut self, plan: SharedFaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the park hysteresis: the number of consecutive quiescent
    /// ticks a [`Horizon::Reactive`] kernel must accumulate before the
    /// event scheduler parks it. `1` parks on the first blocked tick
    /// (maximum parking, maximum wait-list churn); the default
    /// [`DEFAULT_PARK_HYSTERESIS`] keeps short blocking rhythms live.
    /// Purely a scheduling-cost knob — results are bit-identical for
    /// every value.
    pub fn park_hysteresis(mut self, ticks: u32) -> Self {
        self.park_hysteresis = Some(ticks);
        self
    }

    /// Validates the configuration and builds an empty engine.
    ///
    /// # Errors
    /// [`ConfigError`] when the trace capacity or deadlock window is zero.
    pub fn build<M>(self) -> Result<Engine<M>, ConfigError> {
        if self.trace_capacity == Some(0) {
            return Err(ConfigError::ZeroTraceCapacity);
        }
        if self.deadlock_window == Some(0) {
            return Err(ConfigError::ZeroDeadlockWindow);
        }
        if self.park_hysteresis == Some(0) {
            return Err(ConfigError::ZeroParkHysteresis);
        }
        let mut engine = Engine::new();
        if let Some(capacity) = self.trace_capacity {
            engine.trace = Some(Trace::new(capacity));
        }
        engine.fast_forward = self.fast_forward;
        if let Some(window) = self.deadlock_window {
            engine.deadlock_window = window;
        }
        engine.fault_plan = self.fault_plan;
        engine.sched_mode = self.scheduler;
        if let Some(ticks) = self.park_hysteresis {
            engine.park_hysteresis = ticks;
        }
        Ok(engine)
    }
}

/// Per-run state of the event-driven scheduler.
struct EvState {
    /// Bitset of kernels to tick this cycle.
    runnable: Vec<u64>,
    parked: Vec<bool>,
    /// Cycle of a parked kernel's last executed tick.
    parked_at: Vec<u64>,
    /// Consecutive quiescent (blocked/idle, no transfer) ticks per kernel,
    /// reset on any productive tick. A Reactive kernel parks only once
    /// this reaches the engine's park hysteresis — and is deliberately
    /// *not* reset by a park or wake, so a spuriously woken kernel that
    /// quiesces again re-parks on its first tick instead of re-earning
    /// the threshold.
    streak: Vec<u32>,
    /// Bumped on every park *and* wake, invalidating stale wait-list and
    /// sleep-heap entries (lazy deletion).
    epoch: Vec<u64>,
    /// Cycle at which each kernel returned [`Progress::Done`].
    done_at: Vec<u64>,
    /// Per-FIFO wait lists of parked kernels.
    waiters: Vec<Vec<Waiter>>,
    /// Min-heap of pending `Horizon::Sleep` wake-ups `(cycle, kernel, epoch)`.
    sleep: BinaryHeap<Reverse<(u64, u32, u64)>>,
    /// Min-heap of injected-stall expiries `(cycle, fifo)`.
    expiry: BinaryHeap<Reverse<(u64, u32)>>,
    /// FIFOs with at least one successful transfer this cycle.
    succ_cycle: Vec<u32>,
    succ_stamp: Vec<u64>,
    cstamp: u64,
}

/// One wait-list entry: which kernel is parked, under which epoch, and
/// which port operations failed in its parking tick (for deadlock
/// snapshots — a parked producer keeps "virtually" failing its push every
/// cycle, exactly as it would under the dense stepper).
#[derive(Debug, Clone, Copy)]
struct Waiter {
    kernel: u32,
    epoch: u64,
    push_fail: bool,
    pop_fail: bool,
}

impl EvState {
    fn new(nkernels: usize, nfifos: usize) -> EvState {
        EvState {
            runnable: vec![0u64; nkernels.div_ceil(64).max(1)],
            parked: vec![false; nkernels],
            parked_at: vec![0; nkernels],
            streak: vec![0; nkernels],
            epoch: vec![0; nkernels],
            done_at: vec![0; nkernels],
            waiters: (0..nfifos).map(|_| Vec::new()).collect(),
            sleep: BinaryHeap::new(),
            expiry: BinaryHeap::new(),
            succ_cycle: Vec::new(),
            succ_stamp: vec![0; nfifos],
            cstamp: 1,
        }
    }

    #[inline]
    fn mark_cycle_success(&mut self, f: usize) {
        if self.succ_stamp[f] != self.cstamp {
            self.succ_stamp[f] = self.cstamp;
            self.succ_cycle.push(f as u32);
        }
    }

    #[inline]
    fn waiter_valid(&self, w: Waiter) -> bool {
        let k = w.kernel as usize;
        self.parked[k] && self.epoch[k] == w.epoch
    }
}

#[inline]
fn set_bit(words: &mut [u64], i: usize) {
    words[i / 64] |= 1u64 << (i % 64);
}

#[inline]
fn clear_bit(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1u64 << (i % 64));
}

#[inline]
fn popcount(words: &[u64]) -> u32 {
    words.iter().map(|w| w.count_ones()).sum()
}

/// First set bit at index `from` or later, scanning word-wise.
#[inline]
fn next_set_bit(words: &[u64], from: usize) -> Option<usize> {
    let mut w = from / 64;
    if w >= words.len() {
        return None;
    }
    let mut cur = words[w] & (!0u64 << (from % 64));
    loop {
        if cur != 0 {
            return Some(w * 64 + cur.trailing_zeros() as usize);
        }
        w += 1;
        if w >= words.len() {
            return None;
        }
        cur = words[w];
    }
}

impl<M> Engine<M> {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Engine {
            fifos: Vec::new(),
            kernels: Vec::new(),
            counters: Counters::new(),
            cycle: 0,
            deadlock_window: 10_000,
            trace: None,
            fast_forward: false,
            skipped: 0,
            fault_plan: None,
            armed: Vec::new(),
            sched_mode: SchedMode::Dense,
            sched: SchedStats::default(),
            park_hysteresis: DEFAULT_PARK_HYSTERESIS,
            scratch: FifoScratch::default(),
        }
    }

    /// Starts a validated builder — the preferred way to configure an
    /// engine. The setter methods ([`enable_trace`](Engine::enable_trace),
    /// [`enable_fast_forward`](Engine::enable_fast_forward),
    /// [`set_deadlock_window`](Engine::set_deadlock_window)) remain as
    /// compatibility shims.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Attaches a fault plan after construction (equivalent to
    /// [`EngineBuilder::fault_plan`]).
    pub fn set_fault_plan(&mut self, plan: SharedFaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Overrides the park hysteresis after construction (see
    /// [`EngineBuilder::park_hysteresis`]). A zero value is silently
    /// clamped to 1; prefer the builder, which rejects it instead.
    pub fn set_park_hysteresis(&mut self, ticks: u32) {
        self.park_hysteresis = ticks.max(1);
    }

    /// Selects the scheduler after construction (equivalent to
    /// [`EngineBuilder::scheduler`]).
    pub fn set_scheduler(&mut self, mode: SchedMode) {
        self.sched_mode = mode;
    }

    /// Enables idle-cycle fast-forwarding under the dense scheduler: when
    /// a cycle ends with no kernel busy and no FIFO transfer, and every
    /// unfinished kernel declares a non-[`Horizon::Opaque`] horizon, the
    /// engine jumps the cycle counter to the next possible event (earliest
    /// [`Horizon::Sleep`] wake-up, deadlock declaration, or cycle limit)
    /// and replays the skipped cycles into [`KernelStats`], FIFO
    /// occupancy statistics and the [`Trace`] — the resulting
    /// [`RunReport`] is identical to ticking cycle by cycle. Per-FIFO
    /// *port-poll* counts (push/pop stall attempts) are not accrued over
    /// skipped cycles, since no tick executes to make the attempt.
    ///
    /// The event-driven scheduler subsumes this (it always jumps cycles
    /// with an empty runnable set), so the flag is ignored there.
    pub fn enable_fast_forward(&mut self) {
        self.fast_forward = true;
    }

    /// Cycles elided so far — by dense fast-forwarding or by event-driven
    /// empty-runnable jumps (0 when neither applies).
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped
    }

    /// Scheduler accounting for the most recent runs (all zero under the
    /// dense stepper).
    pub fn sched_stats(&self) -> SchedStats {
        self.sched
    }

    /// Interns a counter name for string-free hot-path updates via
    /// [`Counters::add_id`]. Kernels should intern at construction time.
    pub fn intern_counter(&mut self, name: &'static str) -> CounterId {
        self.counters.intern(name)
    }

    /// Enables waveform tracing with a window of `capacity` cycles.
    /// Must be called before kernels are registered.
    ///
    /// Deprecated in favor of [`Engine::builder`] +
    /// [`EngineBuilder::trace`], which validates instead of panicking;
    /// kept as a compatibility shim.
    ///
    /// # Panics
    /// Panics if kernels are already registered.
    pub fn enable_trace(&mut self, capacity: usize) {
        assert!(self.kernels.is_empty(), "enable tracing before registering kernels");
        self.trace = Some(Trace::new(capacity));
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Overrides the deadlock-detection window (cycles of global inactivity
    /// before declaring deadlock). Default 10 000. A zero window is
    /// silently clamped to 1; prefer [`Engine::builder`] +
    /// [`EngineBuilder::deadlock_window`], which rejects it instead.
    /// Kept as a compatibility shim.
    pub fn set_deadlock_window(&mut self, cycles: u64) {
        self.deadlock_window = cycles.max(1);
    }

    /// Registers a FIFO, returning its handle.
    pub fn add_fifo(&mut self, fifo: Fifo<M>) -> FifoId {
        self.fifos.push(fifo);
        FifoId(self.fifos.len() - 1)
    }

    /// Registers a kernel. Kernels tick in registration order within a
    /// cycle; combined with registered-FIFO semantics, results do not
    /// depend on that order across cycles.
    pub fn add_kernel(&mut self, kernel: Box<dyn Kernel<M>>) {
        if let Some(t) = &mut self.trace {
            t.add_kernel(kernel.name());
        }
        self.kernels.push(KernelSlot { kernel, stats: KernelStats::default(), done: false, last: Progress::Idle });
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Immutable access to a FIFO (for wiring assertions in tests).
    pub fn fifo(&self, id: FifoId) -> &Fifo<M> {
        &self.fifos[id.0]
    }

    /// Runs until every kernel reports [`Progress::Done`].
    ///
    /// # Errors
    /// [`SimError::Deadlock`] when nothing moves for the deadlock window;
    /// [`SimError::CycleLimit`] when `max_cycles` elapses first.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunReport, SimError> {
        self.arm_fifo_faults();
        self.scratch.ensure(self.fifos.len());
        // The trace is moved out so the observer can borrow it while the
        // run loop borrows the engine; monomorphizing over the observer
        // compiles the untraced hot path with zero tracing overhead.
        let mut trace = self.trace.take();
        let result = match (&mut trace, self.sched_mode) {
            (Some(t), SchedMode::Dense) => self.run_dense(&mut TraceObserver { trace: t }, max_cycles),
            (None, SchedMode::Dense) => self.run_dense(&mut NullObserver, max_cycles),
            (Some(t), SchedMode::EventDriven) => self.run_event(&mut TraceObserver { trace: t }, max_cycles),
            (None, SchedMode::EventDriven) => self.run_event(&mut NullObserver, max_cycles),
        };
        self.trace = trace;
        result
    }

    /// The dense oracle: ticks every kernel every cycle.
    fn run_dense<O: Observer>(&mut self, obs: &mut O, max_cycles: u64) -> Result<RunReport, SimError> {
        let mut last_activity = self.cycle;
        while self.kernels.iter().any(|k| !k.done) {
            if self.cycle >= max_cycles {
                return Err(SimError::CycleLimit { limit: max_cycles, unfinished: self.unfinished_names() });
            }
            self.apply_armed_faults(None);
            let any_busy = self.step_dense(obs);
            let fifo_activity = self.fifos.iter().any(Fifo::active_this_cycle);
            for f in self.fifos.iter_mut() {
                f.end_cycle();
            }
            self.cycle += 1;
            if any_busy || fifo_activity {
                last_activity = self.cycle;
            } else {
                if self.fast_forward {
                    self.try_skip(obs, last_activity, max_cycles);
                }
                if self.cycle - last_activity > self.deadlock_window {
                    return Err(SimError::Deadlock {
                        cycle: self.cycle,
                        blocked: self.unfinished_names(),
                        fifos: self.fifo_snapshots(),
                    });
                }
            }
        }
        Ok(self.report())
    }

    /// Ticks every unfinished kernel once. Returns whether any was busy.
    fn step_dense<O: Observer>(&mut self, obs: &mut O) -> bool {
        let mut any_busy = false;
        for (k, slot) in self.kernels.iter_mut().enumerate() {
            if slot.done {
                slot.stats.done += 1;
                obs.record(k, self.cycle, Progress::Done);
                continue;
            }
            let mut ctx = Ctx {
                cycle: self.cycle,
                fifos: FifoSet { fifos: &mut self.fifos, cycle: self.cycle, scratch: &mut self.scratch },
                counters: &mut self.counters,
            };
            let progress = slot.kernel.tick(&mut ctx);
            obs.record(k, self.cycle, progress);
            slot.last = progress;
            match progress {
                Progress::Busy => {
                    slot.stats.busy += 1;
                    any_busy = true;
                }
                Progress::Blocked => slot.stats.blocked += 1,
                Progress::Idle => slot.stats.idle += 1,
                Progress::Done => {
                    slot.done = true;
                    any_busy = true; // state change counts as progress
                }
            }
        }
        any_busy
    }

    /// The event-driven scheduler: parks blocked kernels, wakes them on
    /// FIFO occupancy edges, and jumps over cycles with nothing runnable.
    fn run_event<O: Observer>(&mut self, obs: &mut O, max_cycles: u64) -> Result<RunReport, SimError> {
        let nk = self.kernels.len();
        let mut ev = EvState::new(nk, self.fifos.len());
        let mut alive = 0usize;
        for (k, slot) in self.kernels.iter().enumerate() {
            if slot.done {
                // Pre-finished kernels accrue nothing more at finalize.
                ev.done_at[k] = self.cycle.saturating_sub(1);
            } else {
                alive += 1;
                set_bit(&mut ev.runnable, k);
            }
        }
        let mut last_activity = self.cycle;
        let mut to_wake: Vec<u32> = Vec::new();

        while alive > 0 {
            if self.cycle >= max_cycles {
                self.finalize_event(&ev, obs);
                return Err(SimError::CycleLimit { limit: max_cycles, unfinished: self.unfinished_names() });
            }
            // Sleep timers due this cycle.
            while let Some(&Reverse((c, k, ep))) = ev.sleep.peek() {
                if c > self.cycle {
                    break;
                }
                ev.sleep.pop();
                let k = k as usize;
                if ev.parked[k] && ev.epoch[k] == ep {
                    self.wake_kernel(&mut ev, obs, k, self.cycle);
                }
            }
            // Injected-stall expiries: the port starts accepting transfers
            // again, so everyone parked on the FIFO must re-run.
            while let Some(&Reverse((c, f))) = ev.expiry.peek() {
                if c > self.cycle {
                    break;
                }
                ev.expiry.pop();
                let f = f as usize;
                to_wake.clear();
                for w in &ev.waiters[f] {
                    if ev.waiter_valid(*w) {
                        to_wake.push(w.kernel);
                    }
                }
                ev.waiters[f].clear();
                for &q in &to_wake {
                    self.wake_kernel(&mut ev, obs, q as usize, self.cycle);
                }
            }
            self.apply_armed_faults(Some(&mut ev.expiry));
            // Nothing runnable: jump straight to the next event. The
            // target is provably > the current cycle (due timers and
            // expiries were just processed; the limit check above and the
            // deadlock invariant bound the rest).
            if popcount(&ev.runnable) == 0 {
                let deadlock_at = last_activity.saturating_add(self.deadlock_window).saturating_add(1);
                let mut target = deadlock_at.min(max_cycles);
                while let Some(&Reverse((c, k, ep))) = ev.sleep.peek() {
                    let ku = k as usize;
                    if ev.parked[ku] && ev.epoch[ku] == ep {
                        target = target.min(c);
                        break;
                    }
                    ev.sleep.pop();
                }
                if let Some(&Reverse((c, _))) = ev.expiry.peek() {
                    target = target.min(c);
                }
                if let Some(at) = self.armed.iter().map(|a| a.at).min() {
                    target = target.min(at);
                }
                debug_assert!(target > self.cycle);
                let n = target - self.cycle;
                self.cycle = target;
                self.skipped += n;
                self.sched.idle_jumped += n;
                if self.cycle - last_activity > self.deadlock_window {
                    self.finalize_event(&ev, obs);
                    let fifos = self.event_fifo_snapshots(&ev);
                    return Err(SimError::Deadlock { cycle: self.cycle, blocked: self.unfinished_names(), fifos });
                }
                continue;
            }

            // Execute cycle `t` for the runnable set.
            let t = self.cycle;
            self.sched.executed_cycles += 1;
            if (popcount(&ev.runnable) as usize) < nk {
                self.sched.lean_cycles += 1;
            }
            self.scratch.begin_cycle();
            ev.cstamp = self.scratch.cstamp;
            let mut any_busy = false;
            let mut scan = 0usize;
            // Live bitset scan: a kernel woken by an earlier kernel's pop
            // this cycle (index above the popper) is picked up in the same
            // pass, matching the dense in-cycle tick order.
            while let Some(p) = next_set_bit(&ev.runnable, scan) {
                scan = p + 1;
                self.scratch.begin_tick();
                let progress = {
                    let slot = &mut self.kernels[p];
                    let mut ctx = Ctx {
                        cycle: t,
                        fifos: FifoSet { fifos: &mut self.fifos, cycle: t, scratch: &mut self.scratch },
                        counters: &mut self.counters,
                    };
                    slot.kernel.tick(&mut ctx)
                };
                obs.record(p, t, progress);
                let slot = &mut self.kernels[p];
                slot.last = progress;
                match progress {
                    Progress::Busy => {
                        slot.stats.busy += 1;
                        any_busy = true;
                    }
                    Progress::Blocked => slot.stats.blocked += 1,
                    Progress::Idle => slot.stats.idle += 1,
                    Progress::Done => {
                        slot.done = true;
                        ev.done_at[p] = t;
                        alive -= 1;
                        clear_bit(&mut ev.runnable, p);
                        any_busy = true; // state change counts as progress
                    }
                }
                // Successful transfers: record the occupancy edge and wake
                // later-indexed waiters immediately — under dense order
                // they tick after `p` this very cycle and already see a
                // pop's freed slot. Earlier-indexed waiters (and staged
                // pushes, which commit at end of cycle) wake at `t + 1`.
                // FIFOs nobody waits on skip the whole pass: `park`
                // refuses any later same-cycle park on them (see
                // `succ_cycle_stamp`), so no wake can be owed.
                let mut i = 0;
                while i < self.scratch.succeeded.len() {
                    let f = self.scratch.succeeded[i] as usize;
                    i += 1;
                    if ev.waiters[f].is_empty() {
                        continue;
                    }
                    ev.mark_cycle_success(f);
                    to_wake.clear();
                    {
                        let mut j = 0;
                        while j < ev.waiters[f].len() {
                            let w = ev.waiters[f][j];
                            if !ev.waiter_valid(w) {
                                ev.waiters[f].swap_remove(j);
                                continue;
                            }
                            if w.kernel as usize > p {
                                to_wake.push(w.kernel);
                                ev.waiters[f].swap_remove(j);
                                continue;
                            }
                            j += 1;
                        }
                    }
                    for &q in &to_wake {
                        self.wake_kernel(&mut ev, obs, q as usize, t);
                    }
                }
                // Park? Only when the tick was a pure failure (no state
                // mutated: nothing succeeded, progress is Blocked/Idle)
                // and the kernel's horizon guarantees the skipped re-runs
                // would be no-ops. An empty watch set with no timer means
                // nothing could ever wake it — keep it ticking (e.g.
                // barrier spinners between FIFO interactions). Reactive
                // kernels additionally wait out the park hysteresis:
                // short blocking rhythms are cheaper to re-poll than to
                // route through the wait lists. Sleep parks are exact
                // (the kernel names its wake cycle) and skip the wait.
                if !self.scratch.any_success && matches!(progress, Progress::Blocked | Progress::Idle) {
                    match self.kernels[p].kernel.horizon() {
                        Horizon::Opaque => {}
                        Horizon::Reactive => {
                            if self.scratch.any_access {
                                ev.streak[p] = ev.streak[p].saturating_add(1);
                                if ev.streak[p] >= self.park_hysteresis {
                                    self.park(&mut ev, p, t, None);
                                }
                            }
                        }
                        Horizon::Sleep(c) if c > t => self.park(&mut ev, p, t, Some(c)),
                        Horizon::Sleep(_) => {} // expired timer: stay live
                    }
                } else {
                    ev.streak[p] = 0;
                }
            }
            // Commit only the FIFOs that saw a port operation this cycle;
            // untouched FIFOs settle their statistics lazily via `sync`.
            {
                let mut i = 0;
                while i < self.scratch.touched.len() {
                    let f = self.scratch.touched[i] as usize;
                    i += 1;
                    self.fifos[f].end_cycle();
                }
            }
            let fifo_activity = self.scratch.cycle_any_success;
            self.cycle = t + 1;
            // Staged pushes just committed; remaining waiters of every
            // FIFO with a transfer this cycle re-run from the next cycle.
            {
                let mut i = 0;
                while i < ev.succ_cycle.len() {
                    let f = ev.succ_cycle[i] as usize;
                    i += 1;
                    to_wake.clear();
                    for w in &ev.waiters[f] {
                        if ev.waiter_valid(*w) {
                            to_wake.push(w.kernel);
                        }
                    }
                    ev.waiters[f].clear();
                    for &q in &to_wake {
                        self.wake_kernel(&mut ev, obs, q as usize, t + 1);
                    }
                }
                ev.succ_cycle.clear();
            }
            if any_busy || fifo_activity {
                last_activity = self.cycle;
            } else if self.cycle - last_activity > self.deadlock_window {
                self.finalize_event(&ev, obs);
                let fifos = self.event_fifo_snapshots(&ev);
                return Err(SimError::Deadlock { cycle: self.cycle, blocked: self.unfinished_names(), fifos });
            }
        }
        self.finalize_event(&ev, obs);
        Ok(self.report())
    }

    /// Parks kernel `p` after its tick at cycle `t`: it leaves the
    /// runnable set and joins the wait list of every FIFO it accessed
    /// (plus the sleep heap when a timer is pending).
    fn park(&mut self, ev: &mut EvState, p: usize, t: u64, timer: Option<u64>) {
        // The watch set is enumerated by scanning the per-FIFO access
        // stamps: parks are rare, so paying O(nfifos) here is cheaper than
        // keeping an index list current on every hot-path access.
        //
        // First pass — refuse when any watched FIFO already transferred
        // this cycle: the success's waiter pass ran before this kernel
        // parked (or was skipped because the FIFO had no waiters), so
        // parking now would miss the `t + 1` wake the dense order owes.
        // Staying runnable and re-ticking next cycle is that wake, minus
        // the park/wake churn.
        let tick = self.scratch.tick;
        for f in 0..self.scratch.accessed_stamp.len() {
            if self.scratch.accessed_stamp[f] == tick
                && self.scratch.succ_cycle_stamp[f] == self.scratch.cstamp
            {
                return;
            }
        }
        ev.parked[p] = true;
        ev.parked_at[p] = t;
        ev.epoch[p] += 1;
        let ep = ev.epoch[p];
        clear_bit(&mut ev.runnable, p);
        for f in 0..self.scratch.accessed_stamp.len() {
            if self.scratch.accessed_stamp[f] != tick {
                continue;
            }
            ev.waiters[f].push(Waiter {
                kernel: p as u32,
                epoch: ep,
                push_fail: self.scratch.push_fail_stamp[f] == tick,
                pop_fail: self.scratch.pop_fail_stamp[f] == tick,
            });
        }
        if let Some(c) = timer {
            ev.sleep.push(Reverse((c, p as u32, ep)));
        }
        self.sched.parks += 1;
    }

    /// Wakes kernel `q` so it ticks again at cycle `at`, replaying the
    /// parked stretch (its last [`Progress`], repeated — exactly what the
    /// dense stepper would have observed, by the [`Horizon::Reactive`]
    /// contract) into stats, trace and the kernel's own fast-forward hook.
    fn wake_kernel<O: Observer>(&mut self, ev: &mut EvState, obs: &mut O, q: usize, at: u64) {
        if !ev.parked[q] {
            return;
        }
        debug_assert!(at > ev.parked_at[q]);
        ev.parked[q] = false;
        ev.epoch[q] += 1;
        set_bit(&mut ev.runnable, q);
        let n = at - 1 - ev.parked_at[q];
        if n > 0 {
            let slot = &mut self.kernels[q];
            match slot.last {
                Progress::Blocked => slot.stats.blocked += n,
                Progress::Idle => slot.stats.idle += n,
                _ => debug_assert!(false, "parked kernels are Blocked or Idle"),
            }
            obs.record_span(q, ev.parked_at[q] + 1, n, slot.last);
            slot.kernel.fast_forward(n);
        }
        self.sched.wakes += 1;
    }

    /// Settles everything the event scheduler deferred, up to (but not
    /// including) `self.cycle`: parked kernels' replayed stretches, done
    /// kernels' trailing `done` cycles, and untouched FIFOs' occupancy
    /// statistics. Runs on every exit path (success, deadlock, limit) so
    /// reports and traces always match the dense oracle.
    fn finalize_event<O: Observer>(&mut self, ev: &EvState, obs: &mut O) {
        let end = self.cycle;
        for (k, slot) in self.kernels.iter_mut().enumerate() {
            if slot.done {
                let n = end.saturating_sub(ev.done_at[k].saturating_add(1));
                if n > 0 {
                    slot.stats.done += n;
                    obs.record_span(k, ev.done_at[k] + 1, n, Progress::Done);
                }
            } else if ev.parked[k] {
                let n = end.saturating_sub(ev.parked_at[k].saturating_add(1));
                if n > 0 {
                    match slot.last {
                        Progress::Blocked => slot.stats.blocked += n,
                        Progress::Idle => slot.stats.idle += n,
                        _ => debug_assert!(false, "parked kernels are Blocked or Idle"),
                    }
                    obs.record_span(k, ev.parked_at[k] + 1, n, slot.last);
                    slot.kernel.fast_forward(n);
                }
            }
        }
        for f in self.fifos.iter_mut() {
            f.sync(end);
        }
    }

    /// Names of kernels not yet done, in registration order.
    fn unfinished_names(&self) -> Vec<String> {
        self.kernels.iter().filter(|k| !k.done).map(|k| k.kernel.name().to_string()).collect()
    }

    /// Captures every FIFO's state for a dense-mode deadlock report.
    fn fifo_snapshots(&self) -> Vec<FifoSnapshot> {
        self.fifos
            .iter()
            .map(|f| FifoSnapshot {
                name: f.name().to_string(),
                occupancy: f.occupancy(),
                capacity: f.capacity(),
                stalled: f.forced_stall_remaining() > 0,
                push_waiting: f.last_push_stalled(),
                pop_waiting: f.last_pop_stalled(),
            })
            .collect()
    }

    /// Event-mode deadlock snapshots. A waiting producer/consumer is one
    /// that failed a push/pop in the last executed cycle — either an
    /// actual attempt one cycle ago, or a parked kernel whose frozen tick
    /// keeps virtually re-failing (the dense stepper would re-run it every
    /// cycle with the same outcome).
    fn event_fifo_snapshots(&mut self, ev: &EvState) -> Vec<FifoSnapshot> {
        let cycle = self.cycle;
        let last_exec = cycle.wrapping_sub(1);
        let scratch = &self.scratch;
        let mut out = Vec::with_capacity(self.fifos.len());
        for (i, f) in self.fifos.iter_mut().enumerate() {
            f.sync(cycle);
            let mut push_waiting = scratch.push_fail_cycle[i] == last_exec;
            let mut pop_waiting = scratch.pop_fail_cycle[i] == last_exec;
            for w in &ev.waiters[i] {
                if ev.waiter_valid(*w) {
                    push_waiting |= w.push_fail;
                    pop_waiting |= w.pop_fail;
                }
            }
            out.push(FifoSnapshot {
                name: f.name().to_string(),
                occupancy: f.occupancy(),
                capacity: f.capacity(),
                stalled: f.forced_stall_remaining() > 0,
                push_waiting,
                pop_waiting,
            });
        }
        out
    }

    /// Pulls `fifo:<name>:push|pop` injections out of the fault plan and
    /// resolves the names against the registered FIFOs. Injections naming
    /// an unknown FIFO or carrying a non-stall kind are dropped (they show
    /// up as never-fired in the plan's log, which is what a campaign
    /// reports).
    fn arm_fifo_faults(&mut self) {
        let Some(plan) = &self.fault_plan else {
            return;
        };
        let drained = plan.lock().unwrap_or_else(|e| e.into_inner()).drain_prefix("fifo:");
        for inj in drained {
            let rest = &inj.site["fifo:".len()..];
            let (name, port) = match rest.rsplit_once(':') {
                Some((n, "push")) => (n, StallPort::Push),
                Some((n, "pop")) => (n, StallPort::Pop),
                _ => continue,
            };
            let FaultKind::FifoStall { cycles } = inj.kind else {
                continue;
            };
            if let Some(idx) = self.fifos.iter().position(|f| f.name() == name) {
                self.armed.push(ArmedStall { site: inj.site.clone(), at: inj.at, fifo: idx, port, cycles });
            }
        }
    }

    /// Applies every armed stall whose trigger cycle has arrived, logging
    /// it as fired in the shared plan. In event mode (`expiry` present)
    /// each finite stall also registers its expiry as a wake event.
    fn apply_armed_faults(&mut self, mut expiry: Option<&mut BinaryHeap<Reverse<(u64, u32)>>>) {
        if self.armed.is_empty() {
            return;
        }
        let cycle = self.cycle;
        let mut due = Vec::new();
        self.armed.retain(|a| {
            if a.at <= cycle {
                due.push(a.clone());
                false
            } else {
                true
            }
        });
        for a in due {
            let f = &mut self.fifos[a.fifo];
            f.sync(cycle);
            f.inject_stall(a.port, a.cycles);
            if a.cycles != u64::MAX {
                if let Some(heap) = expiry.as_deref_mut() {
                    heap.push(Reverse((cycle.saturating_add(a.cycles), a.fifo as u32)));
                }
            }
            if let Some(plan) = &self.fault_plan {
                plan.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .log_fired(a.site, cycle, FaultKind::FifoStall { cycles: a.cycles });
            }
        }
    }

    /// Attempts to jump over a quiescent stretch (dense scheduler only).
    /// Called after a cycle in which nothing was busy and no FIFO moved
    /// data, so the cycle just observed would repeat verbatim until the
    /// next event: the earliest [`Horizon::Sleep`] wake-up, the deadlock
    /// declaration, or the cycle limit. Replays the observed per-kernel
    /// [`Progress`] and FIFO occupancies over the skipped span so the
    /// final report is identical to ticking through it.
    fn try_skip<O: Observer>(&mut self, obs: &mut O, last_activity: u64, max_cycles: u64) {
        let mut wake = u64::MAX;
        for slot in &self.kernels {
            if slot.done {
                continue;
            }
            match slot.kernel.horizon() {
                Horizon::Opaque => return,
                Horizon::Reactive => {}
                Horizon::Sleep(cycle) => wake = wake.min(cycle),
            }
        }
        // Pending fault injections and injected-stall expiries are wake
        // events too: an armed stall must land on its exact trigger cycle,
        // and a stalled port starts accepting transfers again the cycle
        // its counter reaches zero.
        for a in &self.armed {
            wake = wake.min(a.at);
        }
        for f in &self.fifos {
            let remaining = f.forced_stall_remaining();
            if remaining > 0 && remaining != u64::MAX {
                wake = wake.min(self.cycle.saturating_add(remaining));
            }
        }
        // The deadlock check fires at `last_activity + window + 1`; the
        // limit check fires at `max_cycles`. Skip to whichever event is
        // first, never backwards.
        let deadlock_at = last_activity.saturating_add(self.deadlock_window).saturating_add(1);
        let target = wake.min(deadlock_at).min(max_cycles).max(self.cycle);
        let n = target - self.cycle;
        if n == 0 {
            return;
        }
        for (k, slot) in self.kernels.iter_mut().enumerate() {
            let progress = if slot.done { Progress::Done } else { slot.last };
            match progress {
                Progress::Busy => unreachable!("skip only follows a cycle with no busy kernel"),
                Progress::Blocked => slot.stats.blocked += n,
                Progress::Idle => slot.stats.idle += n,
                Progress::Done => slot.stats.done += n,
            }
            obs.record_span(k, self.cycle, n, progress);
            if !slot.done {
                slot.kernel.fast_forward(n);
            }
        }
        for f in self.fifos.iter_mut() {
            f.fast_forward(n);
        }
        self.cycle += n;
        self.skipped += n;
    }

    /// Builds the final report.
    fn report(&self) -> RunReport {
        RunReport {
            cycles: self.cycle,
            kernels: self
                .kernels
                .iter()
                .map(|k| (k.kernel.name().to_string(), k.stats))
                .collect(),
            counters: self.counters.clone(),
            sched: self.sched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Emits `count` values then finishes.
    struct Source {
        out: FifoId,
        next: u32,
        count: u32,
    }

    impl Kernel<u32> for Source {
        fn name(&self) -> &str {
            "source"
        }
        fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
            if self.next == self.count {
                return Progress::Done;
            }
            match ctx.fifos.try_push(self.out, self.next) {
                Ok(()) => {
                    self.next += 1;
                    ctx.counters.add("emitted", 1);
                    Progress::Busy
                }
                Err(_) => Progress::Blocked,
            }
        }
    }

    /// Collects `count` values (checking order) then finishes.
    struct Sink {
        inp: FifoId,
        expect_next: u32,
        count: u32,
    }

    impl Kernel<u32> for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
            if self.expect_next == self.count {
                return Progress::Done;
            }
            match ctx.fifos.try_pop(self.inp) {
                Some(v) => {
                    assert_eq!(v, self.expect_next, "values must arrive in order");
                    self.expect_next += 1;
                    Progress::Busy
                }
                None => Progress::Blocked,
            }
        }
    }

    /// Pass-through stage: pops from `inp`, pushes to `out` next cycle.
    struct Stage {
        inp: FifoId,
        out: FifoId,
        held: Option<u32>,
        forwarded: u32,
        count: u32,
    }

    impl Kernel<u32> for Stage {
        fn name(&self) -> &str {
            "stage"
        }
        fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
            if self.forwarded == self.count && self.held.is_none() {
                return Progress::Done;
            }
            let mut progress = Progress::Idle;
            if let Some(v) = self.held {
                match ctx.fifos.try_push(self.out, v) {
                    Ok(()) => {
                        self.held = None;
                        self.forwarded += 1;
                        progress = Progress::Busy;
                    }
                    Err(_) => return Progress::Blocked,
                }
            }
            if self.held.is_none() && self.forwarded + u32::from(self.held.is_some()) < self.count {
                if let Some(v) = ctx.fifos.try_pop(self.inp) {
                    self.held = Some(v);
                    progress = Progress::Busy;
                }
            }
            if progress == Progress::Idle && self.held.is_none() {
                Progress::Blocked
            } else {
                progress
            }
        }
    }

    #[test]
    fn producer_consumer_transfers_all_values_in_order() {
        let mut e = Engine::new();
        let q = e.add_fifo(Fifo::new("q", 4));
        e.add_kernel(Box::new(Source { out: q, next: 0, count: 100 }));
        e.add_kernel(Box::new(Sink { inp: q, expect_next: 0, count: 100 }));
        let r = e.run(10_000).unwrap();
        assert_eq!(r.counters.get("emitted"), 100);
        // 1 cycle FIFO latency: sink finishes shortly after source.
        assert!(r.cycles >= 101 && r.cycles < 120, "cycles {}", r.cycles);
        assert!(r.kernel("source").unwrap().busy == 100);
    }

    #[test]
    fn three_stage_pipeline_reaches_steady_state() {
        let mut e = Engine::new();
        let q1 = e.add_fifo(Fifo::new("q1", 2));
        let q2 = e.add_fifo(Fifo::new("q2", 2));
        e.add_kernel(Box::new(Source { out: q1, next: 0, count: 50 }));
        e.add_kernel(Box::new(Stage { inp: q1, out: q2, held: None, forwarded: 0, count: 50 }));
        e.add_kernel(Box::new(Sink { inp: q2, expect_next: 0, count: 50 }));
        let r = e.run(10_000).unwrap();
        // Pipeline adds a few cycles of latency but sustains ~1 value/cycle.
        assert!(r.cycles < 80, "cycles {}", r.cycles);
    }

    #[test]
    fn backpressure_throttles_producer() {
        let mut e = Engine::new();
        let q = e.add_fifo(Fifo::new("q", 1));
        e.add_kernel(Box::new(Source { out: q, next: 0, count: 20 }));
        e.add_kernel(Box::new(SlowSink { inp: q, received: 0, count: 20, phase: 0 }));
        let r = e.run(10_000).unwrap();
        let source = r.kernel("source").unwrap();
        assert!(source.blocked > 0, "producer must have stalled");
        // Sink pops every 3rd cycle: run length ~3x value count.
        assert!(r.cycles >= 60, "cycles {}", r.cycles);
    }

    /// Pops only every third cycle. Mutates its phase on every tick, so it
    /// is *not* reactive and must keep the default Opaque horizon.
    struct SlowSink {
        inp: FifoId,
        received: u32,
        count: u32,
        phase: u8,
    }

    impl Kernel<u32> for SlowSink {
        fn name(&self) -> &str {
            "slow-sink"
        }
        fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
            if self.received == self.count {
                return Progress::Done;
            }
            self.phase = (self.phase + 1) % 3;
            if self.phase != 0 {
                return Progress::Idle;
            }
            match ctx.fifos.try_pop(self.inp) {
                Some(_) => {
                    self.received += 1;
                    Progress::Busy
                }
                None => Progress::Blocked,
            }
        }
    }

    #[test]
    fn deadlock_is_detected() {
        // A sink waiting on a FIFO nobody feeds.
        let mut e = Engine::new();
        let q = e.add_fifo(Fifo::new("q", 1));
        e.add_kernel(Box::new(Sink { inp: q, expect_next: 0, count: 1 }));
        e.set_deadlock_window(50);
        match e.run(100_000) {
            Err(SimError::Deadlock { blocked, .. }) => assert_eq!(blocked, vec!["sink".to_string()]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn cycle_limit_is_reported() {
        let mut e = Engine::new();
        let q = e.add_fifo(Fifo::new("q", 1));
        e.add_kernel(Box::new(Source { out: q, next: 0, count: 1000 }));
        e.add_kernel(Box::new(SlowSink { inp: q, received: 0, count: 1000, phase: 0 }));
        match e.run(10) {
            Err(SimError::CycleLimit { limit: 10, unfinished }) => {
                assert_eq!(unfinished.len(), 2);
            }
            other => panic!("expected cycle limit, got {other:?}"),
        }
    }

    /// Emits one value every `period` cycles (a modeled host-polling or
    /// DMA-latency interval), declaring a [`Horizon::Sleep`] so the
    /// engine can jump the gaps.
    struct SlowSource {
        out: FifoId,
        period: u64,
        next_emit: u64,
        emitted: u32,
        count: u32,
    }

    impl Kernel<u32> for SlowSource {
        fn name(&self) -> &str {
            "slow-source"
        }
        fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
            if self.emitted == self.count {
                return Progress::Done;
            }
            if ctx.cycle < self.next_emit {
                return Progress::Idle;
            }
            match ctx.fifos.try_push(self.out, self.emitted) {
                Ok(()) => {
                    self.emitted += 1;
                    self.next_emit = ctx.cycle + self.period;
                    ctx.counters.add("emitted", 1);
                    Progress::Busy
                }
                Err(_) => Progress::Blocked,
            }
        }
        fn horizon(&self) -> Horizon {
            Horizon::Sleep(self.next_emit)
        }
    }

    /// A sink that is a pure function of its input FIFO.
    struct ReactiveSink {
        inp: FifoId,
        expect_next: u32,
        count: u32,
    }

    impl Kernel<u32> for ReactiveSink {
        fn name(&self) -> &str {
            "reactive-sink"
        }
        fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
            if self.expect_next == self.count {
                return Progress::Done;
            }
            match ctx.fifos.try_pop(self.inp) {
                Some(v) => {
                    assert_eq!(v, self.expect_next);
                    self.expect_next += 1;
                    Progress::Busy
                }
                None => Progress::Blocked,
            }
        }
        fn horizon(&self) -> Horizon {
            Horizon::Reactive
        }
    }

    fn sparse_design(fast: bool) -> Engine<u32> {
        let mut e = Engine::new();
        if fast {
            e.enable_fast_forward();
        }
        let q = e.add_fifo(Fifo::new("q", 2));
        e.add_kernel(Box::new(SlowSource { out: q, period: 5_000, next_emit: 0, emitted: 0, count: 10 }));
        e.add_kernel(Box::new(ReactiveSink { inp: q, expect_next: 0, count: 10 }));
        e
    }

    #[test]
    fn fast_forward_skips_idle_stretches_with_identical_report() {
        let mut slow = sparse_design(false);
        let mut fast = sparse_design(true);
        // Window must exceed the idle period or the slow run deadlocks.
        slow.set_deadlock_window(10_000);
        fast.set_deadlock_window(10_000);
        let a = slow.run(1_000_000).expect("completes");
        let b = fast.run(1_000_000).expect("completes");
        assert_eq!(a, b, "fast-forwarded report must be identical");
        assert!(a.cycles > 45_000, "ten 5000-cycle periods: {}", a.cycles);
        assert_eq!(slow.skipped_cycles(), 0);
        assert!(fast.skipped_cycles() > 40_000, "skipped {}", fast.skipped_cycles());
    }

    #[test]
    fn fast_forward_trace_matches_cycle_by_cycle() {
        let build = |fast: bool| {
            let mut e: Engine<u32> = Engine::new();
            e.enable_trace(64);
            if fast {
                e.enable_fast_forward();
            }
            let q = e.add_fifo(Fifo::new("q", 2));
            e.add_kernel(Box::new(SlowSource { out: q, period: 13, next_emit: 0, emitted: 0, count: 4 }));
            e.add_kernel(Box::new(ReactiveSink { inp: q, expect_next: 0, count: 4 }));
            e.set_deadlock_window(100);
            e.run(10_000).expect("completes");
            e.trace().expect("tracing on").render(80)
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn fast_forward_preserves_deadlock_cycle() {
        let run = |fast: bool| {
            let mut e: Engine<u32> = Engine::new();
            if fast {
                e.enable_fast_forward();
            }
            let q = e.add_fifo(Fifo::new("q", 1));
            e.add_kernel(Box::new(ReactiveSink { inp: q, expect_next: 0, count: 1 }));
            e.set_deadlock_window(5_000);
            e.run(1_000_000)
        };
        let (a, b) = (run(false), run(true));
        assert!(matches!(a, Err(SimError::Deadlock { .. })));
        assert_eq!(a, b, "deadlock must be declared at the same cycle");
    }

    #[test]
    fn fast_forward_preserves_cycle_limit() {
        let run = |fast: bool| {
            let mut e: Engine<u32> = Engine::new();
            if fast {
                e.enable_fast_forward();
            }
            let q = e.add_fifo(Fifo::new("q", 2));
            // Sleeps far past the limit: the limit must fire first.
            e.add_kernel(Box::new(SlowSource { out: q, period: 900_000, next_emit: 0, emitted: 0, count: 5 }));
            e.add_kernel(Box::new(ReactiveSink { inp: q, expect_next: 0, count: 5 }));
            e.set_deadlock_window(2_000_000);
            e.run(100_000)
        };
        let (a, b) = (run(false), run(true));
        assert!(matches!(a, Err(SimError::CycleLimit { limit: 100_000, .. })));
        assert_eq!(a, b);
    }

    #[test]
    fn opaque_kernels_suppress_fast_forward() {
        // Same sparse design, but the sink keeps the default Opaque
        // horizon: the engine must tick every cycle.
        struct OpaqueSink(ReactiveSink);
        impl Kernel<u32> for OpaqueSink {
            fn name(&self) -> &str {
                "opaque-sink"
            }
            fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
                self.0.tick(ctx)
            }
        }
        let mut e: Engine<u32> = Engine::new();
        e.enable_fast_forward();
        let q = e.add_fifo(Fifo::new("q", 2));
        e.add_kernel(Box::new(SlowSource { out: q, period: 500, next_emit: 0, emitted: 0, count: 3 }));
        e.add_kernel(Box::new(OpaqueSink(ReactiveSink { inp: q, expect_next: 0, count: 3 })));
        e.run(100_000).expect("completes");
        assert_eq!(e.skipped_cycles(), 0);
    }

    #[test]
    fn builder_validates_config() {
        let bad: Result<Engine<u32>, _> = Engine::<u32>::builder().trace(0).build();
        assert_eq!(bad.err(), Some(ConfigError::ZeroTraceCapacity));
        let bad: Result<Engine<u32>, _> = Engine::<u32>::builder().deadlock_window(0).build();
        assert_eq!(bad.err(), Some(ConfigError::ZeroDeadlockWindow));
        let ok: Result<Engine<u32>, _> =
            Engine::<u32>::builder().trace(16).fast_forward(true).deadlock_window(500).build();
        assert!(ok.is_ok());
    }

    #[test]
    fn injected_transient_stall_delays_but_completes() {
        use zskip_fault::{FaultKind, FaultPlan};
        let baseline = {
            let mut e = Engine::new();
            let q = e.add_fifo(Fifo::new("q", 4));
            e.add_kernel(Box::new(Source { out: q, next: 0, count: 100 }));
            e.add_kernel(Box::new(Sink { inp: q, expect_next: 0, count: 100 }));
            e.run(10_000).unwrap().cycles
        };
        let plan =
            FaultPlan::new().inject("fifo:q:push", 10, FaultKind::FifoStall { cycles: 50 }).shared();
        let mut e: Engine<u32> =
            Engine::<u32>::builder().fault_plan(plan.clone()).build().unwrap();
        let q = e.add_fifo(Fifo::new("q", 4));
        e.add_kernel(Box::new(Source { out: q, next: 0, count: 100 }));
        e.add_kernel(Box::new(Sink { inp: q, expect_next: 0, count: 100 }));
        let r = e.run(10_000).expect("transient stall must not be fatal");
        assert_eq!(r.counters.get("emitted"), 100, "all values still delivered");
        assert!(r.cycles >= baseline + 45, "stall visible: {} vs {baseline}", r.cycles);
        let p = plan.lock().unwrap();
        assert_eq!(p.fired().len(), 1, "injection must be logged as fired");
        assert_eq!(p.fired()[0].site, "fifo:q:push");
    }

    #[test]
    fn permanent_stall_deadlocks_and_names_wedged_fifo() {
        use zskip_fault::{FaultKind, FaultPlan};
        let plan = FaultPlan::new()
            .inject("fifo:q:pop", 5, FaultKind::FifoStall { cycles: u64::MAX })
            .shared();
        let mut e: Engine<u32> = Engine::<u32>::builder()
            .fault_plan(plan)
            .deadlock_window(100)
            .build()
            .unwrap();
        let q = e.add_fifo(Fifo::new("q", 4));
        e.add_kernel(Box::new(Source { out: q, next: 0, count: 100 }));
        e.add_kernel(Box::new(Sink { inp: q, expect_next: 0, count: 100 }));
        let err = e.run(100_000).unwrap_err();
        let wedged = err.wedged().expect("deadlock must name a fifo");
        assert_eq!(wedged.name, "q");
        assert!(wedged.stalled, "the injected stall is the suspect");
        assert!(err.to_string().contains("wedged fifo: q"), "{err}");
    }

    #[test]
    fn fast_forward_with_injected_stall_matches_cycle_by_cycle() {
        use zskip_fault::{FaultKind, FaultPlan};
        let run = |fast: bool| {
            let plan = FaultPlan::new()
                .inject("fifo:q:pop", 4_900, FaultKind::FifoStall { cycles: 300 })
                .shared();
            let mut e: Engine<u32> =
                Engine::<u32>::builder().fast_forward(fast).fault_plan(plan).build().unwrap();
            let q = e.add_fifo(Fifo::new("q", 2));
            e.add_kernel(Box::new(SlowSource {
                out: q,
                period: 5_000,
                next_emit: 0,
                emitted: 0,
                count: 4,
            }));
            e.add_kernel(Box::new(ReactiveSink { inp: q, expect_next: 0, count: 4 }));
            (e.run(1_000_000).expect("completes"), e.skipped_cycles())
        };
        let (a, skipped_slow) = run(false);
        let (b, skipped_fast) = run(true);
        assert_eq!(a, b, "stall-aware fast-forward must be exact");
        assert_eq!(skipped_slow, 0);
        assert!(skipped_fast > 10_000, "skipped {skipped_fast}");
    }

    #[test]
    fn report_tracks_done_cycles() {
        let mut e = Engine::new();
        let q = e.add_fifo(Fifo::new("q", 8));
        e.add_kernel(Box::new(Source { out: q, next: 0, count: 5 }));
        e.add_kernel(Box::new(SlowSink { inp: q, received: 0, count: 5, phase: 0 }));
        let r = e.run(1_000).unwrap();
        let source = r.kernel("source").unwrap();
        assert!(source.done > 0, "source finishes before sink and accrues done cycles");
    }

    // ---- event-driven scheduler vs. dense oracle ----

    /// Delegating wrapper that upgrades a kernel's horizon to
    /// [`Horizon::Reactive`] — valid for the helpers above whose blocked
    /// and idle paths are pure FIFO reads (`SlowSink` is NOT one: it
    /// mutates its phase every tick and must stay Opaque).
    struct Reactivize<K>(K);

    impl<K: Kernel<u32>> Kernel<u32> for Reactivize<K> {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
            self.0.tick(ctx)
        }
        fn horizon(&self) -> Horizon {
            Horizon::Reactive
        }
        fn fast_forward(&mut self, skipped: u64) {
            self.0.fast_forward(skipped)
        }
    }

    #[test]
    fn event_matches_dense_on_pipeline() {
        let run = |mode: SchedMode| {
            let mut e = Engine::new();
            e.set_scheduler(mode);
            // Startup stalls last only a few cycles: park on the first
            // quiescent tick so this test exercises the wait lists.
            e.set_park_hysteresis(1);
            let q1 = e.add_fifo(Fifo::new("q1", 2));
            let q2 = e.add_fifo(Fifo::new("q2", 2));
            e.add_kernel(Box::new(Reactivize(Source { out: q1, next: 0, count: 50 })));
            e.add_kernel(Box::new(Reactivize(Stage {
                inp: q1,
                out: q2,
                held: None,
                forwarded: 0,
                count: 50,
            })));
            e.add_kernel(Box::new(Reactivize(Sink { inp: q2, expect_next: 0, count: 50 })));
            let r = e.run(10_000).unwrap();
            (r, e.sched_stats())
        };
        let (a, dense_sched) = run(SchedMode::Dense);
        let (b, sched) = run(SchedMode::EventDriven);
        assert_eq!(a, b, "event-driven run must be bit-identical");
        assert_eq!(dense_sched.parks, 0, "dense stepper never parks");
        assert!(sched.parks > 0, "startup blocking must park: {sched:?}");
        assert_eq!(sched.executed_cycles + sched.idle_jumped, b.cycles);
    }

    #[test]
    fn event_matches_dense_under_backpressure() {
        let run = |mode: SchedMode| {
            let mut e = Engine::new();
            e.set_scheduler(mode);
            // The sink pops every other cycle: the producer's stalls are
            // too short for the default hysteresis, so pin it to 1.
            e.set_park_hysteresis(1);
            let q = e.add_fifo(Fifo::new("q", 1));
            e.add_kernel(Box::new(Reactivize(Source { out: q, next: 0, count: 20 })));
            e.add_kernel(Box::new(SlowSink { inp: q, received: 0, count: 20, phase: 0 }));
            let r = e.run(10_000).unwrap();
            (r, e.sched_stats())
        };
        let (a, _) = run(SchedMode::Dense);
        let (b, sched) = run(SchedMode::EventDriven);
        assert_eq!(a, b);
        assert!(sched.parks > 0, "producer parks while the slow sink drains: {sched:?}");
        assert!(sched.wakes >= sched.parks, "every park eventually wakes (run completed)");
    }

    #[test]
    fn event_trace_matches_dense() {
        let build = |mode: SchedMode| {
            let mut e: Engine<u32> =
                Engine::<u32>::builder().trace(256).scheduler(mode).deadlock_window(100).build().unwrap();
            let q = e.add_fifo(Fifo::new("q", 2));
            e.add_kernel(Box::new(SlowSource { out: q, period: 13, next_emit: 0, emitted: 0, count: 4 }));
            e.add_kernel(Box::new(ReactiveSink { inp: q, expect_next: 0, count: 4 }));
            e.run(10_000).expect("completes");
            e.trace().expect("tracing on").render(80)
        };
        assert_eq!(build(SchedMode::Dense), build(SchedMode::EventDriven));
    }

    #[test]
    fn event_jumps_idle_stretches_and_matches_dense() {
        let run = |mode: SchedMode| {
            let mut e = Engine::new();
            e.set_scheduler(mode);
            e.set_deadlock_window(10_000);
            let q = e.add_fifo(Fifo::new("q", 2));
            e.add_kernel(Box::new(SlowSource { out: q, period: 5_000, next_emit: 0, emitted: 0, count: 10 }));
            e.add_kernel(Box::new(ReactiveSink { inp: q, expect_next: 0, count: 10 }));
            let r = e.run(1_000_000).expect("completes");
            (r, e.sched_stats())
        };
        let (a, _) = run(SchedMode::Dense);
        let (b, sched) = run(SchedMode::EventDriven);
        assert_eq!(a, b);
        assert!(sched.idle_jumped > 40_000, "sleep gaps jumped: {sched:?}");
        assert_eq!(sched.executed_cycles + sched.idle_jumped, b.cycles);
    }

    #[test]
    fn event_preserves_deadlock_attribution() {
        let run = |mode: SchedMode| {
            let mut e: Engine<u32> = Engine::new();
            e.set_scheduler(mode);
            let q = e.add_fifo(Fifo::new("q", 1));
            e.add_kernel(Box::new(ReactiveSink { inp: q, expect_next: 0, count: 1 }));
            e.set_deadlock_window(5_000);
            e.run(1_000_000)
        };
        let (a, b) = (run(SchedMode::Dense), run(SchedMode::EventDriven));
        assert!(matches!(a, Err(SimError::Deadlock { .. })));
        assert_eq!(a, b, "same deadlock cycle, blocked set and FIFO snapshots");
    }

    #[test]
    fn event_preserves_cycle_limit() {
        let run = |mode: SchedMode| {
            let mut e: Engine<u32> = Engine::new();
            e.set_scheduler(mode);
            let q = e.add_fifo(Fifo::new("q", 2));
            e.add_kernel(Box::new(SlowSource { out: q, period: 900_000, next_emit: 0, emitted: 0, count: 5 }));
            e.add_kernel(Box::new(ReactiveSink { inp: q, expect_next: 0, count: 5 }));
            e.set_deadlock_window(2_000_000);
            e.run(100_000)
        };
        let (a, b) = (run(SchedMode::Dense), run(SchedMode::EventDriven));
        assert!(matches!(a, Err(SimError::CycleLimit { limit: 100_000, .. })));
        assert_eq!(a, b);
    }

    #[test]
    fn event_matches_dense_with_transient_stall() {
        use zskip_fault::{FaultKind, FaultPlan};
        let run = |mode: SchedMode| {
            let plan = FaultPlan::new()
                .inject("fifo:q:pop", 30, FaultKind::FifoStall { cycles: 50 })
                .shared();
            let mut e: Engine<u32> =
                Engine::<u32>::builder().scheduler(mode).fault_plan(plan).build().unwrap();
            let q = e.add_fifo(Fifo::new("q", 4));
            e.add_kernel(Box::new(Reactivize(Source { out: q, next: 0, count: 100 })));
            e.add_kernel(Box::new(Reactivize(Sink { inp: q, expect_next: 0, count: 100 })));
            e.run(10_000).expect("transient stall must not be fatal")
        };
        // The stall parks both ends; its expiry must wake them on the
        // exact cycle the dense stepper sees the port reopen.
        assert_eq!(run(SchedMode::Dense), run(SchedMode::EventDriven));
    }

    #[test]
    fn event_matches_dense_with_permanent_stall() {
        use zskip_fault::{FaultKind, FaultPlan};
        let run = |mode: SchedMode| {
            let plan = FaultPlan::new()
                .inject("fifo:q:pop", 5, FaultKind::FifoStall { cycles: u64::MAX })
                .shared();
            let mut e: Engine<u32> = Engine::<u32>::builder()
                .scheduler(mode)
                .fault_plan(plan)
                .deadlock_window(100)
                .build()
                .unwrap();
            let q = e.add_fifo(Fifo::new("q", 4));
            e.add_kernel(Box::new(Reactivize(Source { out: q, next: 0, count: 100 })));
            e.add_kernel(Box::new(Reactivize(Sink { inp: q, expect_next: 0, count: 100 })));
            e.run(100_000)
        };
        let (a, b) = (run(SchedMode::Dense), run(SchedMode::EventDriven));
        assert!(matches!(a, Err(SimError::Deadlock { .. })));
        assert_eq!(a, b, "wedged-FIFO attribution must survive parking");
        assert_eq!(a.unwrap_err().wedged().expect("names a fifo").name, "q");
    }

    #[test]
    fn event_ticks_barrier_style_spinners() {
        // A kernel that idles without touching any FIFO (empty watch set)
        // can never be woken by an occupancy edge, so the event scheduler
        // must keep ticking it even though it is Reactive-labeled.
        struct Spinner {
            countdown: u32,
        }
        impl Kernel<u32> for Spinner {
            fn name(&self) -> &str {
                "spinner"
            }
            fn tick(&mut self, _ctx: &mut Ctx<'_, u32>) -> Progress {
                if self.countdown == 0 {
                    return Progress::Done;
                }
                self.countdown -= 1;
                Progress::Busy
            }
            fn horizon(&self) -> Horizon {
                Horizon::Reactive
            }
        }
        let run = |mode: SchedMode| {
            let mut e: Engine<u32> = Engine::new();
            e.set_scheduler(mode);
            e.add_kernel(Box::new(Spinner { countdown: 100 }));
            e.run(10_000).unwrap()
        };
        assert_eq!(run(SchedMode::Dense), run(SchedMode::EventDriven));
    }
}

#[cfg(test)]
mod report_tests {
    use super::*;

    #[test]
    fn utilization_table_renders_shares() {
        let report = RunReport {
            cycles: 100,
            kernels: vec![
                ("alpha".into(), KernelStats { busy: 75, blocked: 20, idle: 5, done: 0 }),
                ("b".into(), KernelStats { busy: 0, blocked: 0, idle: 0, done: 100 }),
            ],
            counters: Counters::new(),
            sched: SchedStats::default(),
        };
        let t = report.render_utilization();
        assert!(t.contains("alpha"), "{t}");
        assert!(t.contains("75.0%"), "{t}");
        assert!(t.contains("20.0%"), "{t}");
        // The all-done kernel renders without dividing by zero.
        assert!(t.lines().count() == 3, "{t}");
    }
}
