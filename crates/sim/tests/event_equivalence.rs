//! Property test: the event-driven scheduler is bit-identical to the
//! dense oracle.
//!
//! Random pipeline topologies (source → stages → sink with random FIFO
//! capacities), random kernel horizons (Reactive stages, Sleep-horizon
//! throttled sources, Opaque decimating sinks), random cycle limits and
//! random one-shot fault plans (transient and permanent port stalls —
//! including stalls whose expiry must wake parked kernels) are run through
//! both schedulers built from the same spec. Everything observable must
//! match: the `Result<RunReport, SimError>` (cycle counts, per-kernel
//! stats, counters, deadlock cycle + per-FIFO attribution, cycle-limit
//! culprits) and the rendered trace window.

use proptest::prelude::*;
use zskip_fault::{FaultKind, FaultPlan};
use zskip_sim::{Ctx, Engine, Fifo, FifoId, Horizon, Kernel, Progress, RunReport, SchedMode, SimError};

/// Emits `count` values back-to-back. Reactive: a refused push is a pure
/// probe of the output FIFO.
struct Source {
    out: FifoId,
    next: u32,
    count: u32,
}

impl Kernel<u32> for Source {
    fn name(&self) -> &str {
        "source"
    }
    fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
        if self.next == self.count {
            return Progress::Done;
        }
        match ctx.fifos.try_push(self.out, self.next) {
            Ok(()) => {
                self.next += 1;
                ctx.counters.add("emitted", 1);
                Progress::Busy
            }
            Err(_) => Progress::Blocked,
        }
    }
    fn horizon(&self) -> Horizon {
        Horizon::Reactive
    }
}

/// Emits one value every `period` cycles, advertising the next emission
/// cycle through a Sleep horizon so the scheduler can park it on a timer.
struct SleepySource {
    out: FifoId,
    period: u64,
    next_emit: u64,
    emitted: u32,
    count: u32,
}

impl Kernel<u32> for SleepySource {
    fn name(&self) -> &str {
        "source"
    }
    fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
        if self.emitted == self.count {
            return Progress::Done;
        }
        if ctx.cycle < self.next_emit {
            return Progress::Idle;
        }
        match ctx.fifos.try_push(self.out, self.emitted) {
            Ok(()) => {
                self.emitted += 1;
                self.next_emit = ctx.cycle + self.period;
                ctx.counters.add("emitted", 1);
                Progress::Busy
            }
            Err(_) => Progress::Blocked,
        }
    }
    fn horizon(&self) -> Horizon {
        Horizon::Sleep(self.next_emit)
    }
}

/// Pass-through stage with a one-element hold register. Reactive.
struct Stage {
    name: String,
    inp: FifoId,
    out: FifoId,
    held: Option<u32>,
    forwarded: u32,
    count: u32,
}

impl Kernel<u32> for Stage {
    fn name(&self) -> &str {
        &self.name
    }
    fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
        if self.forwarded == self.count && self.held.is_none() {
            return Progress::Done;
        }
        let mut progress = Progress::Idle;
        if let Some(v) = self.held {
            match ctx.fifos.try_push(self.out, v) {
                Ok(()) => {
                    self.held = None;
                    self.forwarded += 1;
                    progress = Progress::Busy;
                }
                Err(_) => return Progress::Blocked,
            }
        }
        if self.held.is_none() && self.forwarded < self.count {
            if let Some(v) = ctx.fifos.try_pop(self.inp) {
                self.held = Some(v);
                progress = Progress::Busy;
            }
        }
        if progress == Progress::Idle && self.held.is_none() {
            Progress::Blocked
        } else {
            progress
        }
    }
    fn horizon(&self) -> Horizon {
        Horizon::Reactive
    }
}

/// Consumes `count` values in order. Reactive.
struct Sink {
    inp: FifoId,
    expect_next: u32,
    count: u32,
}

impl Kernel<u32> for Sink {
    fn name(&self) -> &str {
        "sink"
    }
    fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
        if self.expect_next == self.count {
            return Progress::Done;
        }
        match ctx.fifos.try_pop(self.inp) {
            Some(v) => {
                assert_eq!(v, self.expect_next, "values must arrive in order");
                self.expect_next += 1;
                Progress::Busy
            }
            None => Progress::Blocked,
        }
    }
    fn horizon(&self) -> Horizon {
        Horizon::Reactive
    }
}

/// Pops only every `stride`-th cycle, mutating its phase on *every* tick —
/// not reactive, so it keeps the default Opaque horizon and must never be
/// parked. Exercises the mixed Opaque/Reactive schedule.
struct DecimatingSink {
    inp: FifoId,
    stride: u8,
    phase: u8,
    received: u32,
    count: u32,
}

impl Kernel<u32> for DecimatingSink {
    fn name(&self) -> &str {
        "sink"
    }
    fn tick(&mut self, ctx: &mut Ctx<'_, u32>) -> Progress {
        if self.received == self.count {
            return Progress::Done;
        }
        self.phase = (self.phase + 1) % self.stride;
        if self.phase != 0 {
            return Progress::Idle;
        }
        match ctx.fifos.try_pop(self.inp) {
            Some(_) => {
                self.received += 1;
                Progress::Busy
            }
            None => Progress::Blocked,
        }
    }
}

/// Everything needed to build the same design twice.
#[derive(Debug, Clone)]
struct PipeSpec {
    /// FIFO capacity per hop; `len() - 1` pass-through stages.
    capacities: Vec<usize>,
    count: u32,
    /// `Some(period)` replaces the eager source with a Sleep-horizon one.
    sleepy: Option<u64>,
    /// `Some(stride)` replaces the reactive sink with an Opaque decimator.
    decimate: Option<u8>,
    /// `(hop, push_port, at, stall_cycles)`; `u64::MAX` stall wedges the
    /// port permanently.
    fault: Option<(usize, bool, u64, u64)>,
    max_cycles: u64,
    trace: usize,
    /// Park hysteresis — a pure scheduling-cost knob, so every value must
    /// yield the same results (1 = maximum parking/thrash).
    hysteresis: u32,
}

fn build(spec: &PipeSpec, mode: SchedMode) -> Engine<u32> {
    let mut e: Engine<u32> = Engine::new();
    e.set_scheduler(mode);
    e.set_park_hysteresis(spec.hysteresis);
    e.set_deadlock_window(64);
    if spec.trace > 0 {
        e.enable_trace(spec.trace);
    }
    if let Some((hop, push, at, cycles)) = spec.fault {
        let port = if push { "push" } else { "pop" };
        let plan = FaultPlan::new()
            .inject(format!("fifo:q{hop}:{port}"), at, FaultKind::FifoStall { cycles })
            .shared();
        e.set_fault_plan(plan);
    }
    let fifos: Vec<FifoId> =
        spec.capacities.iter().enumerate().map(|(i, &c)| e.add_fifo(Fifo::new(format!("q{i}"), c))).collect();
    match spec.sleepy {
        Some(period) => e.add_kernel(Box::new(SleepySource {
            out: fifos[0],
            period,
            next_emit: 0,
            emitted: 0,
            count: spec.count,
        })),
        None => e.add_kernel(Box::new(Source { out: fifos[0], next: 0, count: spec.count })),
    }
    for (i, pair) in fifos.windows(2).enumerate() {
        e.add_kernel(Box::new(Stage {
            name: format!("stage{i}"),
            inp: pair[0],
            out: pair[1],
            held: None,
            forwarded: 0,
            count: spec.count,
        }));
    }
    let last = *fifos.last().expect("at least one hop");
    match spec.decimate {
        Some(stride) => e.add_kernel(Box::new(DecimatingSink {
            inp: last,
            stride,
            phase: 0,
            received: 0,
            count: spec.count,
        })),
        None => e.add_kernel(Box::new(Sink { inp: last, expect_next: 0, count: spec.count })),
    }
    e
}

fn run(spec: &PipeSpec, mode: SchedMode) -> (Result<RunReport, SimError>, Option<String>) {
    let mut e = build(spec, mode);
    let result = e.run(spec.max_cycles);
    let rendered = e.trace().map(|t| t.render(72));
    (result, rendered)
}

fn spec_strategy() -> impl Strategy<Value = PipeSpec> {
    let capacities = prop::collection::vec(1usize..5, 1..4);
    // The vendored proptest has no `prop::option`: model "30% Some"
    // with an explicit dice roll.
    let sleepy = (0u32..10, 2u64..9).prop_map(|(roll, v)| (roll < 3).then_some(v));
    let decimate = (0u32..10, 2u8..5).prop_map(|(roll, v)| (roll < 3).then_some(v));
    let fault = (0u32..10, 0usize..3, prop::bool::ANY, 1u64..120, prop_oneof![1u64..80, Just(u64::MAX)])
        .prop_map(|(roll, hop, push, at, cycles)| (roll < 5).then_some((hop, push, at, cycles)));
    (
        (capacities, 1u32..60),
        (sleepy, decimate, fault),
        prop_oneof![60u64..200, Just(100_000)],
        0usize..96,
        1u32..7,
    )
        .prop_map(|((capacities, count), (sleepy, decimate, fault), max_cycles, trace, hysteresis)| {
            let fault = fault.map(|(hop, push, at, cycles)| (hop % capacities.len(), push, at, cycles));
            PipeSpec { capacities, count, sleepy, decimate, fault, max_cycles, trace, hysteresis }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn event_scheduler_is_bit_identical_to_dense(spec in spec_strategy()) {
        let (dense, dense_trace) = run(&spec, SchedMode::Dense);
        let (event, event_trace) = run(&spec, SchedMode::EventDriven);
        // Reports, errors (deadlock cycle + FIFO attribution, cycle-limit
        // culprits) and trace windows must all be indistinguishable.
        prop_assert_eq!(&dense, &event, "spec: {:?}", &spec);
        prop_assert_eq!(&dense_trace, &event_trace, "trace diverged for spec: {:?}", &spec);
        if let Ok(report) = &dense {
            prop_assert_eq!(report.sched.parks, 0, "dense run must not park");
        }
    }
}
