//! Minimal, dependency-free stand-in for the subset of the `proptest` crate
//! that zskip's test suites use. The build environment has no network access
//! to crates.io, so the workspace vendors this stub instead of the real crate.
//!
//! Supported surface:
//! - `proptest! { #![proptest_config(...)] #[test] fn name(arg in strategy, ...) { .. } }`
//! - `Strategy` for integer/float `Range`/`RangeInclusive`, `Just`, tuples
//!   (arity 2-6), `prop_map`, `prop_filter`, `prop_oneof!`, `bool::ANY`,
//!   `collection::vec` (exact or ranged length), `array::uniform4/uniform16`
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`
//! - `ProptestConfig { cases, .. }` and `ProptestConfig::with_cases`
//!
//! Differences from upstream: no shrinking, no persisted regression files,
//! deterministic per-test seeding (derived from the test function name), and
//! rejected cases (filters/assumes) simply resample.

pub mod test_runner {
    /// Deterministic test RNG (SplitMix64). Seeded from the test name so each
    /// test gets an independent but reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "TestRng::below(0)");
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Why a generated case did not count toward the case budget.
    #[derive(Debug)]
    pub enum TestCaseError {
        Reject(String),
    }

    /// Subset of upstream's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_global_rejects: 65_536 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..ProptestConfig::default() }
        }
    }

    /// Plain call helper so the `proptest!` expansion avoids an immediately
    /// invoked closure (which clippy rejects under `-D warnings`).
    pub fn run_case<R>(f: impl FnOnce() -> R) -> R {
        f()
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values. Unlike upstream there is no value
    /// tree / shrinking: `sample` directly produces one value.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence: whence.into(), f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: std::rc::Rc::new(self) }
        }
    }

    /// Object-safe strategy handle used by `prop_oneof!`.
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn SampleObj<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { inner: self.inner.clone() }
        }
    }

    trait SampleObj {
        type Value;
        fn sample_obj(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> SampleObj for S {
        type Value = S::Value;
        fn sample_obj(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample_obj(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 10000 consecutive candidates: {}", self.whence);
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        choices: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { choices }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.choices.len() as u64) as usize;
            self.choices[idx].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for `vec`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct ArrayStrategy<S, const N: usize> {
        element: S,
    }

    pub fn uniform4<S: Strategy>(element: S) -> ArrayStrategy<S, 4> {
        ArrayStrategy { element }
    }

    pub fn uniform16<S: Strategy>(element: S) -> ArrayStrategy<S, 16> {
        ArrayStrategy { element }
    }

    impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.sample(rng))
        }
    }
}

/// `prop::...` alias namespace, as exposed by upstream's prelude.
pub mod prop {
    pub use crate::{array, bool, collection, strategy};
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    $crate::test_runner::run_case(|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    });
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest {}: too many rejected cases ({})",
                                stringify!($name),
                                rejected
                            );
                        }
                    }
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { ::std::assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { ::std::assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { ::std::assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { ::std::assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { ::std::assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { ::std::assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(u16),
        Pop,
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(
            a in 1usize..5,
            b in -7i64..=7,
            f in 0.25f64..0.75,
        ) {
            prop_assert!((1..5).contains(&a));
            prop_assert!((-7..=7).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((1usize..=3, prop::bool::ANY), 1..=4),
            arr in crate::array::uniform4(-5i32..=5),
            op in prop_oneof![
                (0u16..100).prop_map(Op::Push),
                Just(Op::Pop),
            ],
            big in (2usize..10).prop_filter("even only", |n| n % 2 == 0),
        ) {
            prop_assert!(!v.is_empty() && v.len() <= 4);
            for (n, _flag) in &v {
                prop_assert!((1..=3).contains(n));
            }
            prop_assert!(arr.iter().all(|x| (-5..=5).contains(x)));
            match op {
                Op::Push(x) => prop_assert!(x < 100),
                Op::Pop => {}
            }
            prop_assert_eq!(big % 2, 0);
            prop_assert_ne!(big, 1);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 3 == 0);
            prop_assert_eq!(x % 3, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let sample_all = || {
            let mut rng = crate::test_runner::TestRng::deterministic("det");
            (0..16).map(|_| (0u64..1_000_000).sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(sample_all(), sample_all());
    }
}
