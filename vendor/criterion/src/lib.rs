//! Minimal, dependency-free stand-in for the subset of `criterion` that the
//! zskip bench harnesses use. The build environment has no network access to
//! crates.io, so the workspace vendors this stub instead of the real crate.
//!
//! It measures wall-clock time with `std::time::Instant` and prints
//! `name  time: <mean> per iter  [thrpt: ...]` lines. No statistical
//! analysis, HTML reports, or CLI argument parsing.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            throughput: None,
            sample_size: 10,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&id.into(), self.sample_size, None, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(&id, self.sample_size, self.throughput, &mut f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(id: &str, sample_size: usize, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration pass: one iteration to size the real run.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    // Aim for ~50ms of total measurement, clamped to keep fast benches honest
    // and slow benches bounded.
    let target = Duration::from_millis(50);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let samples = sample_size.clamp(1, 20);
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        let per = b.elapsed / iters as u32;
        if per < best {
            best = per;
        }
    }

    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / best.as_secs_f64();
            format!("  thrpt: {per_sec:.1} elem/s")
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / best.as_secs_f64();
            format!("  thrpt: {:.1} MiB/s", per_sec / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("  {id}  time: {best:?}/iter{thrpt}");
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(4));
        group.sample_size(2);
        group.bench_function("sum", |b| {
            b.iter(|| (0..4u64).map(black_box).sum::<u64>())
        });
        group.finish();
    }
}
