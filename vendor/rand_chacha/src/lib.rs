//! Minimal, dependency-free stand-in for `rand_chacha::ChaCha8Rng`.
//!
//! Implements a genuine ChaCha block function with 8 rounds, keyed from
//! `seed_from_u64` via SplitMix64 expansion. Deterministic across platforms
//! and runs; NOT byte-compatible with upstream `rand_chacha` (zskip only
//! relies on determinism + statistical quality, never on the exact stream).

use rand::{RngCore, SeedableRng, SplitMix64};

const CHACHA_ROUNDS: usize = 8;

#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 4x4 matrix of u32 state words: constants, key, counter, nonce.
    state: [u32; 16],
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means exhausted.
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (b, (w, s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *b = w.wrapping_add(*s);
        }
        // 64-bit block counter lives in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut expander = SplitMix64::new(seed);
        let mut state = [0u32; 16];
        // "expand 32-byte k" sigma constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for w in state.iter_mut().take(12).skip(4) {
            *w = expander.next_u64() as u32;
        }
        // Counter zero, fixed nonce.
        state[12] = 0;
        state[13] = 0;
        state[14] = expander.next_u64() as u32;
        state[15] = expander.next_u64() as u32;
        ChaCha8Rng { state, block: [0; 16], cursor: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn roughly_uniform_unit_floats() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
