//! Minimal, dependency-free stand-in for the subset of the `rand` crate API
//! that zskip uses. The build environment has no network access to crates.io,
//! so the workspace vendors this stub instead of the real crate.
//!
//! The generators here are deterministic and high-quality enough for test
//! vectors and synthetic model weights, but the value streams are NOT
//! byte-compatible with upstream `rand`. All zskip consumers are
//! threshold/statistics based (densities, fidelity metrics), not
//! golden-stream based, so this is safe.

use std::ops::Range;

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled "standardly" by `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits, matching upstream's density.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: the canonical seed-expansion generator. Used internally by
/// the chacha stub for key setup and usable directly.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

pub mod rngs {
    pub use super::SplitMix64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = SplitMix64::seed_from_u64(42);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(3usize..=3);
            assert_eq!(u, 3);
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::seed_from_u64(9);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::seed_from_u64(9);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
