#!/usr/bin/env bash
# Repo verification gate: release build, full test suite, lint-clean.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings
echo "verify: OK"
