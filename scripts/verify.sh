#!/usr/bin/env bash
# Repo verification gate: release build, full test suite, lint-clean.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings

# Fault-matrix campaign: every single injected fault must degrade
# gracefully (no panic, no hang — hence the hard timeout). Small config
# keeps this a few seconds even on one core.
timeout 120 ./target/release/zskip faults --hw 8 --json > /dev/null

# Scheduler regression guard: a reduced hosted workload under both
# steppers. Fails on divergence from the dense oracle, on the event
# scheduler not engaging (no parks / no idle jumps), or on it timing
# slower than dense — the win is structural on this workload, so the
# wall-clock comparison holds even on a noisy box.
timeout 300 ./target/release/sim_bench --check
echo "verify: OK"
