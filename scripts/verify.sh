#!/usr/bin/env bash
# Repo verification gate: release build, full test suite, lint-clean.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings

# Fault-matrix campaign: every single injected fault must degrade
# gracefully (no panic, no hang — hence the hard timeout). Small config
# keeps this a few seconds even on one core.
timeout 120 ./target/release/zskip faults --hw 8 --json > /dev/null
echo "verify: OK"
