#!/usr/bin/env bash
# Repo verification gate: release build, full test suite, lint-clean.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings

# API docs must build warning-free (broken intra-doc links and malformed
# doc comments fail here, not on docs.rs).
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# Fault-matrix campaign: every single injected fault must degrade
# gracefully (no panic, no hang — hence the hard timeout). Small config
# keeps this a few seconds even on one core.
timeout 120 ./target/release/zskip faults --hw 8 --json > /dev/null

# Scheduler regression guard: a reduced hosted workload under both
# steppers. Fails on divergence from the dense oracle, on the event
# scheduler not engaging (no parks / no idle jumps), or on it timing
# slower than dense — the win is structural on this workload, so the
# wall-clock comparison holds even on a noisy box.
timeout 300 ./target/release/sim_bench --check

# Kernel dispatch matrix: the SIMD bit-exactness property tests must pass
# both at the host's native tier and pinned to the scalar oracle tier
# (the tests themselves iterate every reachable tier; pinning the env
# override exercises the ZSKIP_KERNEL fallback path end to end).
cargo test -q -p zskip-nn --test kernel_tiers
ZSKIP_KERNEL=scalar cargo test -q -p zskip-nn --test kernel_tiers

# Kernel-tier performance gate: every SIMD tier must beat scalar on the
# VGG-shaped reference layers, and the scratch arena's steady-state
# forward pass must perform zero heap allocations.
timeout 300 ./target/release/kernel_bench --check > /dev/null

# Serving-daemon smoke: a request burst plus shutdown through the wire
# protocol must drain cleanly (exit 0, every request answered ok), and a
# protocol-breaking line must make the daemon exit non-zero.
serve_out=$(timeout 120 ./target/release/zskip serve --hw 32 --backend cpu <<'EOF'
{"op":"infer","id":"v1","seed":3}
{"op":"infer","id":"v2","seed":4}
{"op":"infer","id":"v3","seed":5}
{"op":"stats"}
{"op":"shutdown"}
EOF
)
[ "$(printf '%s\n' "$serve_out" | grep -c '"ok":true')" -ge 5 ] \
  || { echo "verify: serve smoke missing ok responses"; exit 1; }
printf '%s\n' "$serve_out" | grep -q '"op":"shutdown","draining":true' \
  || { echo "verify: serve smoke missing shutdown ack"; exit 1; }
if printf 'this is not json\n' | timeout 120 ./target/release/zskip serve --hw 32 --backend cpu > /dev/null; then
  echo "verify: serve must exit non-zero on a protocol error"; exit 1
fi

# Multi-instance sharding smoke: a 4-instance layer-pipelined batch must
# run end to end, stay bit-exact vs the golden model (infer asserts it),
# and report the placement it resolved.
shard_out=$(timeout 300 ./target/release/zskip batch --hw 32 --n 4 --instances 4 --placement pipeline)
printf '%s\n' "$shard_out" | grep -q 'pipeline placement' \
  || { echo "verify: sharded batch did not report pipeline placement"; exit 1; }
timeout 300 ./target/release/zskip infer --hw 32 --instances 4 --placement pipeline > /dev/null

# Throughput gates: the daemon's queue + adaptive batcher must deliver
# >= 0.9x the raw batch engine on the same offered burst, and the
# placement scheduler must hit its simulated-time floors (image-parallel
# >= 2.5x at 4 instances; pipeline beats image on single-image latency).
timeout 300 ./target/release/batch_bench --check

# Graph-network smoke: the in-repo ResNet-18 spec must load, plan and run
# end to end on the cpu backend (infer asserts bit-exactness vs the
# golden DAG oracle internally), and `analyze` must walk the same DAG.
timeout 300 ./target/release/zskip infer --network specs/resnet18.json --hw 32 --backend cpu > /dev/null
analyze_out=$(timeout 300 ./target/release/zskip analyze --network specs/resnet18.json)
printf '%s\n' "$analyze_out" | grep -q 'branch point' \
  || { echo "verify: analyze --network did not report the residual branch points"; exit 1; }

# Malformed specs must fail closed with the stable machine-readable code
# and exit 2 (scripted callers branch on both).
bad_spec=$(mktemp -t zskip-badspec-XXXXXX.json)
printf '{"name": 1}\n' > "$bad_spec"
set +e
bad_out=$(timeout 120 ./target/release/zskip infer --network "$bad_spec" 2>&1)
bad_rc=$?
set -e
rm -f "$bad_spec"
[ "$bad_rc" -eq 2 ] || { echo "verify: malformed spec must exit 2 (got $bad_rc)"; exit 1; }
printf '%s\n' "$bad_out" | grep -q 'error\[spec.invalid\]' \
  || { echo "verify: malformed spec missing the spec.invalid error code"; exit 1; }

# Autotuner smoke: a tiny-budget deterministic tune must emit a loadable
# artifact, and loading it back through --config must run end to end
# (infer asserts bit-exactness vs the golden model internally).
tune_out=$(mktemp -t zskip-tuned-XXXXXX.json)
timeout 300 ./target/release/zskip tune --objective cycles --space hls --budget 8 --out "$tune_out" > /dev/null
timeout 300 ./target/release/zskip infer --hw 32 --config "$tune_out" > /dev/null
rm -f "$tune_out"

# Autotuner gates: every objective's tuned config must score no worse
# than the default, the cycles search must match/beat the best
# hand-picked HLS variant, at least one software objective must improve
# >= 10%, and the same-seed rerun must be byte-identical.
timeout 300 ./target/release/tune_bench --check
echo "verify: OK"
