#!/usr/bin/env sh
# Regenerates every table and figure of the paper plus the ablations.
# Artifacts land in experiments/ as text and JSON.
set -e
cargo build --release -p zskip-bench --bins
for bin in fig6_area fig7_efficiency fig8_gops table1_power ablations; do
    echo "== $bin =="
    ./target/release/$bin
    echo
done
echo "artifacts written to experiments/"
