//! Pruning/zero-skipping exploration: sweep weight density and report
//! effective throughput and classification fidelity.
//!
//! Reproduces the paper's §V observation that pruning bought ~1.3x average
//! and ~2.2x peak effective throughput, and its caveat that "peak
//! throughput requires uniformly sparse filters applied concurrently for
//! even workload balancing" — compare the lockstep column against the
//! filter-grouping column (the paper's future work).
//!
//! ```sh
//! cargo run --release --example pruning_sweep
//! ```

use zskip::accel::{AccelConfig, BackendKind, Driver};
use zskip::hls::Variant;
use zskip::nn::eval::{compare, synthetic_inputs};
use zskip::nn::layer::{conv3x3, maxpool2x2, LayerSpec, NetworkSpec};
use zskip::nn::model::{Network, SyntheticModelConfig};
use zskip::quant::DensityProfile;
use zskip::tensor::Shape;

fn spec() -> NetworkSpec {
    NetworkSpec {
        name: "sweep-net".into(),
        input: Shape::new(3, 32, 32),
        layers: vec![
            conv3x3("conv1", 3, 32),
            conv3x3("conv2", 32, 32),
            maxpool2x2("pool1"),
            conv3x3("conv3", 32, 64),
            maxpool2x2("pool2"),
            LayerSpec::Fc { name: "fc".into(), in_features: 64 * 8 * 8, out_features: 10, relu: false },
        ],
    }
}

fn main() {
    let config = AccelConfig::for_variant(Variant::U256Opt);
    let inputs = synthetic_inputs(5, 10, spec().input);

    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>10}",
        "density", "cycles", "cycles(grp)", "mean GOPS", "top-1 agr"
    );
    let mut dense_cycles = None;
    for density in [1.0, 0.7, 0.5, 0.35, 0.25, 0.15, 0.08] {
        let net = Network::synthetic(
            spec(),
            &SyntheticModelConfig { seed: 21, density: DensityProfile::uniform(3, density) },
        );
        let calib = synthetic_inputs(6, 4, spec().input);
        let qnet = net.quantize(&calib);

        let driver = Driver::builder(config).backend(BackendKind::Model).build().unwrap();
        let report = driver.run_network(&qnet, &inputs[0]).expect("fits");
        let mut grouped = driver.clone();
        grouped.filter_grouping = true;
        let greport = grouped.run_network(&qnet, &inputs[0]).expect("fits");

        let fidelity = compare(&net, &qnet, &inputs);
        let conv_cycles: u64 = report.conv_layers().map(|l| l.stats.total_cycles).sum();
        let gconv_cycles: u64 = greport.conv_layers().map(|l| l.stats.total_cycles).sum();
        dense_cycles.get_or_insert(conv_cycles);
        println!(
            "{:>8.2} {:>14} {:>14} {:>12.1} {:>9.0}%",
            density,
            conv_cycles,
            gconv_cycles,
            report.mean_gops(&config),
            fidelity.top1_agreement * 100.0
        );
    }
    let dense = dense_cycles.expect("at least one row");
    println!("\nzero-skip upper bound: 4x fewer cycles (the 4-cycle IFM quad-load floor");
    println!("limits savings to (16-4)/16 = 75%); dense run took {dense} cycles.");
}
