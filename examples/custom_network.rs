//! The padding/pooling unit is instruction-programmable: "with just a few
//! instructions, the padding/max-pooling unit is capable of realizing any
//! padding/max-pooling layer (e.g. a variety of max-pooling region sizes
//! or strides)" (paper §III-C).
//!
//! This example runs a non-VGG network — 3x3/stride-2 overlapping pooling
//! (AlexNet-style) and pad-2 convolutions — end to end on the simulated
//! accelerator, and cross-checks every activation against the software
//! reference.
//!
//! ```sh
//! cargo run --release --example custom_network
//! ```

use zskip::accel::{AccelConfig, BackendKind, Driver};
use zskip::hls::Variant;
use zskip::nn::eval::synthetic_inputs;
use zskip::nn::layer::{LayerSpec, NetworkSpec};
use zskip::nn::model::{Network, SyntheticModelConfig};
use zskip::quant::DensityProfile;
use zskip::tensor::Shape;

fn main() {
    // An AlexNet-flavoured little network: overlapping 3x3/s2 pools.
    // (The conv datapath is stride-1; pad 1 keeps dims, pooling shrinks.)
    let spec = NetworkSpec {
        name: "custom".into(),
        input: Shape::new(3, 31, 31),
        layers: vec![
            LayerSpec::Conv { name: "c1".into(), in_c: 3, out_c: 12, k: 3, stride: 1, pad: 1, relu: true },
            LayerSpec::MaxPool { name: "p1".into(), k: 3, stride: 2 }, // 31 -> 15, overlapping
            LayerSpec::Conv { name: "c2".into(), in_c: 12, out_c: 24, k: 3, stride: 1, pad: 1, relu: true },
            LayerSpec::MaxPool { name: "p2".into(), k: 3, stride: 2 }, // 15 -> 7
            LayerSpec::Conv { name: "c3".into(), in_c: 24, out_c: 24, k: 3, stride: 1, pad: 1, relu: true },
            LayerSpec::MaxPool { name: "p3".into(), k: 2, stride: 2 }, // 7 -> 3
            LayerSpec::Fc { name: "fc".into(), in_features: 24 * 3 * 3, out_features: 7, relu: false },
        ],
    };
    println!("network {}:", spec.name);
    let shapes = spec.shapes().expect("valid");
    for (layer, shape) in spec.layers.iter().zip(&shapes[1..]) {
        println!("  {:<4} -> {}", layer.name(), shape);
    }

    let net = Network::synthetic(
        spec.clone(),
        &SyntheticModelConfig { seed: 4, density: DensityProfile::uniform(3, 0.5) },
    );
    let qnet = net.quantize(&synthetic_inputs(1, 3, spec.input));
    let input = synthetic_inputs(2, 1, spec.input).pop().expect("one");

    // Run on both backends; the cycle-exact one simulates all 21 kernels.
    let config = AccelConfig::for_variant(Variant::U256Opt);
    let model = Driver::builder(config).backend(BackendKind::Model).build().unwrap().run_network(&qnet, &input).expect("fits");
    let cycle = Driver::builder(config).backend(BackendKind::Cycle).build().unwrap().run_network(&qnet, &input).expect("fits");
    let golden = qnet.forward_quant(&input);
    assert_eq!(model.output, golden, "model backend bit-exact");
    assert_eq!(cycle.output, golden, "cycle backend bit-exact");
    println!("\nboth backends bit-exact vs the software reference");
    println!(
        "cycle-exact backend: {} cycles; transaction model: {} cycles ({:+.2}%)",
        cycle.total_cycles,
        model.total_cycles,
        100.0 * (model.total_cycles as f64 - cycle.total_cycles as f64) / cycle.total_cycles as f64
    );
    println!("\nper-layer (cycle-exact):");
    for l in &cycle.layers {
        if l.stats.total_cycles > 0 {
            println!("  {:<4} {:>8} cycles  ({} stripes)", l.name, l.stats.total_cycles, l.stats.stripes);
        }
    }
    let top = zskip::nn::fc::argmax(&cycle.output).expect("non-empty");
    println!("\npredicted class: {top}");
}
