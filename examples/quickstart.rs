//! Quickstart: build a small CNN, quantize it to 8-bit sign+magnitude,
//! run it on the simulated zero-skipping accelerator, and check the result
//! against the software golden model bit-for-bit.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use zskip::hls::Variant;
use zskip::nn::eval::synthetic_inputs;
use zskip::prelude::*;
use zskip::nn::layer::{conv3x3, maxpool2x2, LayerSpec, NetworkSpec};
use zskip::nn::model::{Network, SyntheticModelConfig};
use zskip::quant::DensityProfile;
use zskip::tensor::Shape;

fn main() {
    // 1. Describe a small network (VGG-style blocks).
    let spec = NetworkSpec {
        name: "quickstart".into(),
        input: Shape::new(3, 32, 32),
        layers: vec![
            conv3x3("conv1", 3, 16),
            maxpool2x2("pool1"),
            conv3x3("conv2", 16, 32),
            maxpool2x2("pool2"),
            LayerSpec::Fc { name: "fc".into(), in_features: 32 * 8 * 8, out_features: 10, relu: false },
            LayerSpec::Softmax,
        ],
    };

    // 2. Synthesize float weights (seeded), prune 60%, and quantize with
    //    max-abs calibration — the stand-in for the paper's Caffe flow.
    let net = Network::synthetic(
        spec.clone(),
        &SyntheticModelConfig { seed: 1, density: DensityProfile::uniform(2, 0.4) },
    );
    let calib = synthetic_inputs(2, 4, spec.input);
    let qnet = net.quantize(&calib);
    println!("network: {} ({} MMACs/inference)", spec.name, spec.total_macs() / 1_000_000);
    println!("conv weight densities after pruning+quantization: {:?}", qnet.conv_densities());

    // 3. Run inference on the simulated accelerator (256-opt variant:
    //    4 conv units x 4 filter lanes x 16 values = 256 MACs/cycle)
    //    through a Session — the same surface `zskip infer/batch/serve`
    //    use.
    let config = AccelConfig::for_variant(Variant::U256Opt);
    let session =
        Session::builder(config).backend(BackendKind::Model).build().expect("valid config");
    let input = synthetic_inputs(3, 1, spec.input).pop().expect("one input");
    let report = session.infer(&qnet, &input).expect("network fits the accelerator");

    // 4. The accelerator must agree with the integer golden model exactly.
    let golden = qnet.forward_quant(&input);
    assert_eq!(report.output, golden, "accelerator output is bit-exact vs the software model");
    println!("\naccelerator output matches the software golden model bit-for-bit");

    // 5. Performance summary.
    println!("\nper-layer accelerator cycles (at {:.0} MHz):", config.clock_mhz);
    for layer in &report.layers {
        if layer.stats.total_cycles > 0 {
            println!(
                "  {:<8} {:>9} cycles  {:>7.2} effective GOPS",
                layer.name,
                layer.stats.total_cycles,
                layer.effective_gops(&config)
            );
        } else {
            println!("  {:<8} host (ARM) execution", layer.name);
        }
    }
    println!(
        "\ntotal: {} cycles = {:.2} ms/inference, DDR traffic {} KiB",
        report.total_cycles,
        report.total_cycles as f64 * config.cycle_seconds() * 1e3,
        report.ddr_bytes / 1024
    );

    let top = zskip::nn::fc::argmax(&report.output).expect("non-empty output");
    println!("predicted class: {top}");
}
