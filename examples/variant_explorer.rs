//! Architecture exploration via constraint changes alone — the paper's
//! central HLS methodology claim ("a wide range of architectures with
//! distinct performance/area trade-offs can be produced by software and
//! HLS constraint changes alone", §V).
//!
//! Sweeps the clock-period constraint and instance count through the HLS
//! model and prints fmax, area, utilization and peak GOPS for every
//! synthesizable point, including the larger GT1150 device the paper
//! mentions for further scale-out.
//!
//! ```sh
//! cargo run --release --example variant_explorer
//! ```

use zskip::hls::{synthesize, AccelArch, Device, HlsConstraints};

fn main() {
    println!("== constraint sweep on Arria 10 SX660 (paper's device) ==");
    println!(
        "{:>9} {:>10} {:>6} {:>10} {:>9} {:>8} {:>9} {:>10}",
        "target", "opt", "inst", "fmax(MHz)", "op(MHz)", "kALM", "ALM util", "peak GOPS"
    );
    let device = Device::arria10_sx660();
    for &instances in &[1usize, 2] {
        for &(mhz, optimized) in &[(55.0, false), (100.0, true), (150.0, true), (200.0, true), (250.0, true)] {
            let constraints = HlsConstraints { target_period_ns: 1000.0 / mhz, performance_optimized: optimized };
            let arch = AccelArch::full(instances);
            let r = synthesize(&arch, &constraints, &device);
            let fits = if r.utilization.fits() { "" } else { "  DOES NOT FIT" };
            println!(
                "{:>7.0}MHz {:>10} {:>6} {:>10.1} {:>9.1} {:>8.0} {:>8.0}% {:>10.1}{}",
                mhz,
                if optimized { "opt" } else { "unopt" },
                instances,
                r.achieved_fmax_mhz,
                r.operating_mhz,
                r.total.alms / 1000.0,
                r.utilization.alm * 100.0,
                r.peak_gops(),
                fits
            );
        }
    }

    println!("\n== scale-out on the larger Arria 10 GT1150 (paper's future-work device) ==");
    let gt = Device::arria10_gt1150();
    for instances in 1..=4 {
        let r = synthesize(&AccelArch::full(instances), &HlsConstraints::optimized_150mhz(), &gt);
        println!(
            "  {} instance(s): {:>4.0} MACs/cycle, operating {:>5.1} MHz, ALM {:>3.0}%, peak {:>6.1} GOPS{}",
            instances,
            r.arch.macs_per_cycle(),
            r.operating_mhz,
            r.utilization.alm * 100.0,
            r.peak_gops(),
            if r.utilization.fits() { "" } else { "  (does not fit)" }
        );
    }
    println!("\nNote how congestion derates the operating clock as utilization grows —");
    println!("the effect that capped the paper's 512-opt at 120 MHz on the SX660.");
}
