//! Waveform gallery: cycle-exact activity traces of the 21 streaming
//! kernels under contrasting workloads — the debugging view HLS designers
//! live in, showing exactly where the architecture's documented behaviours
//! come from.
//!
//! * dense conv: staging units busy back-to-back, 9 steps per weight tile;
//! * sparse conv: the 4-cycle quad-load floor shows as staging idle slots;
//! * skewed filters: one staging unit runs long, accumulators convoy at
//!   the barrier;
//! * max-pooling: the pool/pad path lights up while conv units idle.
//!
//! ```sh
//! cargo run --release --example waveforms
//! ```

use zskip::accel::cycle::run_instructions_traced;
use zskip::accel::{AccelConfig, BankSet, ConvInstr, FmLayout, GroupWeights, Instruction, PoolPadInstr, PoolPadOp};
use zskip::hls::AccelArch;
use zskip::nn::conv::QuantConvWeights;
use zskip::quant::{Requantizer, Sm8};
use zskip::tensor::{Shape, Tensor, TiledFeatureMap};

fn config() -> AccelConfig {
    AccelConfig::from_arch(&AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 1024 }, 100.0)
}

/// Builds weights where filter `o` keeps a weight at kernel position `i`
/// iff `keep(o, i)`.
fn weights(keep: impl Fn(usize, usize) -> bool) -> QuantConvWeights {
    QuantConvWeights::new(
        4,
        4,
        3,
        (0..4 * 4 * 9)
            .map(|idx| {
                let o = idx / 36;
                if keep(o, idx % 9) {
                    Sm8::from_i32_saturating((idx % 9) as i32 - 4)
                } else {
                    Sm8::ZERO
                }
            })
            .collect(),
        vec![0; 4],
        Requantizer::from_ratio(1.0 / 16.0),
        true,
    )
}

fn show_conv(title: &str, qw: &QuantConvWeights) {
    let cfg = config();
    let input = Tensor::from_fn(4, 8, 8, |c, y, x| Sm8::from_i32_saturating(((c + y + x) % 9) as i32 - 4)).padded(1);
    let tiled = TiledFeatureMap::from_tensor(&input);
    let in_layout = FmLayout::full(0, input.shape());
    let out_layout = FmLayout::full(in_layout.end(), Shape::new(4, 8, 8));
    let mut banks = BankSet::new(&cfg);
    in_layout.store(&mut banks, &tiled, 0..tiled.tiles_y());
    let gw = GroupWeights::from_filters(qw, 0, 4);
    let instr = Instruction::Conv(ConvInstr {
        ofm_first: 0,
        ifm_count: 4,
        ifm_base: 0,
        ifm_tiles_x: in_layout.tiles_x as u16,
        ifm_tile_rows: in_layout.tile_rows as u16,
        ifm_row_offset: 0,
        ofm_base: out_layout.base as u32,
        ofm_tiles_x: out_layout.tiles_x as u16,
        ofm_tile_rows: out_layout.tile_rows as u16,
        wgt_base: 0,
        bias: [0; 4],
        requant_mult: qw.requant.mult as u16,
        requant_shift: qw.requant.shift as u8,
        relu: true,
        active_lanes: 4,
    });
    let (outcome, trace) = run_instructions_traced(&cfg, banks, gw.to_bytes(), &[instr], 1_000_000, 120).expect("runs");
    println!("== {title} ({} cycles) ==", outcome.cycles);
    print!("{}", trace.render(90));
}

fn show_pool() {
    let cfg = config();
    let input = Tensor::from_fn(4, 8, 8, |c, y, x| Sm8::from_i32_saturating(((c * 3 + y + x) % 120) as i32 - 60));
    let tiled = TiledFeatureMap::from_tensor(&input);
    let in_layout = FmLayout::full(0, input.shape());
    let out_layout = FmLayout::full(in_layout.end(), Shape::new(4, 4, 4));
    let mut banks = BankSet::new(&cfg);
    in_layout.store(&mut banks, &tiled, 0..2);
    let instr = Instruction::PoolPad(PoolPadInstr {
        channels: 4,
        in_base: 0,
        in_tiles_x: 2,
        in_tile_rows: 2,
        in_row_start: 0,
        out_base: out_layout.base as u32,
        out_tiles_x: 1,
        out_tile_rows: 1,
        out_row_start: 0,
        op: PoolPadOp::MaxPool { k: 2, stride: 2 },
    });
    let (outcome, trace) = run_instructions_traced(&cfg, banks, Vec::new(), &[instr], 1_000_000, 120).expect("runs");
    println!("== 2x2/s2 max-pool ({} cycles): pool/pad path active, conv idle ==", outcome.cycles);
    print!("{}", trace.render(90));
}

fn main() {
    println!("legend: '#' busy, 'x' blocked on FIFO, '.' idle, ' ' done\n");
    show_conv("dense 3x3 conv: 9 lockstep steps per weight tile", &weights(|_, _| true));
    show_conv("sparse conv (1 nnz/filter): the 4-cycle quad-load floor", &weights(|_, i| i == 4));
    show_conv(
        "skewed filters (filter 0 dense, rest sparse): lockstep bubbles",
        &weights(|o, i| o == 0 || i == 4),
    );
    show_pool();
}
