//! Ternary-weight networks on the zero-skipping accelerator — the paper's
//! future work (§VII: "other neural network styles, including binarized,
//! ternary and recurrent networks"), running on the *unmodified* datapath.
//!
//! Ternary weights are `{-w, 0, +w}` per layer. The `0` weights vanish
//! into the zero-skipping path; the `±1` magnitudes are exact in
//! sign+magnitude. Only the offline packing step changes, exactly as the
//! paper envisioned for the HLS-generated architecture.
//!
//! ```sh
//! cargo run --release --example ternary_network
//! ```

use zskip::accel::{AccelConfig, BackendKind, Driver};
use zskip::hls::Variant;
use zskip::nn::eval::{compare, synthetic_inputs};
use zskip::nn::layer::{conv3x3, maxpool2x2, LayerSpec, NetworkSpec};
use zskip::nn::model::{Network, SyntheticModelConfig};
use zskip::tensor::Shape;

fn main() {
    let spec = NetworkSpec {
        name: "ternary-net".into(),
        input: Shape::new(3, 32, 32),
        layers: vec![
            conv3x3("conv1", 3, 16),
            conv3x3("conv2", 16, 16),
            maxpool2x2("pool1"),
            conv3x3("conv3", 16, 32),
            maxpool2x2("pool2"),
            LayerSpec::Fc { name: "fc".into(), in_features: 32 * 8 * 8, out_features: 10, relu: false },
        ],
    };
    let net = Network::synthetic(spec.clone(), &SyntheticModelConfig::default());
    let calib = synthetic_inputs(11, 4, spec.input);
    let q8 = net.quantize(&calib);
    let qt = net.quantize_ternary(&calib);

    println!("conv weight density:  8-bit {:?}", round3(&q8.conv_densities()));
    println!("                    ternary {:?}", round3(&qt.conv_densities()));

    let config = AccelConfig::for_variant(Variant::U256Opt);
    let driver = Driver::builder(config).backend(BackendKind::Model).build().unwrap();
    let input = synthetic_inputs(12, 1, spec.input).pop().expect("one");

    let r8 = driver.run_network(&q8, &input).expect("fits");
    let rt = driver.run_network(&qt, &input).expect("fits");
    assert_eq!(r8.output, q8.forward_quant(&input), "8-bit bit-exact");
    assert_eq!(rt.output, qt.forward_quant(&input), "ternary bit-exact");

    let c8: u64 = r8.conv_layers().map(|l| l.stats.total_cycles).sum();
    let ct: u64 = rt.conv_layers().map(|l| l.stats.total_cycles).sum();
    println!("\nconv cycles: 8-bit {c8}, ternary {ct} ({:.2}x faster, no hardware change)", c8 as f64 / ct as f64);

    let inputs = synthetic_inputs(13, 10, spec.input);
    println!("fidelity  8-bit: {}", compare(&net, &q8, &inputs));
    println!("fidelity ternary: {}", compare(&net, &qt, &inputs));
    println!("\n(ternary trades accuracy for the sparsity the zero-skipping path turns into cycles)");
}

fn round3(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}
