//! Batch inference on the parallel execution engine.
//!
//! Runs a batch of scaled VGG-16 inferences across a work-stealing
//! worker pool, then re-runs the same inputs sequentially to demonstrate
//! that the batch path is bit-identical and to measure the wall-clock
//! speedup from parallelism.
//!
//! ```sh
//! cargo run --release --example batch_inference
//! ```

use std::time::Instant;

use zskip::accel::{run_batch, AccelConfig, BackendKind, Driver};
use zskip::hls::Variant;
use zskip::nn::eval::synthetic_inputs;
use zskip::nn::model::{Network, SyntheticModelConfig};
use zskip::nn::vgg16::vgg16_scaled_spec;
use zskip::quant::DensityProfile;

fn main() {
    let spec = vgg16_scaled_spec(32);
    let net = Network::synthetic(
        spec.clone(),
        &SyntheticModelConfig { seed: 42, density: DensityProfile::deep_compression_vgg16() },
    );
    let calib = synthetic_inputs(7, 2, spec.input);
    let qnet = net.quantize(&calib);

    let batch = 16;
    let inputs = synthetic_inputs(11, batch, spec.input);
    let driver = Driver::builder(AccelConfig::for_variant(Variant::U256Opt)).backend(BackendKind::Model).build().unwrap();

    println!("== batch of {batch} x {} on the worker pool ==", spec.name);
    let t0 = Instant::now();
    let parallel = run_batch(&driver, &qnet, &inputs, 0).expect("fits");
    let t_par = t0.elapsed().as_secs_f64();
    println!(
        "parallel:   {:.2} s on {} workers ({:.2} images/s, {} steals, jobs/worker {:?})",
        t_par,
        parallel.workers,
        batch as f64 / t_par,
        parallel.steals,
        parallel.per_worker_jobs
    );

    let t0 = Instant::now();
    let sequential: Vec<_> =
        inputs.iter().map(|input| driver.run_network(&qnet, input).expect("fits")).collect();
    let t_seq = t0.elapsed().as_secs_f64();
    println!("sequential: {:.2} s ({:.2} images/s)", t_seq, batch as f64 / t_seq);
    println!("speedup: {:.2}x", t_seq / t_par);

    for (par, seq) in parallel.reports.iter().zip(&sequential) {
        assert_eq!(par.output, seq.output, "batch output must be bit-identical to sequential");
        assert_eq!(par.total_cycles, seq.total_cycles);
    }
    println!("all {batch} results bit-identical to the sequential runs");
}
