//! End-to-end VGG-16 inference on the simulated accelerator — the paper's
//! headline experiment.
//!
//! Two parts:
//! 1. **Numerics** at reduced spatial scale (VGG-16 structure, 64x64
//!    input): full functional inference through the accelerator, checked
//!    bit-exactly against the software golden model, with a fidelity
//!    report (float vs. quantized top-1 agreement) substituting for the
//!    paper's data-gated ImageNet accuracy.
//! 2. **Throughput** at full 224x224 scale (stats-only): per-layer cycles
//!    and effective GOPS on the 512-opt variant, for both the
//!    reduced-precision and the pruned model.
//!
//! ```sh
//! cargo run --release --example vgg16_inference
//! ```

use zskip::accel::{AccelConfig, BackendKind, Driver};
use zskip::hls::Variant;
use zskip::nn::eval::{compare, synthetic_inputs};
use zskip::nn::model::{Network, SyntheticModelConfig};
use zskip::nn::vgg16::vgg16_scaled_spec;
use zskip::quant::DensityProfile;

fn main() {
    // ---- Part 1: numerics on the scaled VGG-16 ----
    let spec = vgg16_scaled_spec(64);
    println!("== numerics: {} ({} layers, {:.1} GMACs) ==", spec.name, spec.layers.len(), spec.total_macs() as f64 / 1e9);
    let net = Network::synthetic(
        spec.clone(),
        &SyntheticModelConfig { seed: 99, density: DensityProfile::deep_compression_vgg16() },
    );
    let calib = synthetic_inputs(7, 2, spec.input);
    let qnet = net.quantize(&calib);

    let config = AccelConfig::for_variant(Variant::U256Opt);
    let driver = Driver::builder(config).backend(BackendKind::Model).build().unwrap();
    let input = synthetic_inputs(8, 1, spec.input).pop().expect("one input");
    let report = driver.run_network(&qnet, &input).expect("fits");
    assert_eq!(report.output, qnet.forward_quant(&input), "bit-exact vs golden model");
    println!("accelerator output bit-exact vs software golden model");

    let inputs = synthetic_inputs(9, 8, spec.input);
    let fidelity = compare(&net, &qnet, &inputs);
    println!("quantization fidelity (ImageNet substitute): {fidelity}");

    // ---- Part 2: full-scale throughput (the paper's Figs. 7-8 data) ----
    for (label, density) in [
        ("reduced precision", DensityProfile::dense(13)),
        ("reduced precision + pruning", DensityProfile::deep_compression_vgg16()),
    ] {
        println!("\n== throughput: VGG-16 224x224, 512-opt, {label} ==");
        let full = zskip_bench_model(density);
        let config = AccelConfig::for_variant(Variant::U512Opt);
        let driver = Driver::builder(config).functional(false).build().unwrap();
        let input = zskip::tensor::Tensor::<f32>::zeros(3, 224, 224);
        let report = driver.run_network(&full, &input).expect("fits");
        println!("  layer      cycles        eff.GOPS");
        for l in report.conv_layers() {
            println!("  {:<9} {:>10} {:>12.1}", l.name, l.stats.total_cycles, l.effective_gops(&config));
        }
        println!(
            "  average {:.1} GOPS, peak {:.1} GOPS, whole network {:.1} ms/inference",
            report.mean_gops(&config),
            report.peak_gops(&config),
            report.total_cycles as f64 * config.cycle_seconds() * 1e3
        );
    }
    println!("\npaper reference (512-opt): 39.5/61 GOPS unpruned, 53.3/138 GOPS pruned.");
}

/// Builds the full-size quantized VGG-16 with the given density profile
/// (scales calibrated on the 32x32 surrogate; see zskip-bench).
fn zskip_bench_model(density: DensityProfile) -> zskip::nn::model::QuantizedNetwork {
    let spec = zskip::nn::vgg16_spec();
    let net = Network::synthetic(spec, &SyntheticModelConfig { seed: 99, density: density.clone() });
    let surrogate = vgg16_scaled_spec(32);
    let snet = Network::synthetic(surrogate.clone(), &SyntheticModelConfig { seed: 99, density });
    let calib = synthetic_inputs(7, 1, surrogate.input);
    let qs = snet.quantize(&calib);
    zskip_bench::requantize_with_scales(&net, &qs.activation_scales)
}
