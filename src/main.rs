//! `zskip` — command-line front end to the simulated accelerator.
//!
//! ```text
//! zskip synth [variant|all]       HLS synthesis summary and area breakdown
//! zskip sweep                     full VGG-16 variant/model sweep (Figs. 7-8 data)
//! zskip infer [flags]             run inference end to end, verify vs golden model
//! zskip batch [flags]             run a batch of inferences on a worker pool
//! zskip serve [flags]             serving daemon: NDJSON requests over stdio or TCP
//! zskip tune [flags]              seeded design-space autotuner, emits a config artifact
//! zskip analyze [flags]           per-layer zero-skip packing analysis
//! zskip faults [flags]            fault-injection survivability campaign
//! zskip trace                     cycle-exact waveform of a small convolution
//! ```
//!
//! Every flag-taking subcommand supports `--help`; flags are declared
//! declaratively and parsed by a shared, panic-free parser. Flags with a
//! closed set of values declare their choices in the table and are
//! rejected with the stable `config.invalid` code before any work runs.
//! The knobs common to `infer`/`batch`/`serve` — backend, threads,
//! kernel tier, weight cache, and the batch shaping — live in shared
//! flag *groups* ([`SESSION_FLAGS`], [`NETWORK_FLAGS`],
//! [`BATCH_KNOB_FLAGS`]), so the subcommands cannot drift apart; all
//! three resolve one [`TunedConfig`] via [`resolve_config`] (a
//! `--config` artifact, when given, supplies the baseline and explicit
//! flags override it) and route through one [`Session`].

use std::sync::Arc;
use std::time::Duration;

use zskip::accel::serve::wire;
use zskip::accel::session::{DEFAULT_BATCH_WINDOW_MS, DEFAULT_MAX_BATCH, DEFAULT_QUEUE_DEPTH};
use zskip::accel::tune::{DEFAULT_BUDGET, DEFAULT_SEED};
use zskip::accel::{
    AccelConfig, BackendKind, Driver, Objective, Placement, Provenance, SearchSpace, Searcher,
    ServeEngine, ShardReport, SpaceKind, TunedConfig, Tuner,
};
use zskip::hls::Variant;
use zskip::nn::eval::synthetic_inputs;
use zskip::nn::model::{Network, QuantizedNetwork, SyntheticModelConfig};
use zskip::nn::simd::KernelTier;
use zskip::perf::AreaBreakdown;
use zskip::quant::DensityProfile;

/// One flag a subcommand accepts.
struct Flag {
    name: &'static str,
    /// Metavariable for value-taking flags; `None` marks a boolean flag.
    metavar: Option<&'static str>,
    /// Default shown in `--help` (value-taking flags only).
    default: Option<&'static str>,
    /// Closed value set, validated by the parser itself: any other value
    /// is rejected with the stable `config.invalid` code before the
    /// subcommand runs. `None` = free-form (numbers, paths, ...).
    choices: Option<&'static [&'static str]>,
    help: &'static str,
}

impl Flag {
    const fn val(
        name: &'static str,
        metavar: &'static str,
        default: &'static str,
        help: &'static str,
    ) -> Flag {
        Flag { name, metavar: Some(metavar), default: Some(default), choices: None, help }
    }

    const fn choice(
        name: &'static str,
        metavar: &'static str,
        default: &'static str,
        choices: &'static [&'static str],
        help: &'static str,
    ) -> Flag {
        Flag { name, metavar: Some(metavar), default: Some(default), choices: Some(choices), help }
    }

    const fn boolean(name: &'static str, help: &'static str) -> Flag {
        Flag { name, metavar: None, default: None, choices: None, help }
    }
}

/// One subcommand of the CLI. `run` receives the parsed flag values.
/// `flag_groups` is a list of flag tables — subcommands share the common
/// groups below and add their own specifics, so `--help`, parsing and
/// defaults stay in lockstep across subcommands.
struct Command {
    name: &'static str,
    usage_args: &'static str,
    summary: &'static str,
    flag_groups: &'static [&'static [Flag]],
    run: fn(&Parsed),
}

impl Command {
    fn flags(&self) -> impl Iterator<Item = &'static Flag> + '_ {
        self.flag_groups.iter().flat_map(|g| g.iter())
    }
}

const HW_HELP: &str = "input height/width of the synthetic network";
const NETWORK_SPEC_HELP: &str =
    "JSON network-spec file (e.g. specs/resnet18.json; see docs/NETWORKS.md) instead of the built-in VGG-16";
const DENSITY_HELP: &str = "weight density: 'dc' (deep-compression VGG-16 profile) or a fraction";
const VARIANT_HELP: &str = "accelerator variant: 16-unopt | 256-unopt | 256-opt | 512-opt";
const BACKEND_HELP: &str =
    "execution backend: model (transaction-level) | cycle (cycle-exact) | cpu (host SIMD)";
const THREADS_HELP: &str =
    "intra-image conv worker threads for the cpu backend (0 = host auto; others ignore)";

const VARIANT_CHOICES: &[&str] = &["16-unopt", "256-unopt", "256-opt", "512-opt"];
const BACKEND_CHOICES: &[&str] = &["model", "cycle", "cpu"];
const KERNEL_CHOICES: &[&str] = &["auto", "scalar", "sse2", "avx2", "avx512"];
const PLACEMENT_CHOICES: &[&str] = &["auto", "stripe", "image", "pipeline"];
const ONOFF_CHOICES: &[&str] = &["on", "off"];
const OBJECTIVE_CHOICES: &[&str] = &["latency", "throughput", "p99", "cycles"];
const SPACE_CHOICES: &[&str] = &["software", "hls", "full"];
const SEARCHER_CHOICES: &[&str] = &["cd", "spsa"];

/// The session knobs every inference-running subcommand shares; resolved
/// into a [`TunedConfig`] by [`resolve_config`].
const SESSION_FLAGS: &[Flag] = &[
    Flag::choice("--backend", "B", "model", BACKEND_CHOICES, BACKEND_HELP),
    Flag::val("--threads", "T", "0", THREADS_HELP),
    Flag::choice(
        "--kernel",
        "K",
        "auto",
        KERNEL_CHOICES,
        "SIMD kernel tier: auto | scalar | sse2 | avx2 | avx512",
    ),
    Flag::choice("--weight-cache", "on|off", "on", ONOFF_CHOICES, "process-wide packed-weight cache"),
];

/// The synthetic-network knobs shared by inference subcommands.
const NETWORK_FLAGS: &[Flag] = &[
    Flag::val("--network", "FILE", "vgg16", NETWORK_SPEC_HELP),
    Flag::val("--density", "D", "dc", DENSITY_HELP),
    Flag::choice("--variant", "V", "256-opt", VARIANT_CHOICES, VARIANT_HELP),
];

/// The multi-accelerator sharding knobs shared by every subcommand that
/// can schedule over more than one instance (see docs/SCHEDULER.md).
const SHARD_FLAGS: &[Flag] = &[
    Flag::val(
        "--instances",
        "N",
        "1",
        "accelerator instances to schedule over (the bank RAM budget divides across them)",
    ),
    Flag::choice(
        "--placement",
        "P",
        "auto",
        PLACEMENT_CHOICES,
        "shard placement: auto | stripe | image | pipeline",
    ),
];

/// The tuned-config artifact loader shared by `infer`/`batch`/`serve`/
/// `analyze`: the artifact supplies the baseline knobs, explicit flags
/// override it (with a shadowing warning). See docs/TUNING.md.
const CONFIG_FLAGS: &[Flag] = &[Flag::val(
    "--config",
    "FILE",
    "none",
    "tuned-config artifact from 'zskip tune' (explicit flags override its knobs)",
)];

/// The batch shaping and admission-control knobs of the serving daemon.
const BATCH_KNOB_FLAGS: &[Flag] = &[
    Flag::val("--workers", "N", "0", "batch-pool worker threads (0 = auto)"),
    Flag::val("--max-batch", "N", "8", "requests coalesced into one accelerator batch at most"),
    Flag::val("--batch-window-ms", "MS", "2", "how long a forming batch waits for more requests"),
    Flag::val("--queue-depth", "N", "64", "bounded submission-queue depth (admission control)"),
];

const COMMANDS: &[Command] = &[
    Command {
        name: "synth",
        usage_args: "[variant|all]",
        summary: "HLS synthesis summary and area breakdown",
        flag_groups: &[],
        run: |p| synth(p.positional.first().map(String::as_str).unwrap_or("all")),
    },
    Command {
        name: "sweep",
        usage_args: "",
        summary: "full VGG-16 variant/model sweep (paper Figs. 7-8 data)",
        flag_groups: &[],
        run: |_| sweep(),
    },
    Command {
        name: "infer",
        usage_args: "[flags]",
        summary: "run inference end to end, verify vs the golden model",
        flag_groups: &[
            &[
                Flag::val("--hw", "N", "64", HW_HELP),
                Flag::val("--seed", "S", "3", "input image seed (serve's {\"seed\":S} matches)"),
                Flag::boolean("--ternary", "quantize weights to ternary (-1/0/+1 magnitudes)"),
            ],
            NETWORK_FLAGS,
            SESSION_FLAGS,
            SHARD_FLAGS,
            CONFIG_FLAGS,
        ],
        run: infer,
    },
    Command {
        name: "batch",
        usage_args: "[flags]",
        summary: "run a batch of inferences on a work-stealing worker pool",
        flag_groups: &[
            &[
                Flag::val("--n", "N", "8", "number of images in the batch"),
                Flag::val("--workers", "W", "0", "worker threads (0 = auto)"),
                Flag::val("--hw", "N", "32", HW_HELP),
            ],
            NETWORK_FLAGS,
            SESSION_FLAGS,
            SHARD_FLAGS,
            CONFIG_FLAGS,
        ],
        run: batch,
    },
    Command {
        name: "serve",
        usage_args: "[flags]",
        summary: "serving daemon: newline-delimited JSON requests over stdio or TCP",
        flag_groups: &[
            &[
                Flag::val("--hw", "N", "32", HW_HELP),
                Flag::val("--tcp", "ADDR", "off", "listen on a TCP address (e.g. 127.0.0.1:0) instead of stdio"),
            ],
            NETWORK_FLAGS,
            SESSION_FLAGS,
            SHARD_FLAGS,
            BATCH_KNOB_FLAGS,
            CONFIG_FLAGS,
        ],
        run: serve,
    },
    Command {
        name: "tune",
        usage_args: "[flags]",
        summary: "seeded design-space autotuner; writes a loadable best-config artifact",
        flag_groups: &[&[
            Flag::choice(
                "--objective",
                "O",
                "cycles",
                OBJECTIVE_CHOICES,
                "what to minimize: latency | throughput | p99 | cycles (see docs/TUNING.md)",
            ),
            Flag::choice("--space", "S", "hls", SPACE_CHOICES, "search space: software | hls | full"),
            Flag::choice(
                "--searcher",
                "A",
                "cd",
                SEARCHER_CHOICES,
                "search algorithm: cd (coordinate descent) | spsa",
            ),
            Flag::val("--seed", "S", "0x5acade09", "search seed (decimal or 0x-prefixed hex)"),
            Flag::val("--budget", "N", "96", "fresh-evaluation budget (cache hits are free)"),
            Flag::val("--out", "FILE", "tuned.json", "where to write the artifact"),
            Flag::val("--n", "N", "4", "images driving the throughput/p99 objectives"),
            Flag::val("--hw", "N", "32", HW_HELP),
            Flag::val("--network", "FILE", "vgg16", NETWORK_SPEC_HELP),
            Flag::val("--density", "D", "dc", DENSITY_HELP),
        ]],
        run: tune,
    },
    Command {
        name: "analyze",
        usage_args: "[flags]",
        summary: "per-layer zero-skip packing analysis",
        flag_groups: &[NETWORK_FLAGS, SHARD_FLAGS, CONFIG_FLAGS],
        run: analyze,
    },
    Command {
        name: "faults",
        usage_args: "[flags]",
        summary: "fault-injection survivability campaign (exit 1 unless all trials degrade gracefully)",
        flag_groups: &[&[
            Flag::val("--hw", "N", "8", HW_HELP),
            Flag::val("--seed", "S", "7", "seed for synthetic weights and inputs"),
            Flag::boolean("--json", "emit the survivability report as JSON on stdout"),
        ]],
        run: faults,
    },
    Command {
        name: "trace",
        usage_args: "",
        summary: "cycle-exact waveform of a small convolution",
        flag_groups: &[],
        run: |_| trace(),
    },
];

/// Parsed arguments of one subcommand invocation.
struct Parsed {
    values: Vec<(&'static str, String)>,
    switches: Vec<&'static str>,
    positional: Vec<String>,
}

impl Parsed {
    fn get(&self, name: &str) -> Option<&str> {
        self.values.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.switches.contains(&name)
    }

    /// Parses a numeric flag, exiting with a message (not a panic) on
    /// malformed input.
    fn parse_num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| fail(&format!("{name} takes a number, got '{v}'"))),
        }
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("zskip: {msg}");
    std::process::exit(2);
}

/// Rejects a bad configuration value with the same stable code the
/// library's [`zskip::Error::code`] gives `Error::InvalidConfig`, so
/// harnesses can match CLI and API failures with one string.
fn fail_invalid(msg: &str) -> ! {
    fail(&format!("error[config.invalid]: {msg}"));
}

/// Rejects a bad `--network` spec file with the stable code the library
/// gives `Error::Spec` — unreadable file, malformed JSON, and DAG
/// validation failures all land here.
fn fail_spec(msg: &str) -> ! {
    fail(&format!("error[spec.invalid]: {msg}"));
}

/// Loads and validates a `--network` JSON spec file.
fn load_spec(path: &str) -> zskip::nn::NetworkSpec {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail_spec(&format!("cannot read {path}: {e}")));
    zskip::nn::NetworkSpec::from_json(&text)
        .unwrap_or_else(|e| fail_spec(&format!("{path}: {e}")))
}

fn print_usage() {
    eprintln!("usage: zskip <command> [flags]  (zskip <command> --help for details)\n");
    for c in COMMANDS {
        eprintln!("  {:<10} {:<14} {}", c.name, c.usage_args, c.summary);
    }
}

fn print_command_help(cmd: &Command) {
    println!("usage: zskip {} {}", cmd.name, cmd.usage_args);
    println!("{}", cmd.summary);
    if cmd.flags().next().is_some() {
        println!("\nflags:");
        for f in cmd.flags() {
            let head = match f.metavar {
                Some(m) => format!("{} <{}>", f.name, m),
                None => f.name.to_string(),
            };
            let default = f.default.map(|d| format!(" [default: {d}]")).unwrap_or_default();
            println!("  {head:<24} {}{default}", f.help);
        }
    }
}

/// The shared table-driven flag parser: validates every argument against
/// the subcommand's flag table, handles `--help`, and never panics.
fn parse_args(cmd: &Command, args: &[String]) -> Parsed {
    let mut parsed = Parsed { values: Vec::new(), switches: Vec::new(), positional: Vec::new() };
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--help" || a == "-h" {
            print_command_help(cmd);
            std::process::exit(0);
        }
        if let Some(flag) = cmd.flags().find(|f| f.name == a) {
            if flag.metavar.is_some() {
                let Some(v) = args.get(i + 1) else {
                    fail(&format!("{} requires a value (zskip {} --help)", flag.name, cmd.name));
                };
                if let Some(choices) = flag.choices {
                    if !choices.contains(&v.as_str()) {
                        fail_invalid(&format!(
                            "{} takes {}, got '{v}'",
                            flag.name,
                            choices.join(" | ")
                        ));
                    }
                }
                parsed.values.push((flag.name, v.clone()));
                i += 2;
            } else {
                parsed.switches.push(flag.name);
                i += 1;
            }
        } else if a.starts_with('-') {
            fail(&format!("unknown flag {a} for '{}' (zskip {} --help)", cmd.name, cmd.name));
        } else {
            parsed.positional.push(a.clone());
            i += 1;
        }
    }
    parsed
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd_name = args.first().map(String::as_str).unwrap_or("help");
    if cmd_name == "help" || cmd_name == "--help" || cmd_name == "-h" {
        print_usage();
        std::process::exit(0);
    }
    let Some(cmd) = COMMANDS.iter().find(|c| c.name == cmd_name) else {
        eprintln!("zskip: unknown command '{cmd_name}'\n");
        print_usage();
        std::process::exit(2);
    };
    let parsed = parse_args(cmd, &args[1..]);
    (cmd.run)(&parsed);
}

fn parse_variant(s: &str) -> Variant {
    match s {
        "16-unopt" => Variant::U16Unopt,
        "256-unopt" => Variant::U256Unopt,
        "256-opt" => Variant::U256Opt,
        "512-opt" => Variant::U512Opt,
        other => fail(&format!("unknown variant {other} (use 16-unopt | 256-unopt | 256-opt | 512-opt)")),
    }
}

/// Parses a `u64` seed flag, accepting decimal or `0x`-prefixed hex (the
/// default tuner seed reads better in hex).
fn parse_seed(p: &Parsed, name: &str, default: u64) -> u64 {
    let Some(v) = p.get(name) else { return default };
    let (radix, digits) = match v.strip_prefix("0x") {
        Some(hex) => (16, hex),
        None => (10, v),
    };
    u64::from_str_radix(digits, radix)
        .unwrap_or_else(|_| fail(&format!("{name} takes a seed (decimal or 0x hex), got '{v}'")))
}

fn parse_density(p: &Parsed, layers: usize) -> DensityProfile {
    match p.get("--density").unwrap_or("dc") {
        // The deep-compression profile is 13 per-layer entries; a loaded
        // spec with a different conv count falls back to the profile's
        // mean density, applied uniformly.
        "dc" if layers == 13 => DensityProfile::deep_compression_vgg16(),
        "dc" => DensityProfile::uniform(layers, 0.35),
        d => DensityProfile::uniform(
            layers,
            d.parse().unwrap_or_else(|_| fail(&format!("--density takes 'dc' or a fraction, got '{d}'"))),
        ),
    }
}

/// A [`TunedConfig`] resolved from `--config` (when given) plus the
/// explicit CLI flags, which always win.
struct ResolvedConfig {
    config: TunedConfig,
    /// The artifact path, when `--config` was given.
    source: Option<String>,
    /// Shadowing notes: explicit flags that overrode a *differing*
    /// artifact knob. Already warned to stderr; `analyze` re-prints them.
    overrides: Vec<String>,
}

/// Resolves the session knobs every inference subcommand shares, with one
/// precedence rule: `--config` artifact knobs are the baseline (else the
/// stock defaults), and any explicitly-provided flag overrides its knob.
/// An override that *changes* a loaded artifact's value warns on stderr —
/// a tuned artifact silently degraded by a stray flag is the failure mode
/// this guards against.
fn resolve_config(p: &Parsed) -> ResolvedConfig {
    let source = p.get("--config").map(str::to_string);
    let mut config = match &source {
        Some(path) => TunedConfig::load(path).unwrap_or_else(|e| fail_invalid(&e.to_string())),
        // The CLI's historical default is threads 0 (host auto), not the
        // builder's pinned single thread.
        None => TunedConfig { threads: 0, ..TunedConfig::default() },
    };
    let loaded = source.is_some();
    let mut overrides = Vec::new();
    let mut shadow = |flag: &str, new: &str, old: String| {
        if loaded && *new != old {
            overrides.push(format!("{flag} {new} shadows tuned '{old}'"));
        }
    };
    if let Some(v) = p.get("--variant") {
        shadow("--variant", v, config.variant.label().to_string());
        config.variant = parse_variant(v);
    }
    if let Some(v) = p.get("--instances") {
        shadow("--instances", v, config.instances.to_string());
        config.instances = p.parse_num("--instances", 1);
    }
    if let Some(v) = p.get("--backend") {
        shadow("--backend", v, config.backend.name().to_string());
        config.backend = v.parse().unwrap_or_else(|e: String| fail_invalid(&e));
    }
    if let Some(v) = p.get("--threads") {
        shadow("--threads", v, config.threads.to_string());
        config.threads = p.parse_num("--threads", 0);
    }
    if let Some(v) = p.get("--kernel") {
        shadow("--kernel", v, config.kernel.map(|k| k.name().to_string()).unwrap_or("auto".into()));
        config.kernel = match v {
            "auto" => None,
            k => KernelTier::parse(k), // parser-validated; never None here
        };
    }
    if let Some(v) = p.get("--weight-cache") {
        shadow("--weight-cache", v, if config.weight_cache { "on" } else { "off" }.to_string());
        config.weight_cache = v == "on";
    }
    if let Some(v) = p.get("--placement") {
        shadow("--placement", v, config.placement.name().to_string());
        config.placement = v.parse().unwrap_or_else(|e: String| fail_invalid(&e));
    }
    if let Some(v) = p.get("--workers") {
        shadow("--workers", v, config.batch_workers.to_string());
        config.batch_workers = p.parse_num("--workers", 0);
    }
    if let Some(v) = p.get("--max-batch") {
        shadow("--max-batch", v, config.max_batch.to_string());
        config.max_batch = p.parse_num("--max-batch", DEFAULT_MAX_BATCH);
    }
    if let Some(v) = p.get("--batch-window-ms") {
        shadow("--batch-window-ms", v, config.batch_window_ms.to_string());
        config.batch_window_ms = p.parse_num("--batch-window-ms", DEFAULT_BATCH_WINDOW_MS);
    }
    if let Some(v) = p.get("--queue-depth") {
        shadow("--queue-depth", v, config.queue_depth.to_string());
        config.queue_depth = p.parse_num("--queue-depth", DEFAULT_QUEUE_DEPTH);
    }
    for w in &overrides {
        eprintln!(
            "zskip: warning: {} (artifact {})",
            w,
            source.as_deref().unwrap_or("?")
        );
    }
    ResolvedConfig { config, source, overrides }
}

/// Renders a resolved config's knobs as two aligned lines (shared by
/// `tune` and `analyze --config`).
fn print_tuned_knobs(c: &TunedConfig, indent: &str) {
    let threads = if c.threads == 0 { "auto".to_string() } else { c.threads.to_string() };
    println!(
        "{indent}variant {} | instances {} | backend {} | threads {} | kernel {} | weight-cache {}",
        c.variant.label(),
        c.instances,
        c.backend.name(),
        threads,
        c.kernel.map(|k| k.name()).unwrap_or("auto"),
        if c.weight_cache { "on" } else { "off" },
    );
    println!(
        "{indent}placement {} | park-hysteresis {} | batch workers {} | max-batch {} | window {} ms | queue {}",
        c.placement.name(),
        c.park_hysteresis.map(|t| t.to_string()).unwrap_or("default".into()),
        c.batch_workers,
        c.max_batch,
        c.batch_window_ms,
        c.queue_depth,
    );
}

fn print_provenance(pr: &Provenance, indent: &str) {
    println!(
        "{indent}found by {} over the '{}' space minimizing {} (seed {:#x}, budget {}): \
         score {:.3e} s, {} fresh evals, {} cache hits",
        pr.searcher, pr.space, pr.objective, pr.seed, pr.budget, pr.score, pr.evals, pr.cache_hits,
    );
}

/// Builds the synthetic network the inference subcommands share: the
/// scaled VGG-16, or any `--network FILE` JSON spec. Same spec, seed and
/// calibration for `infer`, `batch` and `serve`, so a served request is
/// bit-comparable to a CLI inference.
fn build_network(p: &Parsed, hw: usize, ternary: bool) -> QuantizedNetwork {
    let spec = match p.get("--network") {
        Some(path) => load_spec(path),
        None => zskip::nn::vgg16::vgg16_scaled_spec(hw),
    };
    let convs =
        spec.layers.iter().filter(|l| matches!(l, zskip::nn::LayerSpec::Conv { .. })).count();
    let density = parse_density(p, convs);
    let net = Network::synthetic(spec.clone(), &SyntheticModelConfig { seed: 1, density });
    let calib = synthetic_inputs(2, 1, spec.input);
    if ternary {
        net.quantize_ternary(&calib)
    } else {
        net.quantize(&calib)
    }
}

fn synth(which: &str) {
    let variants: Vec<Variant> =
        if which == "all" { Variant::all().to_vec() } else { vec![parse_variant(which)] };
    for v in variants {
        let r = v.synthesize();
        println!("== {v} ==");
        println!(
            "  {} MACs/cycle, achieved {:.1} MHz, operating {:.1} MHz, peak {:.1} GOPS",
            v.macs_per_cycle(),
            r.achieved_fmax_mhz,
            r.operating_mhz,
            r.peak_gops()
        );
        println!("  {}", r.utilization);
        if which != "all" {
            print!("{}", AreaBreakdown::from_synthesis(v.label(), &r).render());
        }
    }
}

fn sweep() {
    for p in zskip_bench::full_sweep() {
        println!(
            "{:<13} avg {:>6.1} GOPS  peak {:>6.1} GOPS  eff mean {:>4.2} best {:>4.2} worst {:>4.2}",
            format!("{}{}", p.variant, p.model),
            p.mean_gops(),
            p.peak_gops(),
            p.mean_efficiency(),
            p.best_efficiency(),
            p.worst_efficiency()
        );
    }
}

fn infer(p: &Parsed) {
    let hw: usize = p.parse_num("--hw", 64);
    let seed: u64 = p.parse_num("--seed", 3);
    let resolved = resolve_config(p);
    let variant = resolved.config.variant;
    let backend = resolved.config.backend;

    let qnet = build_network(p, hw, p.has("--ternary"));
    println!(
        "running {} on {} ({} GMACs, {backend} backend)...",
        qnet.spec.name,
        variant,
        qnet.spec.total_macs() / 1_000_000_000
    );
    let input = synthetic_inputs(seed, 1, qnet.spec.input).pop().expect("one");

    let config = AccelConfig::for_variant(variant);
    let session = resolved.config.session().build().unwrap_or_else(|e| fail(&e.to_string()));
    let report = if session.driver().config.instances > 1 {
        let shard = session
            .run_sharded(&qnet, std::slice::from_ref(&input))
            .unwrap_or_else(|e| fail(&e.to_string()));
        println!(
            "sharded over {} instances ({} placement): makespan {} cycles, {:.2}x vs one instance",
            shard.instances,
            shard.placement,
            shard.makespan_cycles,
            shard.speedup()
        );
        shard.items.into_iter().next().expect("one image in, one report out")
    } else {
        session.infer(&qnet, &input).unwrap_or_else(|e| fail(&e.to_string()))
    };
    assert_eq!(report.output, qnet.forward_quant(&input), "bit-exact vs golden model");
    println!("bit-exact vs the software golden model");
    println!(
        "{} cycles = {:.2} ms at {:.0} MHz; mean {:.1} / peak {:.1} effective GOPS; DDR {} MiB",
        report.total_cycles,
        report.total_cycles as f64 * config.cycle_seconds() * 1e3,
        config.clock_mhz,
        report.mean_gops(&config),
        report.peak_gops(&config),
        report.ddr_bytes >> 20
    );
    let top = zskip::nn::fc::argmax(&report.output).expect("non-empty");
    println!("predicted class: {top}");
}

fn batch(p: &Parsed) {
    let hw: usize = p.parse_num("--hw", 32);
    let n: usize = p.parse_num("--n", 8);
    let resolved = resolve_config(p);
    let variant = resolved.config.variant;
    let backend = resolved.config.backend;

    let qnet = build_network(p, hw, false);
    let inputs = synthetic_inputs(3, n, qnet.spec.input);

    let session = resolved.config.session().build().unwrap_or_else(|e| fail(&e.to_string()));
    println!("running {} x {} on {} ({backend} backend)...", n, qnet.spec.name, variant);
    if session.driver().config.instances > 1 {
        let shard = session.run_sharded(&qnet, &inputs).unwrap_or_else(|e| fail(&e.to_string()));
        print_shard_summary(&shard, &session.driver().config);
        for (i, r) in shard.items.iter().enumerate() {
            let top = zskip::nn::fc::argmax(&r.output).expect("non-empty");
            println!("  image {i}: {} cycles, predicted class {top}", r.total_cycles);
        }
        return;
    }
    let t0 = std::time::Instant::now();
    let report = session.run_batch(&qnet, &inputs).unwrap_or_else(|e| fail(&e.to_string()));
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "{} images in {:.2} s on {} workers ({:.2} images/s, {:.1} M simulated cycles/s, {} steals)",
        n,
        wall,
        report.workers,
        n as f64 / wall,
        report.total_cycles() as f64 / wall / 1e6,
        report.steals
    );
    for (i, r) in report.reports.iter().enumerate() {
        let top = zskip::nn::fc::argmax(&r.output).expect("non-empty");
        println!("  image {i}: {} cycles, predicted class {top}", r.total_cycles);
    }
}

/// Renders one sharded run's timeline: placement, throughput, and the
/// per-instance utilization split the scheduler achieved.
fn print_shard_summary(shard: &ShardReport, config: &AccelConfig) {
    println!(
        "sharded {} images over {} instances ({} placement): makespan {} cycles, \
         {:.2}x vs one instance, {:.1} simulated images/s",
        shard.items.len(),
        shard.instances,
        shard.placement,
        shard.makespan_cycles,
        shard.speedup(),
        shard.images_per_s(config)
    );
    for (k, &busy) in shard.per_instance_busy.iter().enumerate() {
        let pct = if shard.makespan_cycles > 0 {
            busy as f64 / shard.makespan_cycles as f64 * 100.0
        } else {
            0.0
        };
        println!("  instance {k}: {busy} busy cycles ({pct:.0}% of makespan)");
    }
    if shard.placement == Placement::Pipeline {
        for (layer, bubbles) in &shard.layer_bubbles {
            println!("  stage '{layer}': {bubbles} bubble cycles waiting on upstream");
        }
        println!(
            "  weight staging: {} cycles hidden behind compute, {} exposed",
            shard.staging_hidden_cycles, shard.staging_exposed_cycles
        );
    }
}

fn serve(p: &Parsed) {
    let hw: usize = p.parse_num("--hw", 32);
    let resolved = resolve_config(p);
    let variant = resolved.config.variant;
    let backend = resolved.config.backend;

    let qnet = Arc::new(build_network(p, hw, false));
    let session = resolved.config.session().build().unwrap_or_else(|e| fail(&e.to_string()));
    let batch_cfg = *session.batch_config();
    // The banner goes to stderr: in stdio mode stdout is the protocol
    // channel and must carry nothing but response lines.
    eprintln!(
        "zskip serve: {} on {} ({backend} backend, kernel {}, {} instance(s), {} placement, \
         max-batch {}, window {:?}, queue {})",
        qnet.spec.name,
        variant,
        session.kernel_tier(),
        session.driver().config.instances,
        batch_cfg.placement,
        batch_cfg.max_batch,
        batch_cfg.batch_window,
        batch_cfg.queue_depth,
    );
    let shape = qnet.spec.input;
    let engine = ServeEngine::start(session, Arc::clone(&qnet));
    let handle = engine.handle();

    let protocol_errors = match p.get("--tcp") {
        Some(addr) if addr != "off" => serve_tcp(&handle, shape, addr),
        _ => {
            // Not `stdin().lock()`: StdinLock is !Send, and the reader
            // runs on the connection's scoped reader thread.
            let stdin = std::io::BufReader::new(std::io::stdin());
            let mut stdout = std::io::stdout();
            let summary = wire::serve_connection(&handle, shape, stdin, &mut stdout)
                .unwrap_or_else(|e| fail(&format!("stdio serve loop failed: {e}")));
            summary.protocol_errors
        }
    };

    // EOF or a shutdown op landed: drain in-flight batches, then report.
    let stats = engine.join();
    println!("{}", wire::render_stats(&stats));
    eprintln!(
        "zskip serve: drained cleanly ({} served, {} failed, {} rejected, p50 {} us, p99 {} us)",
        stats.served,
        stats.failed,
        stats.rejected,
        stats.p50_us(),
        stats.p99_us()
    );
    if protocol_errors > 0 {
        eprintln!("zskip serve: {protocol_errors} protocol error(s)");
        std::process::exit(1);
    }
}

/// TCP mode: accepts connections until a client requests shutdown, one
/// handler thread per connection. Returns the total protocol errors.
fn serve_tcp(handle: &zskip::accel::ServeHandle, shape: zskip::tensor::Shape, addr: &str) -> u64 {
    use std::io::BufReader;
    use std::sync::atomic::{AtomicU64, Ordering};

    let listener =
        std::net::TcpListener::bind(addr).unwrap_or_else(|e| fail(&format!("cannot bind {addr}: {e}")));
    let local = listener.local_addr().map(|a| a.to_string()).unwrap_or_else(|_| addr.to_string());
    // Announce the bound address on stdout as a JSON line so harnesses
    // binding port 0 can discover the real port.
    use zskip::json::Json;
    println!(
        "{}",
        Json::obj([
            ("ok", Json::Bool(true)),
            ("op", Json::Str("listening".into())),
            ("addr", Json::Str(local.clone())),
        ])
        .to_string_compact()
    );
    eprintln!("zskip serve: listening on {local}");
    listener.set_nonblocking(true).unwrap_or_else(|e| fail(&format!("nonblocking accept: {e}")));
    let protocol_errors = AtomicU64::new(0);
    std::thread::scope(|scope| {
        while !handle.is_shutdown() {
            match listener.accept() {
                Ok((stream, peer)) => {
                    let handle = handle.clone();
                    let errors = &protocol_errors;
                    scope.spawn(move || {
                        let _ = stream.set_nonblocking(false);
                        let _ = stream.set_nodelay(true);
                        let Ok(read_half) = stream.try_clone() else { return };
                        let mut writer = stream;
                        match wire::serve_connection(
                            &handle,
                            shape,
                            BufReader::new(read_half),
                            &mut writer,
                        ) {
                            Ok(summary) => {
                                errors.fetch_add(summary.protocol_errors, Ordering::Relaxed);
                            }
                            Err(e) => eprintln!("zskip serve: connection {peer} failed: {e}"),
                        }
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    eprintln!("zskip serve: accept failed: {e}");
                    break;
                }
            }
        }
        // Scope exit joins the per-connection threads: every connection's
        // responses flush before the final drain summary prints.
    });
    protocol_errors.load(Ordering::Relaxed)
}

/// `zskip tune`: search a named space for the best config under an
/// objective, print the trajectory summary, and write the artifact that
/// `--config <file>` / [`SessionBuilder::from_tuned`] load back.
///
/// [`SessionBuilder::from_tuned`]: zskip::accel::SessionBuilder::from_tuned
fn tune(p: &Parsed) {
    let objective: Objective =
        p.get("--objective").unwrap_or("cycles").parse().unwrap_or_else(|e: String| fail_invalid(&e));
    let kind: SpaceKind =
        p.get("--space").unwrap_or("hls").parse().unwrap_or_else(|e: String| fail_invalid(&e));
    let searcher: Searcher =
        p.get("--searcher").unwrap_or("cd").parse().unwrap_or_else(|e: String| fail_invalid(&e));
    let space = SearchSpace::named(kind);
    let seed = parse_seed(p, "--seed", DEFAULT_SEED);
    let budget: u64 = p.parse_num("--budget", DEFAULT_BUDGET);
    let hw: usize = p.parse_num("--hw", 32);
    let n: usize = p.parse_num("--n", 4);
    let out = p.get("--out").unwrap_or("tuned.json").to_string();

    let qnet = build_network(p, hw, false);
    let inputs = synthetic_inputs(3, n.max(1), qnet.spec.input);
    println!(
        "tuning {} for {} over the '{}' space ({} points) with {} (seed {seed:#x}, budget {budget})",
        qnet.spec.name,
        objective,
        space.name(),
        space.cardinality(),
        searcher,
    );
    let t0 = std::time::Instant::now();
    let outcome = Tuner::new(space, objective, &qnet, &inputs)
        .searcher(searcher)
        .seed(seed)
        .budget(budget)
        .run();
    println!(
        "searched {} fresh evaluations (+{} cache hits) in {:.1} s",
        outcome.evals,
        outcome.cache_hits,
        t0.elapsed().as_secs_f64(),
    );
    println!(
        "default {:.3e} s -> best {:.3e} s ({:.2}x)",
        outcome.default_score,
        outcome.best_score,
        outcome.speedup(),
    );
    print_tuned_knobs(&outcome.best, "  ");
    outcome.best.save(&out).unwrap_or_else(|e| fail(&e.to_string()));
    println!("wrote {out} (load with --config {out} or SessionBuilder::from_tuned)");
}

/// `zskip analyze --network FILE`: prints the spec's layer DAG — shapes,
/// branch and join points, the execution plan's slot assignment and the
/// peak DDR-resident activation footprint.
fn analyze_network(path: &str) {
    use zskip::nn::{ExecPlan, LayerRef, LayerSpec};
    let spec = load_spec(path);
    let shapes = spec.shapes().unwrap_or_else(|e| fail_spec(&format!("{path}: {e}")));
    let plan = ExecPlan::build(&spec).unwrap_or_else(|e| fail_spec(&format!("{path}: {e}")));

    // Fan-out per producer: index 0 is the network input, i + 1 is layer
    // i's output. A producer with more than one consumer is a branch
    // point; `Add` layers are the joins.
    let mut fanout = vec![0usize; spec.layers.len() + 1];
    let producer = |r: LayerRef| match r {
        LayerRef::Input => 0,
        LayerRef::Layer(j) => j + 1,
    };
    for (i, layer) in spec.layers.iter().enumerate() {
        match layer {
            LayerSpec::Ref { from, .. } => fanout[producer(*from)] += 1,
            LayerSpec::Add { from, .. } => {
                fanout[producer(*from)] += 1;
                fanout[i] += 1; // the previous layer's output
            }
            _ => fanout[i] += 1,
        }
    }

    let s = spec.input;
    println!(
        "{}: {} layers, input {}x{}x{}, {:.1} MMACs",
        spec.name,
        spec.layers.len(),
        s.c,
        s.h,
        s.w,
        spec.total_macs() as f64 / 1e6
    );
    println!(
        "plan: {} activation slot(s), peak resident {} KiB{}\n",
        plan.slots,
        plan.peak_resident_bytes / 1024,
        plan.output_slot.map(|o| format!(", output in slot {o}")).unwrap_or_default(),
    );
    println!("{:>4}  {:<16} {:<28} {:>12} {:>6}  notes", "#", "layer", "kind", "shape", "slot");
    for (i, layer) in spec.layers.iter().enumerate() {
        let relu_tag = |relu: bool| if relu { " +relu" } else { "" };
        let ref_name = |r: LayerRef| match r {
            LayerRef::Input => "input".to_string(),
            LayerRef::Layer(j) => spec.layers[j].name().to_string(),
        };
        let kind = match layer {
            LayerSpec::Conv { k, stride, pad, relu, .. } => {
                format!("conv {k}x{k}/{stride} pad {pad}{}", relu_tag(*relu))
            }
            LayerSpec::MaxPool { k, stride, .. } => format!("maxpool {k}x{k}/{stride}"),
            LayerSpec::Fc { relu, .. } => format!("fc (host){}", relu_tag(*relu)),
            LayerSpec::Softmax => "softmax (host)".to_string(),
            LayerSpec::Ref { from, .. } => format!("ref <- {}", ref_name(*from)),
            LayerSpec::Add { from, relu, .. } => {
                format!("add <- {}{} (join)", ref_name(*from), relu_tag(*relu))
            }
            LayerSpec::GlobalAvgPool { .. } => "global avgpool (host)".to_string(),
            LayerSpec::BatchNorm { relu, .. } => format!("batchnorm{} (folds)", relu_tag(*relu)),
        };
        let out = shapes[i + 1];
        let step = &plan.steps[i];
        let slot = match step.dst {
            Some(d) => format!("{d}"),
            None => "flat".to_string(),
        };
        let mut notes = Vec::new();
        if fanout[i + 1] > 1 {
            notes.push(format!("branch point ({} consumers)", fanout[i + 1]));
        }
        if !step.frees.is_empty() {
            let freed: Vec<String> = step.frees.iter().map(|f| f.to_string()).collect();
            notes.push(format!("frees slot {}", freed.join(", ")));
        }
        println!(
            "{:>4}  {:<16} {:<28} {:>12} {:>6}  {}",
            i,
            layer.name(),
            kind,
            format!("{}x{}x{}", out.c, out.h, out.w),
            slot,
            notes.join("; ")
        );
    }
    if fanout[0] > 1 {
        println!("\nnetwork input is a branch point ({} consumers)", fanout[0]);
    }
    println!("\nper-slot high-water marks (KiB): {:?}", plan.slot_elems.iter().map(|e| e / 1024).collect::<Vec<_>>());
}

fn analyze(p: &Parsed) {
    use zskip::accel::LayerPackingStats;
    if let Some(path) = p.get("--network") {
        analyze_network(path);
        return;
    }
    let density = parse_density(p, 13);
    let conv3_density = density.density(4);
    let resolved = resolve_config(p);
    let variant = resolved.config.variant;
    if let Some(path) = &resolved.source {
        println!("tuned config: {path} (artifact v{})", zskip::accel::tune::ARTIFACT_VERSION);
        print_tuned_knobs(&resolved.config, "  ");
        match &resolved.config.provenance {
            Some(pr) => print_provenance(pr, "  "),
            None => println!("  no provenance recorded (hand-written artifact)"),
        }
        if resolved.overrides.is_empty() {
            println!("  no CLI overrides: the artifact's knobs are in effect");
        } else {
            for w in &resolved.overrides {
                println!("  override: {w}");
            }
        }
        println!();
    }
    let config = AccelConfig::for_variant(variant);
    let qnet = zskip_bench::build_vgg16_with_density(density);
    println!(
        "VGG-16 packing analysis ({} lanes, zero-skip floor 4 cycles/weight-tile)\n",
        config.lanes
    );
    println!(
        "{:<9} {:>8} {:>10} {:>11} {:>9} {:>9} {:>8} {:>9}",
        "layer", "density", "scratch KB", "steps", "bubbles%", "skipped", "speedup", "vs ideal"
    );
    for (i, layer) in qnet.conv.iter().enumerate() {
        let name = zskip::nn::VGG16_CONV_NAMES.get(i).copied().unwrap_or("conv?");
        let s = LayerPackingStats::analyze(name, &layer.weights, &config);
        println!(
            "{:<9} {:>8.3} {:>10} {:>11} {:>8.1}% {:>9} {:>7.2}x {:>8.2}x",
            s.name,
            s.density,
            s.scratchpad_bytes / 1024,
            s.lockstep_steps,
            s.bubble_fraction() * 100.0,
            s.skipped_channels,
            s.predicted_skip_speedup(),
            s.lockstep_steps.max(1) as f64 / s.ideal_steps.max(1) as f64,
        );
    }
    println!("\n'vs ideal' is lockstep steps over per-lane-independent steps: the bubble");
    println!("cost the paper's future-work filter grouping recovers.");

    // Scheduler engagement: run one representative engine-level block
    // (conv3-scale, the profile's median-density layer class) under both
    // steppers and show how the event-driven scheduler spent its cycles.
    use zskip::accel::cycle::{run_instructions, run_instructions_dense};
    use zskip::hls::AccelArch;
    use zskip::quant::Sm8;
    use zskip::tensor::Tensor;
    let acfg = AccelConfig::from_arch(&AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 8192 }, 100.0);
    let (qw, _, _) = zskip_bench::make_conv_layer(64, 64, 16, conv3_density, zskip_bench::HARNESS_SEED);
    let img = Tensor::from_fn(64, 16, 16, |c, y, x| Sm8::from_i32_saturating(((c * 31 + y * 7 + x) % 200) as i32 - 100));
    let (banks, scratch, instrs) = zskip_bench::build_engine_workload(&acfg, &qw, &img);
    let dense =
        run_instructions_dense(&acfg, banks.clone(), scratch.clone(), &instrs, u64::MAX).expect("dense block runs");
    let event = run_instructions(&acfg, banks, scratch, &instrs, u64::MAX).expect("event block runs");
    assert_eq!(dense.cycles, event.cycles, "schedulers must agree cycle-exactly");
    assert_eq!(dense.report, event.report, "schedulers must agree on kernel stats");
    let s = event.report.sched;
    println!("\nEvent-driven scheduler on one engine-level block ({} cycles, bit-identical to dense):", event.cycles);
    println!(
        "  executed {} ({:.1}% lean), idle-jumped {}, parks {}, wakes {}",
        s.executed_cycles,
        if s.executed_cycles > 0 { s.lean_cycles as f64 / s.executed_cycles as f64 * 100.0 } else { 0.0 },
        s.idle_jumped,
        s.parks,
        s.wakes
    );
    println!("  ('lean' cycles ticked only runnable kernels; dense ticks all {} every cycle)", dense.report.kernels.len());

    // Software datapath: which SIMD kernel tier this host dispatches to,
    // and the golden model's steady-state allocation behaviour (a warmed
    // scratch arena with zero grow events performs zero heap allocations
    // per image — proven by the counting-allocator test, measured by
    // `kernel_bench`; see docs/KERNELS.md).
    use zskip::nn::simd::KernelTier;
    use zskip::nn::Scratch;
    let host_tiers: Vec<&str> = KernelTier::supported().iter().map(|t| t.name()).collect();
    println!(
        "\nSoftware kernel tier: {} (host supports: {}; override with {}=<tier>)",
        zskip::nn::dispatch(),
        host_tiers.join(", "),
        zskip::nn::KERNEL_ENV
    );
    let surrogate = zskip::nn::vgg16::vgg16_scaled_spec(32);
    let snet = Network::synthetic(
        surrogate.clone(),
        &SyntheticModelConfig { seed: zskip_bench::HARNESS_SEED, density: DensityProfile::deep_compression_vgg16() },
    );
    let sq = snet.quantize(&synthetic_inputs(2, 1, surrogate.input));
    let probe = synthetic_inputs(3, 3, surrogate.input);
    let auto_workers = zskip::nn::ConvPool::auto_threads();
    println!("Intra-image conv workers: {auto_workers} at auto (host parallelism; --threads overrides)");
    let mut arena = Scratch::new();
    arena.set_threads(auto_workers);
    for input in &probe {
        let _ = sq.forward_quant_scratch(input, &mut arena);
    }
    let steady = if arena.grow_events() <= 1 { "0" } else { "NONZERO (arena regrew!)" };
    println!(
        "Scratch arena ({} images, vgg16-32 surrogate, {} worker(s)): {} grow event(s), {} KiB, steady-state heap allocations/image: {}",
        probe.len(),
        auto_workers,
        arena.grow_events(),
        arena.capacity_bytes() / 1024,
        steady
    );

    // Shared weight caches: drive one image through the cpu backend so the
    // packed-group cache is populated the way `infer`/`batch` populate it,
    // then report both process-wide caches (packed scratchpad groups keyed
    // by weight identity + lane/skip geometry, and the nn kernels' packed
    // per-filter tap streams).
    let cpu_driver = Driver::builder(AccelConfig::for_variant(variant))
        .backend(BackendKind::Cpu)
        .build()
        .expect("cpu driver builds");
    let _ = cpu_driver.run_network(&sq, &probe[0]).expect("surrogate image runs");
    let gc = zskip::accel::weight_cache_stats();
    let tc = zskip::nn::conv::tap_cache_stats();
    println!(
        "Packed-group weight cache: {} entries ({:.1} MiB), {} hits / {} misses",
        gc.entries,
        gc.bytes as f64 / (1 << 20) as f64,
        gc.hits,
        gc.misses
    );
    println!(
        "Packed-tap kernel cache:   {} entries ({:.1} MiB), {} hits / {} misses",
        tc.entries,
        tc.bytes as f64 / (1 << 20) as f64,
        tc.hits,
        tc.misses
    );

    // Sharding: what the placement scheduler would do with this workload
    // at --instances N — chosen placement, the cost model's device and
    // derated clock, per-instance utilization, and (for the pipeline)
    // where the inter-stage bubbles sit.
    let instances = resolved.config.instances;
    let placement = resolved.config.placement;
    let cost = zskip::accel::CostModel::for_instances(variant, instances.max(1));
    println!(
        "\nSharding at {} instance(s): {} at {:.1} MHz, ALM utilization {:.2}{}",
        cost.instances,
        cost.device,
        cost.clock_mhz,
        cost.alm_utilization,
        if cost.fits { "" } else { " (DOES NOT FIT)" }
    );
    let shard_config = AccelConfig::for_variant_instances(variant, instances.max(1));
    let shard_driver = Driver::builder(shard_config)
        .backend(BackendKind::Model)
        .build()
        .expect("model driver builds");
    let shard_inputs = synthetic_inputs(3, (2 * instances).max(4), surrogate.input);
    let shard = zskip::accel::run_sharded(&shard_driver, &sq, &shard_inputs, placement)
        .unwrap_or_else(|e| fail(&e.to_string()));
    print_shard_summary(&shard, &shard_config);

    // Serving limits: what `zskip serve` defaults to on this build, so an
    // operator can size clients without starting the daemon.
    println!(
        "\nServe defaults: queue depth {DEFAULT_QUEUE_DEPTH} (admission control), batch window {DEFAULT_BATCH_WINDOW_MS} ms, max batch {DEFAULT_MAX_BATCH}"
    );
    println!(
        "(override with zskip serve --queue-depth/--batch-window-ms/--max-batch; full wire protocol in docs/SERVING.md)"
    );
}

fn faults(p: &Parsed) {
    use zskip::accel::{run_campaign, CampaignConfig};
    let cfg = CampaignConfig { hw: p.parse_num("--hw", 8), seed: p.parse_num("--seed", 7) };
    let report = run_campaign(&cfg);
    if p.has("--json") {
        println!("{}", report.to_json().to_string_pretty());
    } else {
        println!("fault-injection campaign ({} trials)\n", report.trials.len());
        println!("{:<20} {:<22} {:<17} detail", "site", "fault", "outcome");
        for t in &report.trials {
            println!("{:<20} {:<22} {:<17} {}", t.site, t.fault, t.outcome.label(), t.detail);
        }
        let (identical, recovered, errors, vulnerable) = report.tally();
        println!(
            "\n{} identical, {} recovered by retry, {} structured errors, {} vulnerable",
            identical, recovered, errors, vulnerable
        );
        println!("verdict: {}", if report.survived() { "SURVIVED" } else { "VULNERABLE" });
    }
    if !report.survived() {
        std::process::exit(1);
    }
}

fn trace() {
    use zskip::accel::cycle::run_instructions_traced;
    use zskip::accel::{BankSet, ConvInstr, FmLayout, GroupWeights, Instruction};
    use zskip::hls::AccelArch;
    use zskip::nn::conv::QuantConvWeights;
    use zskip::quant::{Requantizer, Sm8};
    use zskip::tensor::{Shape, Tensor, TiledFeatureMap};

    let cfg = AccelConfig::from_arch(&AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 1024 }, 100.0);
    // A tiny conv with uneven per-filter sparsity so the waveform shows
    // lockstep bubbles and the barrier convoy.
    let qw = QuantConvWeights::new(
        4,
        4,
        3,
        (0..144)
            .map(|i| {
                let filter = i / 36;
                if i % (filter + 2) == 0 { Sm8::ZERO } else { Sm8::from_i32_saturating((i % 9) - 4) }
            })
            .collect(),
        vec![0; 4],
        Requantizer::from_ratio(1.0 / 16.0),
        true,
    );
    let input = Tensor::from_fn(4, 8, 8, |c, y, x| Sm8::from_i32_saturating(((c + y + x) % 9) as i32 - 4)).padded(1);
    let tiled = TiledFeatureMap::from_tensor(&input);
    let in_layout = FmLayout::full(0, input.shape());
    let out_layout = FmLayout::full(in_layout.end(), Shape::new(4, 8, 8));
    let mut banks = BankSet::new(&cfg);
    in_layout.store(&mut banks, &tiled, 0..tiled.tiles_y());
    let gw = GroupWeights::from_filters(&qw, 0, 4);
    let instr = Instruction::Conv(ConvInstr {
        ofm_first: 0,
        ifm_count: 4,
        ifm_base: 0,
        ifm_tiles_x: in_layout.tiles_x as u16,
        ifm_tile_rows: in_layout.tile_rows as u16,
        ifm_row_offset: 0,
        ofm_base: out_layout.base as u32,
        ofm_tiles_x: out_layout.tiles_x as u16,
        ofm_tile_rows: out_layout.tile_rows as u16,
        wgt_base: 0,
        bias: [0; 4],
        requant_mult: qw.requant.mult as u16,
        requant_shift: qw.requant.shift as u8,
        relu: true,
        active_lanes: 4,
    });
    let (outcome, trace) =
        run_instructions_traced(&cfg, banks, gw.to_bytes(), &[instr], 1_000_000, 160).expect("runs");
    println!("cycle-exact waveform of one conv instruction ({} cycles total)", outcome.cycles);
    println!("legend: '#' busy, 'x' blocked on FIFO, '.' idle, ' ' done\n");
    print!("{}", trace.render(80));
    println!("{}", outcome.report.render_utilization());
}
