//! `zskip` — command-line front end to the simulated accelerator.
//!
//! ```text
//! zskip synth [variant|all]       HLS synthesis summary and area breakdown
//! zskip sweep                     full VGG-16 variant/model sweep (Figs. 7-8 data)
//! zskip infer [--hw N] [--density D|dc] [--variant V] [--ternary]
//!                                 run inference end to end, verify vs golden model
//! zskip batch [--n N] [--workers W] [--hw N] [--density D|dc] [--variant V]
//!                                 run a batch of inferences on a worker pool
//! zskip trace                     cycle-exact waveform of a small convolution
//! ```

use zskip::accel::{AccelConfig, BackendKind, Driver};
use zskip::hls::Variant;
use zskip::nn::eval::synthetic_inputs;
use zskip::nn::model::{Network, SyntheticModelConfig};
use zskip::perf::AreaBreakdown;
use zskip::quant::DensityProfile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "synth" => synth(args.get(1).map(String::as_str).unwrap_or("all")),
        "sweep" => sweep(),
        "infer" => infer(&args[1..]),
        "batch" => batch(&args[1..]),
        "analyze" => analyze(&args[1..]),
        "trace" => trace(),
        _ => {
            eprintln!(
                "usage: zskip <synth [variant|all] | sweep | infer [--hw N] [--density D|dc] [--variant V] [--ternary] | batch [--n N] [--workers W] [--hw N] [--density D|dc] [--variant V] | analyze [--density D|dc] | trace>"
            );
            std::process::exit(if cmd == "help" { 0 } else { 2 });
        }
    }
}

fn parse_variant(s: &str) -> Variant {
    match s {
        "16-unopt" => Variant::U16Unopt,
        "256-unopt" => Variant::U256Unopt,
        "256-opt" => Variant::U256Opt,
        "512-opt" => Variant::U512Opt,
        other => {
            eprintln!("unknown variant {other} (use 16-unopt | 256-unopt | 256-opt | 512-opt)");
            std::process::exit(2);
        }
    }
}

fn synth(which: &str) {
    let variants: Vec<Variant> =
        if which == "all" { Variant::all().to_vec() } else { vec![parse_variant(which)] };
    for v in variants {
        let r = v.synthesize();
        println!("== {v} ==");
        println!(
            "  {} MACs/cycle, achieved {:.1} MHz, operating {:.1} MHz, peak {:.1} GOPS",
            v.macs_per_cycle(),
            r.achieved_fmax_mhz,
            r.operating_mhz,
            r.peak_gops()
        );
        println!("  {}", r.utilization);
        if which != "all" {
            print!("{}", AreaBreakdown::from_synthesis(v.label(), &r).render());
        }
    }
}

fn sweep() {
    for p in zskip_bench::full_sweep() {
        println!(
            "{:<13} avg {:>6.1} GOPS  peak {:>6.1} GOPS  eff mean {:>4.2} best {:>4.2} worst {:>4.2}",
            format!("{}{}", p.variant, p.model),
            p.mean_gops(),
            p.peak_gops(),
            p.mean_efficiency(),
            p.best_efficiency(),
            p.worst_efficiency()
        );
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn infer(args: &[String]) {
    let hw: usize = flag_value(args, "--hw").map(|v| v.parse().expect("--hw takes a number")).unwrap_or(64);
    let variant = parse_variant(flag_value(args, "--variant").unwrap_or("256-opt"));
    let ternary = args.iter().any(|a| a == "--ternary");
    let density = match flag_value(args, "--density").unwrap_or("dc") {
        "dc" => DensityProfile::deep_compression_vgg16(),
        d => DensityProfile::uniform(13, d.parse().expect("--density takes dc or a fraction")),
    };

    let spec = zskip::nn::vgg16::vgg16_scaled_spec(hw);
    println!("running {} on {} ({} GMACs)...", spec.name, variant, spec.total_macs() / 1_000_000_000);
    let net = Network::synthetic(spec.clone(), &SyntheticModelConfig { seed: 1, density });
    let calib = synthetic_inputs(2, 1, spec.input);
    let qnet = if ternary { net.quantize_ternary(&calib) } else { net.quantize(&calib) };
    let input = synthetic_inputs(3, 1, spec.input).pop().expect("one");

    let config = AccelConfig::for_variant(variant);
    let report = Driver::new(config, BackendKind::Model).run_network(&qnet, &input).expect("fits");
    assert_eq!(report.output, qnet.forward_quant(&input), "bit-exact vs golden model");
    println!("bit-exact vs the software golden model");
    println!(
        "{} cycles = {:.2} ms at {:.0} MHz; mean {:.1} / peak {:.1} effective GOPS; DDR {} MiB",
        report.total_cycles,
        report.total_cycles as f64 * config.cycle_seconds() * 1e3,
        config.clock_mhz,
        report.mean_gops(&config),
        report.peak_gops(&config),
        report.ddr_bytes >> 20
    );
    let top = zskip::nn::fc::argmax(&report.output).expect("non-empty");
    println!("predicted class: {top}");
}

fn batch(args: &[String]) {
    let hw: usize = flag_value(args, "--hw").map(|v| v.parse().expect("--hw takes a number")).unwrap_or(32);
    let n: usize = flag_value(args, "--n").map(|v| v.parse().expect("--n takes a number")).unwrap_or(8);
    let workers: usize =
        flag_value(args, "--workers").map(|v| v.parse().expect("--workers takes a number")).unwrap_or(0);
    let variant = parse_variant(flag_value(args, "--variant").unwrap_or("256-opt"));
    let density = match flag_value(args, "--density").unwrap_or("dc") {
        "dc" => DensityProfile::deep_compression_vgg16(),
        d => DensityProfile::uniform(13, d.parse().expect("--density takes dc or a fraction")),
    };

    let spec = zskip::nn::vgg16::vgg16_scaled_spec(hw);
    let net = Network::synthetic(spec.clone(), &SyntheticModelConfig { seed: 1, density });
    let calib = synthetic_inputs(2, 1, spec.input);
    let qnet = net.quantize(&calib);
    let inputs = synthetic_inputs(3, n, spec.input);

    let config = AccelConfig::for_variant(variant);
    let driver = Driver::new(config, BackendKind::Model);
    println!("running {} x {} on {}...", n, spec.name, variant);
    let t0 = std::time::Instant::now();
    let report = zskip::accel::run_batch(&driver, &qnet, &inputs, workers).expect("fits");
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "{} images in {:.2} s on {} workers ({:.2} images/s, {:.1} M simulated cycles/s, {} steals)",
        n,
        wall,
        report.workers,
        n as f64 / wall,
        report.total_cycles() as f64 / wall / 1e6,
        report.steals
    );
    for (i, r) in report.reports.iter().enumerate() {
        let top = zskip::nn::fc::argmax(&r.output).expect("non-empty");
        println!("  image {i}: {} cycles, predicted class {top}", r.total_cycles);
    }
}

fn analyze(args: &[String]) {
    use zskip::accel::LayerPackingStats;
    let density = match flag_value(args, "--density").unwrap_or("dc") {
        "dc" => DensityProfile::deep_compression_vgg16(),
        d => DensityProfile::uniform(13, d.parse().expect("--density takes dc or a fraction")),
    };
    let config = AccelConfig::for_variant(Variant::U256Opt);
    let qnet = zskip_bench::build_vgg16_with_density(density);
    println!(
        "VGG-16 packing analysis ({} lanes, zero-skip floor 4 cycles/weight-tile)\n",
        config.lanes
    );
    println!(
        "{:<9} {:>8} {:>10} {:>11} {:>9} {:>9} {:>8} {:>9}",
        "layer", "density", "scratch KB", "steps", "bubbles%", "skipped", "speedup", "vs ideal"
    );
    for (i, layer) in qnet.conv.iter().enumerate() {
        let name = zskip::nn::VGG16_CONV_NAMES.get(i).copied().unwrap_or("conv?");
        let s = LayerPackingStats::analyze(name, &layer.weights, &config);
        println!(
            "{:<9} {:>8.3} {:>10} {:>11} {:>8.1}% {:>9} {:>7.2}x {:>8.2}x",
            s.name,
            s.density,
            s.scratchpad_bytes / 1024,
            s.lockstep_steps,
            s.bubble_fraction() * 100.0,
            s.skipped_channels,
            s.predicted_skip_speedup(),
            s.lockstep_steps.max(1) as f64 / s.ideal_steps.max(1) as f64,
        );
    }
    println!("\n'vs ideal' is lockstep steps over per-lane-independent steps: the bubble");
    println!("cost the paper's future-work filter grouping recovers.");
}

fn trace() {
    use zskip::accel::cycle::run_instructions_traced;
    use zskip::accel::{BankSet, ConvInstr, FmLayout, GroupWeights, Instruction};
    use zskip::hls::AccelArch;
    use zskip::nn::conv::QuantConvWeights;
    use zskip::quant::{Requantizer, Sm8};
    use zskip::tensor::{Shape, Tensor, TiledFeatureMap};

    let cfg = AccelConfig::from_arch(&AccelArch { conv_units: 4, lanes: 4, instances: 1, bank_tiles: 1024 }, 100.0);
    // A tiny conv with uneven per-filter sparsity so the waveform shows
    // lockstep bubbles and the barrier convoy.
    let qw = QuantConvWeights::new(
        4,
        4,
        3,
        (0..144)
            .map(|i| {
                let filter = i / 36;
                if i % (filter + 2) == 0 { Sm8::ZERO } else { Sm8::from_i32_saturating((i % 9) - 4) }
            })
            .collect(),
        vec![0; 4],
        Requantizer::from_ratio(1.0 / 16.0),
        true,
    );
    let input = Tensor::from_fn(4, 8, 8, |c, y, x| Sm8::from_i32_saturating(((c + y + x) % 9) as i32 - 4)).padded(1);
    let tiled = TiledFeatureMap::from_tensor(&input);
    let in_layout = FmLayout::full(0, input.shape());
    let out_layout = FmLayout::full(in_layout.end(), Shape::new(4, 8, 8));
    let mut banks = BankSet::new(&cfg);
    in_layout.store(&mut banks, &tiled, 0..tiled.tiles_y());
    let gw = GroupWeights::from_filters(&qw, 0, 4);
    let instr = Instruction::Conv(ConvInstr {
        ofm_first: 0,
        ifm_count: 4,
        ifm_base: 0,
        ifm_tiles_x: in_layout.tiles_x as u16,
        ifm_tile_rows: in_layout.tile_rows as u16,
        ifm_row_offset: 0,
        ofm_base: out_layout.base as u32,
        ofm_tiles_x: out_layout.tiles_x as u16,
        ofm_tile_rows: out_layout.tile_rows as u16,
        wgt_base: 0,
        bias: [0; 4],
        requant_mult: qw.requant.mult as u16,
        requant_shift: qw.requant.shift as u8,
        relu: true,
        active_lanes: 4,
    });
    let (outcome, trace) =
        run_instructions_traced(&cfg, banks, gw.to_bytes(), &[instr], 1_000_000, 160).expect("runs");
    println!("cycle-exact waveform of one conv instruction ({} cycles total)", outcome.cycles);
    println!("legend: '#' busy, 'x' blocked on FIFO, '.' idle, ' ' done\n");
    print!("{}", trace.render(80));
    println!("{}", outcome.report.render_utilization());
}
