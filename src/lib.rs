//! Facade crate for the zskip workspace: a simulated FPGA CNN inference
//! accelerator with zero-weight skipping, reproducing Kim et al.,
//! "FPGA-Based CNN Inference Accelerator Synthesized from Multi-Threaded C
//! Software" (SOCC 2017).
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests have a single dependency:
//!
//! * [`tensor`] — tiles, stripes, CHW tensors (paper Fig. 2)
//! * [`quant`] — 8-bit sign+magnitude, pruning, packed zero-skip weights
//! * [`nn`] — software reference CNN and the VGG-16 network
//! * [`sim`] — cycle-level streaming-kernel simulation framework
//! * [`hls`] — LegUp-style HLS model (scheduling, fmax, resources)
//! * [`soc`] — Avalon bus, DMA, DDR4 and host models (paper Fig. 1)
//! * [`accel`] — the accelerator itself (paper Figs. 3-5)
//! * [`perf`] — area/power/efficiency models (Fig. 6, Table I)
//! * [`fault`] — deterministic fault injection for robustness testing
//!
//! [`Error`] is the workspace-wide unified error type: every fallible
//! public API's error converts into it via `From`, and
//! [`Error::code`](zskip_core::Error::code) gives a stable string for
//! machine-readable reports (see `docs/ERRORS.md`).

pub use zskip_core as accel;
pub use zskip_core::Error;

/// The curated public surface: everything a host application needs to
/// configure and run inference — interactively, in batches, or as a
/// serving daemon — in one import.
///
/// ```
/// use zskip::prelude::*;
/// # use zskip::hls::Variant;
/// let session = Session::builder(AccelConfig::for_variant(Variant::U256Opt))
///     .backend(BackendKind::Cpu)
///     .kernel(KernelTier::Scalar)
///     .build()
///     .expect("valid config");
/// assert_eq!(session.kernel_tier(), KernelTier::Scalar);
/// ```
///
/// The legacy panic-on-invalid constructors (`Driver::new`,
/// `Driver::stats_only`) are deprecated and intentionally absent here:
/// new code goes through [`Session`](prelude::Session) or
/// [`DriverBuilder`](prelude::DriverBuilder), whose `build()` returns
/// [`prelude::Error`] with the stable code `config.invalid`.
pub mod prelude {
    pub use zskip_core::batch::RetryPolicy;
    pub use zskip_core::serve::wire;
    pub use zskip_core::{
        run_sharded, AccelConfig, BackendKind, BatchConfig, CostModel, Driver, DriverBuilder,
        Error, Objective, Placement, SearchSpace, Searcher, ServeEngine, ServeError, ServeHandle,
        ServeReply, ServeStats, Session, SessionBuilder, ShardReport, SpaceKind, TuneOutcome,
        TunedConfig, Tuner,
    };
    pub use zskip_nn::simd::KernelTier;
}
pub use zskip_fault as fault;
pub use zskip_hls as hls;
pub use zskip_json as json;
pub use zskip_nn as nn;
pub use zskip_perf as perf;
pub use zskip_quant as quant;
pub use zskip_sim as sim;
pub use zskip_soc as soc;
pub use zskip_tensor as tensor;
